// HMM map matching (Viterbi), in the spirit of the low-sampling-rate
// matchers the paper cites (Lou et al., SIGSPATIAL'09): candidate road
// positions are hidden states, GPS-to-road distance drives the emission
// probability, and the agreement between network distance and
// straight-line distance drives the transition probability. A global
// maximum-likelihood path is recovered by dynamic programming — more
// robust than the greedy incremental matcher on sparse traces, at a
// higher cost.

#ifndef TAXITRACE_MAPMATCH_HMM_MATCHER_H_
#define TAXITRACE_MAPMATCH_HMM_MATCHER_H_

#include "taxitrace/mapmatch/gap_filler.h"
#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/roadnet/spatial_index.h"

namespace taxitrace {
namespace mapmatch {

/// HMM parameters (Newson-Krumm-style defaults adapted to urban scale).
struct HmmOptions {
  /// Candidate search radius, metres.
  double search_radius_m = 55.0;
  /// Emission: Gaussian sigma of GPS error, metres.
  double gps_sigma_m = 8.0;
  /// Transition: exponential scale of |network - straight| discrepancy,
  /// metres.
  double beta_m = 15.0;
  /// Candidates considered per point (best by emission).
  int max_candidates = 6;
  /// Transitions whose network route exceeds this factor of the
  /// straight-line distance (plus slack) are pruned.
  double max_detour_factor = 3.0;
  double detour_slack_m = 200.0;
  /// A step implying straight-line speed above this is a GPS outlier:
  /// the point's lattice layer is skipped entirely.
  double max_speed_ms = 28.0;
  /// After this many consecutive skipped layers the chain restarts
  /// instead (a genuine data gap, not an outlier).
  int max_consecutive_skips = 3;
};

/// Viterbi matcher over a prepared network. Holds pointers to the
/// network and index, which must outlive it.
class HmmMatcher {
 public:
  HmmMatcher(const roadnet::RoadNetwork* network,
             const roadnet::SpatialIndex* index, HmmOptions options = {});

  /// Matches a trip's points; returns the maximum-likelihood route.
  /// Fails when fewer than two points can be matched.
  Result<MatchedRoute> Match(const trace::Trip& trip) const;

  [[nodiscard]] const HmmOptions& options() const { return options_; }

 private:
  const roadnet::RoadNetwork* network_;
  const roadnet::SpatialIndex* index_;
  GapFiller gap_filler_;
  HmmOptions options_;
};

}  // namespace mapmatch
}  // namespace taxitrace

#endif  // TAXITRACE_MAPMATCH_HMM_MATCHER_H_
