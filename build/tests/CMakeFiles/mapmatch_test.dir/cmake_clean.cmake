file(REMOVE_RECURSE
  "CMakeFiles/mapmatch_test.dir/mapmatch_test.cc.o"
  "CMakeFiles/mapmatch_test.dir/mapmatch_test.cc.o.d"
  "mapmatch_test"
  "mapmatch_test.pdb"
  "mapmatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapmatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
