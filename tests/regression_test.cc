// Full-study regression bands: the paper-scale run must keep producing
// the shapes EXPERIMENTS.md documents. The study runs once per process;
// the checks are grouped into two TESTs so ctest (one process per test)
// does not re-run the pipeline per assertion group.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "taxitrace/analysis/route_stats.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/reports.h"

namespace taxitrace {
namespace core {
namespace {

const StudyResults& FullResults() {
  static const StudyResults* results = [] {
    Pipeline pipeline(StudyConfig::FullStudy());
    auto run = pipeline.Run();
    return new StudyResults(std::move(run).value());
  }();
  return *results;
}

double DirectionMean(const std::vector<analysis::Table4Row>& rows,
                     const std::string& direction,
                     analysis::Summary analysis::Table4Row::* field) {
  for (const analysis::Table4Row& row : rows) {
    if (row.direction == direction) return (row.*field).mean;
  }
  return 0.0;
}

void CheckFunnel() {
  int64_t post = 0, segments = 0;
  for (const odselect::Table3Row& row : FullResults().table3) {
    post += row.post_filtered;
    segments += row.segments_total;
  }
  // Paper: 544 post-filtered transitions out of 18 077 segments.
  EXPECT_GT(post, 350);
  EXPECT_LT(post, 800);
  EXPECT_GT(segments, 20000);
  EXPECT_LT(segments, 50000);
}

void CheckTable4() {
  const auto rows = analysis::BuildTable4(FullResults().Records());
  const double low_ts =
      DirectionMean(rows, "T-S", &analysis::Table4Row::low_speed_pct);
  const double low_tl =
      DirectionMean(rows, "T-L", &analysis::Table4Row::low_speed_pct);
  const double norm_ts =
      DirectionMean(rows, "T-S", &analysis::Table4Row::normal_speed_pct);
  const double norm_tl =
      DirectionMean(rows, "T-L", &analysis::Table4Row::normal_speed_pct);
  const double fuel_ts =
      DirectionMean(rows, "T-S", &analysis::Table4Row::fuel_ml);
  const double fuel_tl =
      DirectionMean(rows, "T-L", &analysis::Table4Row::fuel_ml);
  const double dist_ts =
      DirectionMean(rows, "T-S", &analysis::Table4Row::route_distance_km);

  EXPECT_GT(low_ts, low_tl);    // S<->T carries more low speed
  EXPECT_GT(norm_tl, norm_ts);  // contrariwise for normal speed
  EXPECT_GT(fuel_ts, fuel_tl);  // low speed correlates with fuel
  EXPECT_GT(dist_ts, 2.0);      // ~2.2-2.6 km routes
  EXPECT_LT(dist_ts, 3.2);
  EXPECT_GT(fuel_ts, 180.0);    // paper regime: ~210-300 ml
  EXPECT_LT(fuel_ts, 420.0);
}

void CheckSeasonal() {
  const StudyResults& r = FullResults();
  // Winter slowest, autumn fastest (paper Section VI-A).
  EXPECT_LT(r.seasonal[0].delta_kmh, r.seasonal[2].delta_kmh);
  EXPECT_LT(r.seasonal[0].delta_kmh, r.seasonal[3].delta_kmh);
  EXPECT_GT(r.seasonal[3].delta_kmh, 0.0);
}

void CheckCellModel() {
  const StudyResults& r = FullResults();
  // sigma_cell ~ 10 km/h, BLUPs roughly [-15, +20] (paper Fig. 9).
  EXPECT_GT(std::sqrt(r.cell_model.sigma2_group), 5.0);
  EXPECT_LT(std::sqrt(r.cell_model.sigma2_group), 18.0);
  double min_blup = 0.0, max_blup = 0.0;
  for (size_t g = 0; g < r.cell_model.blup.size(); ++g) {
    if (r.cell_model.group_n[g] == 0) continue;
    min_blup = std::min(min_blup, r.cell_model.blup[g]);
    max_blup = std::max(max_blup, r.cell_model.blup[g]);
  }
  EXPECT_LT(min_blup, -8.0);
  EXPECT_GT(max_blup, 8.0);
  EXPECT_TRUE(r.geography_lrt.Significant(0.001));
}

void CheckCentre() {
  const StudyResults& r = FullResults();
  const analysis::Grid grid(r.grid_cell_m);
  double centre_sum = 0.0;
  int centre_n = 0;
  for (size_t g = 0; g < r.cell_model.blup.size(); ++g) {
    if (r.cell_model.group_n[g] == 0) continue;
    if (geo::Norm(grid.CellCenter(r.model_cells[g])) < 350.0) {
      centre_sum += r.cell_model.blup[g];
      ++centre_n;
    }
  }
  ASSERT_GT(centre_n, 0);
  EXPECT_LT(centre_sum / centre_n, -3.0);  // paper: up to -8 km/h
}

void CheckVolumeAndTimings() {
  // Paper: 30 469 measured point speeds; same order of magnitude.
  EXPECT_GT(FullResults().total_point_speeds, 15000);
  EXPECT_LT(FullResults().total_point_speeds, 120000);
  const StageTimings& t = FullResults().timings;
  EXPECT_GT(t.simulation_ms, 0.0);
  EXPECT_GT(t.cleaning_ms, 0.0);
  EXPECT_GT(t.selection_matching_ms, 0.0);
  EXPECT_GT(t.analysis_ms, 0.0);
  EXPECT_GT(t.TotalMs(), t.simulation_ms);
}

TEST(FullStudyRegressionTest, FunnelTable4AndSeasons) {
  CheckFunnel();
  CheckTable4();
  CheckSeasonal();
}

TEST(FullStudyRegressionTest, CellModelCentreVolumeTimings) {
  CheckCellModel();
  CheckCentre();
  CheckVolumeAndTimings();
}

// Exact golden digest of the seed (SmallStudy) configuration. Unlike
// the band checks above, any change to a count or a model double fails
// here — an intentional change must regenerate the golden file via
// scripts/update_golden.py (which sets TAXITRACE_UPDATE_GOLDEN=1).
TEST(GoldenDigestTest, SmallStudyDigestMatchesGolden) {
  Pipeline pipeline(StudyConfig::SmallStudy());
  auto run = pipeline.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::string digest = StudyDigestJson(*run);

  const std::string path =
      std::string(TAXITRACE_GOLDEN_DIR) + "/study_small.json";
  if (std::getenv("TAXITRACE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << digest;
    ASSERT_TRUE(out.good()) << "write failed: " << path;
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with scripts/update_golden.py";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(golden.str(), digest)
      << "study digest drifted from tests/golden/study_small.json; if the "
         "change is intended, regenerate with scripts/update_golden.py";
}

}  // namespace
}  // namespace core
}  // namespace taxitrace
