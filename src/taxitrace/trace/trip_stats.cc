#include "taxitrace/trace/trip_stats.h"

#include <algorithm>

#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace trace {

TripCollectionStats ComputeTripStats(const std::vector<Trip>& trips) {
  TripCollectionStats stats;
  std::vector<double> distances;
  distances.reserve(trips.size());
  for (const Trip& trip : trips) {
    ++stats.trips;
    stats.points += static_cast<int64_t>(trip.points.size());
    const double dist_km = PathLengthMeters(trip.points) / 1000.0;
    const double duration_h = TimeSpanSeconds(trip.points) / 3600.0;
    double fuel_ml = 0.0;
    for (const RoutePoint& p : trip.points) fuel_ml += p.fuel_delta_ml;
    stats.total_distance_km += dist_km;
    stats.total_duration_h += duration_h;
    stats.total_fuel_l += fuel_ml / 1000.0;
    distances.push_back(dist_km);
    stats.max_distance_km = std::max(stats.max_distance_km, dist_km);
  }
  if (stats.trips > 0) {
    const double n = static_cast<double>(stats.trips);
    stats.mean_points_per_trip = static_cast<double>(stats.points) / n;
    stats.mean_distance_km = stats.total_distance_km / n;
    stats.mean_duration_min = stats.total_duration_h * 60.0 / n;
    std::sort(distances.begin(), distances.end());
    stats.median_distance_km = distances[distances.size() / 2];
  }
  return stats;
}

std::string FormatTripStats(const TripCollectionStats& stats) {
  std::string out;
  out += StrFormat("  trips: %lld, points: %lld (%.1f per trip)\n",
                   static_cast<long long>(stats.trips),
                   static_cast<long long>(stats.points),
                   stats.mean_points_per_trip);
  out += StrFormat(
      "  distance: %.1f km total, %.2f km mean, %.2f km median, %.2f km "
      "max\n",
      stats.total_distance_km, stats.mean_distance_km,
      stats.median_distance_km, stats.max_distance_km);
  out += StrFormat("  duration: %.1f h total, %.1f min mean; fuel: %.1f l\n",
                   stats.total_duration_h, stats.mean_duration_min,
                   stats.total_fuel_l);
  return out;
}

}  // namespace trace
}  // namespace taxitrace
