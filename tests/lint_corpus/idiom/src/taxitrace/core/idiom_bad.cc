// Known-bad shapes for the ported repo-idiom rules.

#include "util.h"  // expect(include-path)
#include "taxitrace/core/fake_api.h"

namespace taxitrace {

void BadAssert(int x) {
  assert(x > 0);  // expect(bare-assert)
}

void BadThread() {
  std::thread t([] {});  // expect(raw-thread)
  t.join();
}

void BadIgnoredStatus() {
  WriteThing(1);  // expect(ignored-status)
}

Result<int> BadResultOk() {
  return Result<int>(Status::OK());  // expect(result-ok-status)
}

void BadLinearReset(std::vector<double>& dist,
                    std::vector<bool>& visited) {
  dist.assign(dist.size(), 1e18);  // expect(linear-reset)
  std::fill(visited.begin(), visited.end(), false);  // expect(linear-reset)
}

void BadRngRefill(std::vector<double>& multipliers, Rng& rng) {
  for (double& m : multipliers) {  // expect(linear-reset)
    m = rng.Uniform(0.75, 1.25);
  }
}

void BadRngRefillPtr(std::vector<double>& edge_weights, Rng* noise_rng) {
  for (auto& w : edge_weights) w = noise_rng->Uniform(0.6, 1.5);  // expect(linear-reset)
}

}  // namespace taxitrace
