// Fig. 9: BLUP cell-intercept predictions on the map — strong evidence
// of the effect of geography on point speeds: coefficients roughly in
// [-15, +20] km/h, reductions up to ~-8 km/h at the very centre, and
// lower speeds near dead-end road areas.

#include <cmath>

#include "bench_util.h"
#include "taxitrace/core/figures.h"

namespace taxitrace {
namespace {

void PrintFig9() {
  const core::StudyResults& r = benchutil::FullResults();
  benchutil::EmitFigureFile("fig9_intercept_map.geojson",
                            core::CellMapGeoJson(r));

  double min_blup = 1e9, max_blup = -1e9;
  double center_sum = 0.0;
  int center_n = 0;
  const analysis::Grid grid(r.grid_cell_m);
  for (size_t g = 0; g < r.cell_model.blup.size(); ++g) {
    if (r.cell_model.group_n[g] == 0) continue;
    const double blup = r.cell_model.blup[g];
    min_blup = std::min(min_blup, blup);
    max_blup = std::max(max_blup, blup);
    const geo::EnPoint center = grid.CellCenter(r.model_cells[g]);
    if (geo::Norm(center) < 350.0) {
      center_sum += blup;
      ++center_n;
    }
  }
  const double center_mean =
      center_n > 0 ? center_sum / center_n : 0.0;
  std::printf("FIG 9. Cell intercept predictions on map:\n");
  std::printf(
      "  BLUP range: [%.1f, %.1f] km/h (paper: ca. -15 to +20 km/h)\n",
      min_blup, max_blup);
  std::printf(
      "  Mean BLUP in the very centre (<350 m): %.1f km/h (paper: "
      "reductions up to -8 km/h)\n",
      center_mean);
  std::printf(
      "  sigma_cell = %.1f km/h, sigma_resid = %.1f km/h (REML), "
      "lambda = %.2f\n",
      std::sqrt(r.cell_model.sigma2_group),
      std::sqrt(r.cell_model.sigma2_residual), r.cell_model.lambda);
  std::printf("Check: centre is slower than average -> %s\n",
              center_mean < -1.0 ? "HOLDS" : "VIOLATED");
  std::printf("Check: spread reaches beyond +/-8 km/h -> %s\n\n",
              (min_blup < -8.0 && max_blup > 8.0) ? "HOLDS" : "VIOLATED");
}

void BM_OneWayRemlFit(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  // Rebuild the model input from the study and time the full REML fit.
  const geo::LocalProjection& proj = r.map.network.projection();
  const analysis::Grid grid(r.grid_cell_m);
  std::unordered_map<analysis::CellId, size_t, analysis::CellIdHash>
      groups;
  model::OneWayReml reml;
  for (const core::MatchedTransition& mt : r.transitions) {
    for (const trace::RoutePoint& p : mt.transition.segment.points) {
      const analysis::CellId cell = grid.CellOf(proj.Forward(p.position));
      const auto [it, inserted] = groups.emplace(cell, groups.size());
      reml.Add(it->second, p.speed_kmh);
    }
  }
  for (auto _ : state) {
    auto fit = reml.Fit();
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(state.iterations() * reml.num_observations());
}
BENCHMARK(BM_OneWayRemlFit)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintFig9)
