
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/coach/advisor.cc" "src/CMakeFiles/taxitrace_coach.dir/taxitrace/coach/advisor.cc.o" "gcc" "src/CMakeFiles/taxitrace_coach.dir/taxitrace/coach/advisor.cc.o.d"
  "/root/repo/src/taxitrace/coach/driver_profile.cc" "src/CMakeFiles/taxitrace_coach.dir/taxitrace/coach/driver_profile.cc.o" "gcc" "src/CMakeFiles/taxitrace_coach.dir/taxitrace/coach/driver_profile.cc.o.d"
  "/root/repo/src/taxitrace/coach/trip_score.cc" "src/CMakeFiles/taxitrace_coach.dir/taxitrace/coach/trip_score.cc.o" "gcc" "src/CMakeFiles/taxitrace_coach.dir/taxitrace/coach/trip_score.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_mapmatch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
