#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "taxitrace/analysis/temporal.h"
#include "taxitrace/common/histogram.h"
#include "taxitrace/common/random.h"
#include "taxitrace/model/diagnostics.h"
#include "taxitrace/model/significance.h"
#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace {

// --- Day of week ---------------------------------------------------------------

TEST(DayOfWeekTest, StudyEpochIsAMonday) {
  // 2012-10-01 was a Monday.
  EXPECT_EQ(trace::DayOfWeek(0.0), 0);
  EXPECT_EQ(trace::DayOfWeek(4.0 * trace::kSecondsPerDay), 4);  // Friday
  EXPECT_EQ(trace::DayOfWeek(5.0 * trace::kSecondsPerDay), 5);  // Saturday
  EXPECT_EQ(trace::DayOfWeek(7.0 * trace::kSecondsPerDay), 0);  // Monday
  EXPECT_FALSE(trace::IsWeekend(0.0));
  EXPECT_TRUE(trace::IsWeekend(6.0 * trace::kSecondsPerDay));
}

// --- Temporal series -------------------------------------------------------------

trace::Trip TripWithPoint(double t, double speed) {
  trace::Trip trip;
  trace::RoutePoint p;
  p.timestamp_s = t;
  p.speed_kmh = speed;
  trip.points.push_back(p);
  return trip;
}

TEST(TemporalTest, HourlySeriesBucketsByHour) {
  const trace::Trip morning = TripWithPoint(8.5 * 3600.0, 20.0);
  const trace::Trip noon = TripWithPoint(12.25 * 3600.0, 40.0);
  const trace::Trip noon2 = TripWithPoint(12.75 * 3600.0, 20.0);
  const auto series =
      analysis::HourlySpeedSeries({&morning, &noon, &noon2});
  ASSERT_EQ(series.size(), 24u);
  EXPECT_EQ(series[8].n, 1);
  EXPECT_DOUBLE_EQ(series[8].mean_kmh, 20.0);
  EXPECT_EQ(series[12].n, 2);
  EXPECT_DOUBLE_EQ(series[12].mean_kmh, 30.0);
  EXPECT_EQ(series[3].n, 0);
}

TEST(TemporalTest, DailySeriesBucketsByWeekday) {
  const trace::Trip monday = TripWithPoint(10 * 3600.0, 30.0);
  const trace::Trip saturday =
      TripWithPoint(5 * trace::kSecondsPerDay + 10 * 3600.0, 40.0);
  const auto series = analysis::DailySpeedSeries({&monday, &saturday});
  ASSERT_EQ(series.size(), 7u);
  EXPECT_EQ(series[0].n, 1);
  EXPECT_DOUBLE_EQ(series[5].mean_kmh, 40.0);
}

TEST(TemporalTest, RushHourSlowdown) {
  const trace::Trip rush = TripWithPoint(8.0 * 3600.0, 18.0);
  const trace::Trip offpeak = TripWithPoint(11.0 * 3600.0, 30.0);
  const auto series = analysis::HourlySpeedSeries({&rush, &offpeak});
  EXPECT_NEAR(analysis::RushHourSlowdownKmh(series), 12.0, 1e-9);
  // Missing windows give 0.
  EXPECT_DOUBLE_EQ(analysis::RushHourSlowdownKmh(
                       analysis::HourlySpeedSeries({&rush})),
                   0.0);
}

// --- Chi-square / incomplete gamma ----------------------------------------------

TEST(ChiSquareTest, KnownValues) {
  // Critical values: P(chi2_1 > 3.841) = 0.05, P(chi2_2 > 5.991) = 0.05.
  EXPECT_NEAR(model::ChiSquareSurvival(3.841, 1), 0.05, 1e-3);
  EXPECT_NEAR(model::ChiSquareSurvival(5.991, 2), 0.05, 1e-3);
  EXPECT_NEAR(model::ChiSquareSurvival(6.635, 1), 0.01, 1e-3);
  EXPECT_NEAR(model::ChiSquareSurvival(0.0, 1), 1.0, 1e-12);
  EXPECT_NEAR(model::ChiSquareSurvival(1e6, 1), 0.0, 1e-9);
  // chi2_2 has a closed form: exp(-x/2).
  for (double x : {0.5, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(model::ChiSquareSurvival(x, 2), std::exp(-x / 2.0), 1e-10);
  }
}

TEST(ChiSquareTest, MonotoneInX) {
  double prev = 1.0;
  for (double x = 0.1; x < 20.0; x += 0.7) {
    const double s = model::ChiSquareSurvival(x, 3);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

// --- Random-effect LRT --------------------------------------------------------

TEST(RandomEffectLrtTest, DetectsRealGroupEffect) {
  Rng rng(7);
  model::OneWayReml reml;
  for (int g = 0; g < 60; ++g) {
    const double effect = rng.Gaussian(0.0, 3.0);
    for (int i = 0; i < 20; ++i) {
      reml.Add(static_cast<size_t>(g),
               20.0 + effect + rng.Gaussian(0.0, 4.0));
    }
  }
  const model::RandomEffectLrt lrt =
      model::TestRandomEffect(reml).value();
  EXPECT_GT(lrt.statistic, 20.0);
  EXPECT_LT(lrt.p_value, 1e-4);
  EXPECT_TRUE(lrt.Significant());
}

TEST(RandomEffectLrtTest, NullEffectIsInsignificantMostOfTheTime) {
  // Under H0 the test should rarely reject: count rejections over
  // repeated simulations.
  int rejections = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + static_cast<uint64_t>(t));
    model::OneWayReml reml;
    for (int g = 0; g < 30; ++g) {
      for (int i = 0; i < 15; ++i) {
        reml.Add(static_cast<size_t>(g), rng.Gaussian(10.0, 5.0));
      }
    }
    if (model::TestRandomEffect(reml).value().Significant(0.05)) {
      ++rejections;
    }
  }
  // Expected ~5%; allow generous head room against seed luck.
  EXPECT_LE(rejections, 7);
}

// --- Histogram -------------------------------------------------------------------

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.AddAll({1.0, 1.5, 3.0, 9.9, -5.0, 15.0});
  EXPECT_EQ(h.total(), 6);
  EXPECT_EQ(h.count(0), 3);  // 1.0, 1.5 and the clamped -5
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(4), 2);  // 9.9 and the clamped 15
  EXPECT_DOUBLE_EQ(h.BinLow(2), 4.0);
}

TEST(HistogramTest, ModeAndQuantile) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 70; ++i) h.Add(25.0);
  for (int i = 0; i < 30; ++i) h.Add(75.0);
  EXPECT_DOUBLE_EQ(h.Mode(), 25.0);
  EXPECT_NEAR(h.Quantile(0.5), 27.1, 0.5);  // inside the 20-30 bin
  EXPECT_GE(h.Quantile(0.9), 70.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
}

TEST(HistogramTest, QuantileMatchesGaussianRoughly) {
  Histogram h(-5.0, 5.0, 100);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.Add(rng.Gaussian());
  EXPECT_NEAR(h.Quantile(0.5), 0.0, 0.05);
  EXPECT_NEAR(h.Quantile(0.975), 1.96, 0.1);
}

TEST(HistogramTest, RenderShape) {
  Histogram h(0.0, 2.0, 2);
  h.AddAll({0.5, 0.6, 1.5});
  const std::string text = h.Render(10);
  EXPECT_NE(text.find("##########"), std::string::npos);  // peak bar
  EXPECT_NE(text.find(" 2\n"), std::string::npos);
  EXPECT_NE(text.find(" 1\n"), std::string::npos);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.total(), 0);
  EXPECT_DOUBLE_EQ(h.Mode(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

// Regression: Add() used to floor the value straight into a bin index,
// which is undefined behaviour for NaN/Inf (the int cast) — and
// fault-injected traces legitimately carry such values. They now land
// in a dedicated tally, outside every bin and quantile.
TEST(HistogramTest, NonFiniteValuesAreTalliedNotBinned) {
  Histogram h(0.0, 10.0, 5);
  h.AddAll({1.0, std::nan(""), std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(), 9.0});
  EXPECT_EQ(h.total(), 2);  // finite observations only
  EXPECT_EQ(h.nonfinite(), 3);
  int64_t binned = 0;
  for (int b = 0; b < h.num_bins(); ++b) binned += h.count(b);
  EXPECT_EQ(binned, 2);
  // Quantiles see only the finite mass: the median sits between the
  // two finite values, not at an infinity.
  EXPECT_GE(h.Quantile(0.0), 0.0);
  EXPECT_LE(h.Quantile(1.0), 10.0);
}

TEST(HistogramTest, AllNonFiniteBehavesLikeEmpty) {
  Histogram h(0.0, 1.0, 4);
  h.Add(std::nan(""));
  h.Add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 0);
  EXPECT_EQ(h.nonfinite(), 2);
  EXPECT_DOUBLE_EQ(h.Mode(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}


// --- Residual diagnostics --------------------------------------------------------

TEST(ResidualDiagnosticsTest, WellSpecifiedModelLooksClean) {
  Rng rng(51);
  model::OneWayReml reml;
  std::vector<double> y;
  std::vector<size_t> groups;
  for (size_t g = 0; g < 40; ++g) {
    const double effect = rng.Gaussian(0.0, 3.0);
    for (int i = 0; i < 30; ++i) {
      const double value = 20.0 + effect + rng.Gaussian(0.0, 2.0);
      reml.Add(g, value);
      y.push_back(value);
      groups.push_back(g);
    }
  }
  const model::OneWayRemlFit fit = reml.Fit().value();
  const model::ResidualDiagnostics diag =
      model::DiagnoseResiduals(y, groups, fit).value();
  EXPECT_EQ(diag.n, 1200);
  EXPECT_GT(diag.qq_correlation, 0.995);
  EXPECT_NEAR(diag.residual_sd, 2.0, 0.3);
  EXPECT_LT(diag.heteroscedasticity_ratio, 1.4);
  EXPECT_EQ(diag.buckets.size(), 5u);
  for (size_t b = 1; b < diag.buckets.size(); ++b) {
    EXPECT_GE(diag.buckets[b].fitted_mean,
              diag.buckets[b - 1].fitted_mean);
  }
}

TEST(ResidualDiagnosticsTest, DetectsHeteroscedasticity) {
  Rng rng(53);
  model::OneWayReml reml;
  std::vector<double> y;
  std::vector<size_t> groups;
  for (size_t g = 0; g < 40; ++g) {
    // Group means spread widely; residual spread grows with the mean.
    const double mean = 10.0 + static_cast<double>(g);
    const double sd = 0.5 + 0.15 * static_cast<double>(g);
    for (int i = 0; i < 30; ++i) {
      const double value = mean + rng.Gaussian(0.0, sd);
      reml.Add(g, value);
      y.push_back(value);
      groups.push_back(g);
    }
  }
  const model::OneWayRemlFit fit = reml.Fit().value();
  const model::ResidualDiagnostics diag =
      model::DiagnoseResiduals(y, groups, fit).value();
  EXPECT_GT(diag.heteroscedasticity_ratio, 1.8);
}

TEST(ResidualDiagnosticsTest, RejectsBadInputs) {
  model::OneWayRemlFit fit;
  EXPECT_FALSE(model::DiagnoseResiduals({1.0}, {0, 1}, fit).ok());
  EXPECT_FALSE(model::DiagnoseResiduals({1.0, 2.0}, {0, 1}, fit).ok());
}

}  // namespace
}  // namespace taxitrace
