// The serve layer: snapshot format round-trip and validation, query
// semantics against brute-force ground truth, the query funnel, and the
// replay harness's determinism contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "taxitrace/common/check.h"
#include "taxitrace/common/executor.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/obs/funnel.h"
#include "taxitrace/obs/metrics.h"
#include "taxitrace/serve/query_engine.h"
#include "taxitrace/serve/replay.h"
#include "taxitrace/serve/snapshot.h"

namespace taxitrace {
namespace serve {
namespace {

const core::StudyResults& SmallStudy() {
  static const core::StudyResults* results = [] {
    core::StudyConfig config = core::StudyConfig::SmallStudy();
    config.num_threads = 0;
    core::Pipeline pipeline(config);
    auto run = pipeline.Run();
    TT_CHECK_OK(run.status());
    return new core::StudyResults(std::move(run).value());
  }();
  return *results;
}

const std::string& SmallSnapshotBytes() {
  static const std::string* bytes = [] {
    auto built = SnapshotBuilder().Build(SmallStudy(), &Executor::Serial());
    TT_CHECK_OK(built.status());
    return new std::string(std::move(built).value());
  }();
  return *bytes;
}

const Snapshot& SmallSnapshot() {
  static const Snapshot* snapshot = [] {
    auto loaded = Snapshot::FromBytes(SmallSnapshotBytes());
    TT_CHECK_OK(loaded.status());
    return new Snapshot(std::move(loaded).value());
  }();
  return *snapshot;
}

TEST(SnapshotTest, RoundTripPreservesStructure) {
  const Snapshot& snap = SmallSnapshot();
  const SnapshotMeta& meta = snap.meta();
  EXPECT_EQ(meta.cell_size_m, 200.0);
  EXPECT_GT(meta.num_cells, 0);
  EXPECT_EQ(meta.num_slices, 12);
  EXPECT_GT(meta.total_points, 0);
  EXPECT_LE(meta.min_cx, meta.max_cx);
  EXPECT_LE(meta.min_cy, meta.max_cy);

  // The index is strictly sorted by (cx, cy) and FindCell inverts it.
  for (int64_t i = 0; i < snap.num_cells(); ++i) {
    const analysis::CellId c = snap.cell(i);
    if (i > 0) {
      const analysis::CellId prev = snap.cell(i - 1);
      EXPECT_TRUE(prev.cx < c.cx || (prev.cx == c.cx && prev.cy < c.cy));
    }
    EXPECT_GE(c.cx, meta.min_cx);
    EXPECT_LE(c.cx, meta.max_cx);
    EXPECT_EQ(snap.FindCell(c), i);
  }
  EXPECT_EQ(snap.FindCell(analysis::CellId{meta.max_cx + 5, 0}), -1);

  // Slice 0 is the all slice; the directory names every slice.
  EXPECT_EQ(snap.slice(0).kind, static_cast<uint32_t>(SliceKind::kAll));
  EXPECT_STREQ(snap.slice(0).label, "all");
  EXPECT_EQ(snap.FindSlice(SliceKind::kAll, 0), 0);
  EXPECT_EQ(snap.FindSlice(SliceKind::kDayType, 1),
            snap.FindSlice(SliceKind::kDayType, 1));
  EXPECT_EQ(snap.FindSlice(SliceKind::kCrowd, 99), -1);

  // The all slice's point counts sum to the meta total.
  int64_t total = 0;
  for (int64_t i = 0; i < snap.num_cells(); ++i) total += snap.moments(0, i).n;
  EXPECT_EQ(total, meta.total_points);
}

TEST(SnapshotTest, AllSliceAgreesWithStudyCellRecords) {
  const Snapshot& snap = SmallSnapshot();
  const core::StudyResults& results = SmallStudy();
  ASSERT_FALSE(results.cells.empty());
  EXPECT_EQ(snap.num_cells(), static_cast<int64_t>(results.cells.size()));
  for (const analysis::CellRecord& record : results.cells) {
    const int64_t index = snap.FindCell(record.cell);
    ASSERT_GE(index, 0) << "(" << record.cell.cx << ", " << record.cell.cy
                        << ")";
    const CellMoments m = snap.moments(0, index);
    EXPECT_EQ(m.n, record.num_points);
    EXPECT_NEAR(m.mean, record.mean_speed_kmh, 1e-9);
    EXPECT_NEAR(m.Variance(), record.speed_variance, 1e-9);
  }
}

// Every scenario family partitions the all slice: per cell, the family
// members' point counts sum exactly to the all-slice count.
TEST(SnapshotTest, SliceFamiliesPartitionTheAllSlice) {
  const Snapshot& snap = SmallSnapshot();
  for (int64_t i = 0; i < snap.num_cells(); ++i) {
    const int64_t all_n = snap.moments(0, i).n;
    int64_t day_n = 0;
    int64_t temp_n = 0;
    int64_t crowd_n = 0;
    for (int64_t s = 1; s < snap.num_slices(); ++s) {
      const SliceInfo info = snap.slice(s);
      const int64_t n = snap.moments(s, i).n;
      switch (static_cast<SliceKind>(info.kind)) {
        case SliceKind::kDayType:
          day_n += n;
          break;
        case SliceKind::kTemperature:
          temp_n += n;
          break;
        case SliceKind::kCrowd:
          crowd_n += n;
          break;
        case SliceKind::kAll:
          ADD_FAILURE() << "duplicate all slice at " << s;
          break;
      }
    }
    EXPECT_EQ(day_n, all_n) << "cell index " << i;
    EXPECT_EQ(temp_n, all_n) << "cell index " << i;
    EXPECT_EQ(crowd_n, all_n) << "cell index " << i;
  }
}

TEST(SnapshotTest, RejectsCorruptBytes) {
  // Too short for a header.
  EXPECT_FALSE(Snapshot::FromBytes("short").ok());

  // Wrong magic.
  std::string bad_magic = SmallSnapshotBytes();
  bad_magic[0] = 'X';
  EXPECT_FALSE(Snapshot::FromBytes(bad_magic).ok());

  // Unknown version.
  std::string bad_version = SmallSnapshotBytes();
  const uint32_t version = 99;
  std::memcpy(bad_version.data() + 8, &version, sizeof(version));
  EXPECT_FALSE(Snapshot::FromBytes(bad_version).ok());

  // Truncation: file_size in the header no longer matches.
  std::string truncated = SmallSnapshotBytes();
  truncated.resize(truncated.size() - 16);
  EXPECT_FALSE(Snapshot::FromBytes(truncated).ok());

  // A section offset pointing past the end of the file.
  std::string bad_section = SmallSnapshotBytes();
  const uint64_t huge = 1u << 30;
  std::memcpy(bad_section.data() + sizeof(SnapshotHeader) +
                  offsetof(SectionEntry, offset),
              &huge, sizeof(huge));
  EXPECT_FALSE(Snapshot::FromBytes(bad_section).ok());
}

TEST(SnapshotTest, FromFileMatchesFromBytesByteForByte) {
  const std::string path = ::testing::TempDir() + "/tt_snapshot_mmap.ttsnap";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    out.write(SmallSnapshotBytes().data(),
              static_cast<std::streamsize>(SmallSnapshotBytes().size()));
    ASSERT_TRUE(out.good());
  }

  auto mapped = Snapshot::FromFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  const Snapshot& mm = mapped.value();
  const Snapshot& heap = SmallSnapshot();

  // The mapped view is the same bytes, not a re-serialization.
  ASSERT_EQ(mm.bytes().size(), heap.bytes().size());
  EXPECT_EQ(mm.bytes(), heap.bytes());
  EXPECT_EQ(std::memcmp(&mm.meta(), &heap.meta(), sizeof(SnapshotMeta)), 0);

  // Every record both loaders expose decodes identically.
  ASSERT_EQ(mm.num_cells(), heap.num_cells());
  ASSERT_EQ(mm.num_slices(), heap.num_slices());
  for (int64_t i = 0; i < heap.num_cells(); ++i) {
    EXPECT_EQ(mm.cell(i), heap.cell(i));
    const CellFeatureRow mf = mm.features(i);
    const CellFeatureRow hf = heap.features(i);
    EXPECT_EQ(std::memcmp(&mf, &hf, sizeof mf), 0);
    const CellModelRow mr = mm.model(i);
    const CellModelRow hr = heap.model(i);
    EXPECT_EQ(std::memcmp(&mr, &hr, sizeof mr), 0);
    for (int64_t s = 0; s < heap.num_slices(); ++s) {
      const CellMoments ms = mm.moments(s, i);
      const CellMoments hs = heap.moments(s, i);
      EXPECT_EQ(std::memcmp(&ms, &hs, sizeof ms), 0);
    }
  }
  for (int64_t s = 0; s < heap.num_slices(); ++s) {
    const SliceInfo mi = mm.slice(s);
    const SliceInfo hi = heap.slice(s);
    EXPECT_EQ(std::memcmp(&mi, &hi, sizeof mi), 0);
  }

  // A Snapshot copy outlives the original without re-mapping.
  Snapshot copy = mm;
  EXPECT_EQ(copy.FindCell(heap.cell(0)), 0);
  std::remove(path.c_str());
}

TEST(SnapshotTest, FromFileRejectsMissingTruncatedAndCorruptFiles) {
  EXPECT_FALSE(Snapshot::FromFile("/nonexistent/tt_snapshot.ttsnap").ok());

  const std::string dir = ::testing::TempDir();
  const std::string empty_path = dir + "/tt_snapshot_empty.ttsnap";
  { std::ofstream out(empty_path, std::ios::binary | std::ios::trunc); }
  EXPECT_FALSE(Snapshot::FromFile(empty_path).ok());
  std::remove(empty_path.c_str());

  // FromFile runs the identical validation: flipping the magic on disk
  // is rejected with the same error FromBytes reports.
  std::string bad = SmallSnapshotBytes();
  bad[0] = 'X';
  const std::string bad_path = dir + "/tt_snapshot_bad.ttsnap";
  {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }
  auto from_file = Snapshot::FromFile(bad_path);
  auto from_bytes = Snapshot::FromBytes(bad);
  ASSERT_FALSE(from_file.ok());
  ASSERT_FALSE(from_bytes.ok());
  EXPECT_EQ(from_file.status().message(), from_bytes.status().message());
  std::remove(bad_path.c_str());
}

TEST(QueryEngineTest, PointAndCellQueriesAgree) {
  const Snapshot& snap = SmallSnapshot();
  const analysis::Grid grid(snap.meta().cell_size_m);
  QueryEngine engine(&snap);
  for (int64_t i = 0; i < snap.num_cells(); ++i) {
    const analysis::CellId cell = snap.cell(i);
    CellStats by_point;
    CellStats by_cell;
    const QueryOutcome a =
        engine.PointQuery(grid.CellCenter(cell), 0, &by_point);
    const QueryOutcome b = engine.CellQuery(cell, 0, &by_cell);
    EXPECT_EQ(a, b);
    if (a == QueryOutcome::kAnswered) {
      EXPECT_EQ(by_point.cell, by_cell.cell);
      EXPECT_EQ(by_point.n, by_cell.n);
      EXPECT_EQ(by_point.mean_speed_kmh, by_cell.mean_speed_kmh);
    }
  }
  EXPECT_EQ(engine.stats().offered, 2 * snap.num_cells());
  EXPECT_EQ(engine.stats().offered, engine.stats().answered +
                                        engine.stats().out_of_bounds +
                                        engine.stats().empty_cell);
}

TEST(QueryEngineTest, BboxMatchesBruteForce) {
  const Snapshot& snap = SmallSnapshot();
  const analysis::Grid grid(snap.meta().cell_size_m);
  const SnapshotMeta& meta = snap.meta();
  QueryEngine engine(&snap);

  // Sweep a window of boxes across the observed rectangle, including
  // boxes that hang off every edge.
  for (int32_t cx = meta.min_cx - 1; cx <= meta.max_cx + 1; ++cx) {
    for (int32_t cy = meta.min_cy - 1; cy <= meta.max_cy + 1; ++cy) {
      const geo::Bbox lo_cell = grid.CellBounds(analysis::CellId{cx, cy});
      const geo::Bbox hi_cell =
          grid.CellBounds(analysis::CellId{cx + 2, cy + 1});
      geo::Bbox box;
      box.min_x = lo_cell.min_x;
      box.min_y = lo_cell.min_y;
      box.max_x = hi_cell.min_x + 1.0;  // Reaches into cell (cx+2, cy+1).
      box.max_y = hi_cell.min_y + 1.0;

      std::vector<CellStats> got;
      const QueryOutcome outcome = engine.BboxQuery(box, 0, &got);

      std::vector<analysis::CellId> want;
      for (int64_t i = 0; i < snap.num_cells(); ++i) {
        const analysis::CellId c = snap.cell(i);
        if (c.cx >= cx && c.cx <= cx + 2 && c.cy >= cy && c.cy <= cy + 1 &&
            snap.moments(0, i).n > 0) {
          want.push_back(c);
        }
      }
      ASSERT_EQ(got.size(), want.size()) << "box at (" << cx << ", " << cy
                                         << ")";
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].cell, want[i]);
      }
      if (!want.empty()) {
        EXPECT_EQ(outcome, QueryOutcome::kAnswered);
      } else {
        EXPECT_NE(outcome, QueryOutcome::kAnswered);
      }
    }
  }
  EXPECT_EQ(engine.stats().offered, engine.stats().answered +
                                        engine.stats().out_of_bounds +
                                        engine.stats().empty_cell);
}

TEST(QueryEngineTest, OutOfBoundsAndEmptyCellBuckets) {
  const Snapshot& snap = SmallSnapshot();
  const analysis::Grid grid(snap.meta().cell_size_m);
  const SnapshotMeta& meta = snap.meta();
  QueryEngine engine(&snap);

  // Far outside the observed rectangle: out_of_bounds.
  CellStats stats;
  EXPECT_EQ(engine.CellQuery(analysis::CellId{meta.max_cx + 10,
                                              meta.max_cy + 10},
                             0, &stats),
            QueryOutcome::kOutOfBounds);

  // Inside the rectangle but not indexed (or indexed with an empty
  // slice): empty_cell. The rectangle is the bounding box of a sparse
  // road network, so such a cell exists in any realistic study; fall
  // back to an unknown slice id on a real cell otherwise.
  bool found_hole = false;
  for (int32_t cx = meta.min_cx; cx <= meta.max_cx && !found_hole; ++cx) {
    for (int32_t cy = meta.min_cy; cy <= meta.max_cy && !found_hole; ++cy) {
      const analysis::CellId c{cx, cy};
      if (snap.FindCell(c) < 0) {
        EXPECT_EQ(engine.CellQuery(c, 0, &stats), QueryOutcome::kEmptyCell);
        found_hole = true;
      }
    }
  }
  EXPECT_EQ(engine.CellQuery(snap.cell(0), snap.num_slices() + 3, &stats),
            QueryOutcome::kEmptyCell);

  // SliceQuery with a slice the directory lacks: empty_cell in bounds.
  EXPECT_EQ(engine.SliceQuery(grid.CellCenter(snap.cell(0)), SliceKind::kCrowd,
                              77, &stats),
            QueryOutcome::kEmptyCell);

  EXPECT_EQ(engine.stats().offered, engine.stats().answered +
                                        engine.stats().out_of_bounds +
                                        engine.stats().empty_cell);
}

TEST(ReplayTest, FunnelReconcilesAndMetricsPublished) {
  obs::MetricsRegistry metrics;
  obs::FunnelLedger funnel;
  WorkloadOptions options;
  options.num_queries = 20000;
  auto replayed =
      ReplayWorkload(SmallSnapshot(), options, &Executor::Serial(), &metrics,
                     &funnel);
  TT_CHECK_OK(replayed.status());
  const ReplayResult& r = *replayed;

  EXPECT_EQ(r.num_queries, options.num_queries);
  EXPECT_EQ(r.stats.offered, options.num_queries);
  EXPECT_EQ(r.stats.offered,
            r.stats.answered + r.stats.out_of_bounds + r.stats.empty_cell);
  // The Zipf mix aims most queries at hot cells, and the OOB share is
  // nonzero by construction.
  EXPECT_GT(r.stats.answered, 0);
  EXPECT_GT(r.stats.out_of_bounds, 0);
  EXPECT_NE(r.digest, 0u);
  EXPECT_GT(r.qps, 0.0);
  EXPECT_LE(r.p50_us, r.p90_us);
  EXPECT_LE(r.p90_us, r.p99_us);
  EXPECT_LE(r.p99_us, r.max_us);

  const Status reconciles = funnel.CheckReconciles();
  EXPECT_TRUE(reconciles.ok()) << reconciles.ToString();
  EXPECT_NE(funnel.Find("serve.queries"), nullptr);
}

TEST(ReplayTest, DeterministicAcrossWorkerCounts) {
  WorkloadOptions options;
  options.num_queries = 20000;
  auto replay_with = [&](int threads) {
    const Executor executor(threads);
    auto r = ReplayWorkload(SmallSnapshot(), options, &executor);
    TT_CHECK_OK(r.status());
    return std::move(r).value();
  };
  const ReplayResult serial = replay_with(0);
  for (const int threads : {1, 2, 8}) {
    const ReplayResult run = replay_with(threads);
    EXPECT_EQ(run.stats, serial.stats) << threads << " workers";
    EXPECT_EQ(run.digest, serial.digest) << threads << " workers";
  }
}

}  // namespace
}  // namespace serve
}  // namespace taxitrace
