// Generic linear mixed model with arbitrary fixed effects and one random
// grouping factor (random intercept per group) — the paper's Eq. (2)
// with Z indicating cell membership. Works from sufficient statistics,
// so it scales to the ~30k point speeds of the study without dense n x n
// algebra; REML over the variance ratio, BLUPs for the group effects.

#ifndef TAXITRACE_MODEL_MIXED_MODEL_H_
#define TAXITRACE_MODEL_MIXED_MODEL_H_

#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/model/matrix.h"

namespace taxitrace {
namespace model {

/// A fitted mixed model.
struct MixedModelFit {
  Vector fixed_effects;   ///< b (GLS at the REML variance estimates).
  Vector fixed_se;
  double sigma2_residual = 0.0;
  double sigma2_group = 0.0;
  double lambda = 0.0;    ///< sigma2_group / sigma2_residual.
  double reml_criterion = 0.0;
  int64_t num_observations = 0;
  std::vector<int64_t> group_n;
  std::vector<double> blup;
  std::vector<double> blup_se;
};

/// Streaming accumulator for X (fixed design), group index, y.
class MixedModel {
 public:
  /// `num_fixed` is the number of fixed-effect columns (include an
  /// intercept column of 1s yourself).
  explicit MixedModel(size_t num_fixed);

  /// Adds one observation.
  void Add(const Vector& x_row, size_t group, double y);

  [[nodiscard]] size_t num_fixed() const { return p_; }
  [[nodiscard]] size_t num_groups() const { return group_n_.size(); }
  [[nodiscard]] int64_t num_observations() const { return n_; }

  /// Fits via profile REML over lambda. Fails when the GLS system is
  /// singular or the data are too small.
  Result<MixedModelFit> Fit() const;

  /// The -2 REML criterion at a given lambda (for tests/ablation).
  Result<double> RemlCriterion(double lambda) const;

 private:
  struct GlsSolve {
    Vector b;
    Matrix a;        ///< sigma^2 * X' V^-1 X (lambda-dependent).
    Matrix a_lower;  ///< Cholesky factor of `a`.
    double q;        ///< sigma^2 * residual quadratic form.
  };
  Result<GlsSolve> SolveGls(double lambda) const;

  size_t p_;
  Matrix xtx_;
  Vector xty_;
  double yty_ = 0.0;
  int64_t n_ = 0;
  // Per-group sums.
  std::vector<int64_t> group_n_;
  std::vector<Vector> group_x_sum_;
  std::vector<double> group_y_sum_;
};

}  // namespace model
}  // namespace taxitrace

#endif  // TAXITRACE_MODEL_MIXED_MODEL_H_
