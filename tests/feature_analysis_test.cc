#include <gtest/gtest.h>

#include "taxitrace/analysis/feature_model.h"
#include <cmath>

#include "taxitrace/analysis/hotspot_detector.h"
#include "taxitrace/common/random.h"

namespace taxitrace {
namespace analysis {
namespace {

// --- Feature model --------------------------------------------------------

// Synthetic world where traffic lights slow cells by a known amount.
struct SyntheticWorld {
  std::vector<SpeedObservation> observations;
  std::unordered_map<CellId, CellFeatureCounts, CellIdHash> features;
};

SyntheticWorld MakeWorld(double light_effect_kmh, uint64_t seed) {
  SyntheticWorld world;
  Rng rng(seed);
  const Grid grid(200.0);
  for (int cx = 0; cx < 8; ++cx) {
    for (int cy = 0; cy < 8; ++cy) {
      const CellId cell{cx, cy};
      CellFeatureCounts counts;
      counts.traffic_lights = static_cast<int>(rng.UniformInt(0, 3));
      counts.bus_stops = static_cast<int>(rng.UniformInt(0, 2));
      counts.pedestrian_crossings = static_cast<int>(rng.UniformInt(0, 5));
      counts.junctions = static_cast<int>(rng.UniformInt(1, 4));
      world.features[cell] = counts;
      const double cell_effect = rng.Gaussian(0.0, 1.5);
      const geo::EnPoint center = grid.CellCenter(cell);
      for (int k = 0; k < 40; ++k) {
        SpeedObservation obs;
        obs.position =
            center + geo::EnPoint{rng.Uniform(-80, 80),
                                  rng.Uniform(-80, 80)};
        obs.speed_kmh = 35.0 + light_effect_kmh * counts.traffic_lights +
                        cell_effect + rng.Gaussian(0.0, 4.0);
        world.observations.push_back(obs);
      }
    }
  }
  return world;
}

TEST(FeatureModelTest, RecoversLightEffect) {
  const SyntheticWorld world = MakeWorld(-3.0, 7);
  const FeatureModelFit fit =
      FitFeatureModel(world.observations, world.features, Grid(200.0))
          .value();
  EXPECT_NEAR(fit.Coefficient("traffic_lights"), -3.0, 0.8);
  EXPECT_NEAR(fit.Coefficient("intercept"), 35.0, 2.5);
  EXPECT_GT(fit.StandardError("traffic_lights"), 0.0);
  EXPECT_EQ(fit.cells.size(), 64u);
}

TEST(FeatureModelTest, NoEffectGivesNearZeroCoefficient) {
  const SyntheticWorld world = MakeWorld(0.0, 11);
  const FeatureModelFit fit =
      FitFeatureModel(world.observations, world.features, Grid(200.0))
          .value();
  EXPECT_NEAR(fit.Coefficient("traffic_lights"), 0.0, 0.9);
}

TEST(FeatureModelTest, UnknownTermIsZero) {
  const SyntheticWorld world = MakeWorld(-1.0, 13);
  const FeatureModelFit fit =
      FitFeatureModel(world.observations, world.features, Grid(200.0))
          .value();
  EXPECT_DOUBLE_EQ(fit.Coefficient("no_such_term"), 0.0);
  EXPECT_DOUBLE_EQ(fit.StandardError("no_such_term"), 0.0);
}

TEST(FeatureModelTest, RejectsTinyInput) {
  EXPECT_TRUE(FitFeatureModel({}, {}, Grid(200.0))
                  .status()
                  .IsFailedPrecondition());
}

// --- Hotspot detector ------------------------------------------------------

std::vector<CellRecord> DetectorCells() {
  // 20 normal cells at ~30 km/h; one slow cell with lights (explained)
  // and one slow cell without features (crowd candidate).
  std::vector<CellRecord> cells;
  for (int i = 0; i < 20; ++i) {
    CellRecord c;
    c.cell = CellId{i, 0};
    c.num_points = 50;
    c.mean_speed_kmh = 29.0 + (i % 5);
    cells.push_back(c);
  }
  CellRecord lit;
  lit.cell = CellId{0, 1};
  lit.num_points = 50;
  lit.mean_speed_kmh = 15.0;
  lit.features.traffic_lights = 3;
  cells.push_back(lit);
  CellRecord crowd;
  crowd.cell = CellId{1, 1};
  crowd.num_points = 50;
  crowd.mean_speed_kmh = 14.0;
  cells.push_back(crowd);
  return cells;
}

TEST(HotspotDetectorTest, FindsAndClassifiesSlowCells) {
  const std::vector<DetectedHotspot> hits = DetectHotspots(DetectorCells());
  ASSERT_EQ(hits.size(), 2u);
  // Slowest first.
  EXPECT_EQ(hits[0].cell.cell, (CellId{1, 1}));
  EXPECT_FALSE(hits[0].explained_by_features);
  EXPECT_EQ(hits[1].cell.cell, (CellId{0, 1}));
  EXPECT_TRUE(hits[1].explained_by_features);
  EXPECT_LT(hits[0].z_score, hits[1].z_score);
  EXPECT_LT(hits[1].z_score, -1.0);
}

TEST(HotspotDetectorTest, CrowdCandidatesOnly) {
  const auto candidates = DetectCrowdCandidates(DetectorCells());
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].cell.cell, (CellId{1, 1}));
}

TEST(HotspotDetectorTest, MinPointsFilter) {
  std::vector<CellRecord> cells = DetectorCells();
  cells[21].num_points = 3;  // the crowd cell loses its support
  HotspotDetectorOptions options;
  options.min_points = 10;
  const auto hits = DetectHotspots(cells, options);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(hits[0].explained_by_features);
}

TEST(HotspotDetectorTest, DegenerateInputs) {
  EXPECT_TRUE(DetectHotspots({}).empty());
  std::vector<CellRecord> uniform(5);
  for (int i = 0; i < 5; ++i) {
    uniform[static_cast<size_t>(i)].num_points = 20;
    uniform[static_cast<size_t>(i)].mean_speed_kmh = 25.0;  // zero sd
  }
  EXPECT_TRUE(DetectHotspots(uniform).empty());
}

TEST(HotspotDetectorTest, ThresholdRespected) {
  HotspotDetectorOptions strict;
  strict.slow_z_threshold = 10.0;  // nothing is that slow
  EXPECT_TRUE(DetectHotspots(DetectorCells(), strict).empty());
}


TEST(HotspotDetectorTest, RegionOutlineCoversDetectedCells) {
  const auto hits = DetectHotspots(DetectorCells());
  ASSERT_EQ(hits.size(), 2u);
  const Grid grid(200.0);
  const geo::Polygon outline = HotspotRegionOutline(hits, grid);
  ASSERT_FALSE(outline.empty());
  for (const DetectedHotspot& hit : hits) {
    EXPECT_TRUE(outline.Contains(grid.CellCenter(hit.cell.cell)));
  }
  EXPECT_GE(std::abs(outline.SignedArea()), 200.0 * 200.0);
}

TEST(HotspotDetectorTest, RegionOutlineEmptyForNoHits) {
  EXPECT_TRUE(HotspotRegionOutline({}, Grid(200.0)).empty());
}

}  // namespace
}  // namespace analysis
}  // namespace taxitrace
