#include "taxitrace/model/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "taxitrace/model/qq.h"

namespace taxitrace {
namespace model {

Result<ResidualDiagnostics> DiagnoseResiduals(
    const std::vector<double>& y, const std::vector<size_t>& groups,
    const OneWayRemlFit& fit, int num_buckets) {
  if (y.size() != groups.size()) {
    return Status::InvalidArgument("y and groups sizes differ");
  }
  if (num_buckets < 1 ||
      y.size() < static_cast<size_t>(3 * num_buckets)) {
    return Status::FailedPrecondition("too few observations");
  }
  ResidualDiagnostics out;
  out.n = static_cast<int64_t>(y.size());

  std::vector<double> residuals(y.size());
  std::vector<double> fitted(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    if (groups[i] >= fit.blup.size()) {
      return Status::InvalidArgument("group index outside the fit");
    }
    fitted[i] = fit.mu + fit.blup[groups[i]];
    residuals[i] = y[i] - fitted[i];
  }

  double m2 = 0.0, mean = 0.0;
  for (size_t i = 0; i < residuals.size(); ++i) {
    const double delta = residuals[i] - mean;
    mean += delta / static_cast<double>(i + 1);
    m2 += delta * (residuals[i] - mean);
  }
  out.residual_sd = std::sqrt(m2 / static_cast<double>(residuals.size() - 1));
  out.qq_correlation = QqCorrelation(NormalQqSeries(residuals));

  // Buckets by fitted value.
  std::vector<size_t> order(y.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return fitted[a] < fitted[b];
  });
  const size_t per_bucket = y.size() / static_cast<size_t>(num_buckets);
  for (int b = 0; b < num_buckets; ++b) {
    const size_t begin = static_cast<size_t>(b) * per_bucket;
    const size_t end = b + 1 == num_buckets
                           ? y.size()
                           : begin + per_bucket;
    ResidualBucket bucket;
    bucket.n = static_cast<int64_t>(end - begin);
    double fsum = 0.0, rsum = 0.0, rsq = 0.0;
    for (size_t k = begin; k < end; ++k) {
      fsum += fitted[order[k]];
      rsum += residuals[order[k]];
      rsq += residuals[order[k]] * residuals[order[k]];
    }
    const double n = static_cast<double>(bucket.n);
    bucket.fitted_mean = fsum / n;
    const double var = std::max(0.0, rsq / n - (rsum / n) * (rsum / n));
    bucket.residual_sd = std::sqrt(var);
    out.buckets.push_back(bucket);
  }
  double min_sd = out.buckets.front().residual_sd;
  double max_sd = min_sd;
  for (const ResidualBucket& bucket : out.buckets) {
    min_sd = std::min(min_sd, bucket.residual_sd);
    max_sd = std::max(max_sd, bucket.residual_sd);
  }
  out.heteroscedasticity_ratio = min_sd > 0.0 ? max_sd / min_sd : 0.0;
  return out;
}

}  // namespace model
}  // namespace taxitrace
