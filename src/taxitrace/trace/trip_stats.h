// Store-level trip statistics: the sanity panel for a collection of
// trips (counts, lengths, durations, points per trip).

#ifndef TAXITRACE_TRACE_TRIP_STATS_H_
#define TAXITRACE_TRACE_TRIP_STATS_H_

#include <string>
#include <vector>

#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace trace {

/// Aggregate statistics over a set of trips.
struct TripCollectionStats {
  int64_t trips = 0;
  int64_t points = 0;
  double total_distance_km = 0.0;
  double total_duration_h = 0.0;
  double total_fuel_l = 0.0;
  double mean_points_per_trip = 0.0;
  double mean_distance_km = 0.0;
  double mean_duration_min = 0.0;
  double median_distance_km = 0.0;
  double max_distance_km = 0.0;
};

/// Computes the statistics (totals from recomputed point data, not the
/// device-reported trip totals).
TripCollectionStats ComputeTripStats(const std::vector<Trip>& trips);

/// Multi-line text rendering for terminals.
std::string FormatTripStats(const TripCollectionStats& stats);

}  // namespace trace
}  // namespace taxitrace

#endif  // TAXITRACE_TRACE_TRIP_STATS_H_
