file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/cleaning_pipeline.cc.o"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/cleaning_pipeline.cc.o.d"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/interpolation.cc.o"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/interpolation.cc.o.d"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/order_repair.cc.o"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/order_repair.cc.o.d"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/outlier_filter.cc.o"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/outlier_filter.cc.o.d"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/segmentation.cc.o"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/segmentation.cc.o.d"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/trip_filter.cc.o"
  "CMakeFiles/taxitrace_clean.dir/taxitrace/clean/trip_filter.cc.o.d"
  "libtaxitrace_clean.a"
  "libtaxitrace_clean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_clean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
