#include "taxitrace/core/pipeline.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/clean/cleaning_pipeline.h"
#include "taxitrace/common/executor.h"
#include "taxitrace/common/random.h"
#include "taxitrace/common/strings.h"
#include "taxitrace/core/segment_match.h"
#include "taxitrace/fault/fault_injector.h"
#include "taxitrace/odselect/transition_extractor.h"
#include "taxitrace/stream/ingest_session.h"
#include "taxitrace/stream/stream_source.h"
#include "taxitrace/trace/trace_io.h"
#include "taxitrace/trace/trip_sink.h"

namespace taxitrace {
namespace core {

std::vector<analysis::TransitionRecord> StudyResults::Records() const {
  std::vector<analysis::TransitionRecord> out;
  out.reserve(transitions.size());
  for (const MatchedTransition& mt : transitions) out.push_back(mt.record);
  return out;
}

Pipeline::Pipeline(StudyConfig config) : config_(std::move(config)) {}

Result<StudyResults> Pipeline::Run() const {
  const bool collect = config_.observability.enabled;
  // The span trace is always kept — it is a handful of records per run
  // and is what StageTimings is derived from now. The registry and the
  // funnel ledger only come to life on an observability run; with
  // `collect` false no metric is ever touched and
  // StudyResults::observability stays default-empty.
  obs::Trace trace;
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics = collect ? &registry : nullptr;
  obs::FunnelLedger funnel_ledger;

  // One worker pool for every parallel stage. 0 threads = serial
  // inline execution; either way the merged outputs are byte-identical.
  const Executor executor(Executor::ResolveThreadCount(config_.num_threads));

  // 1. Substrates: city map and weather.
  obs::StageSpan map_span(&trace, "map_generation");
  TAXITRACE_ASSIGN_OR_RETURN(synth::CityMap map,
                             synth::GenerateCityMap(config_.map));
  synth::WeatherModel weather(config_.weather_seed, config_.fleet.num_days);
  map_span.AddItems(static_cast<int64_t>(map.network.num_edges()));
  map_span.Finish();

  // 2. Raw traces. Two shapes of the same computation: the in-memory
  // path materialises every raw trip in a store and cleans the store as
  // its own stage; the streaming path chains cleaning onto each trip as
  // it leaves the simulator's ordered merge, so raw points never all
  // exist at once. Trips arrive at the cleaner in the identical
  // (car, day, trip) order either way, and every cleaning counter is
  // folded per trip in that order, so the results are byte-identical.
  // Fault plans force the in-memory path: file-level faults corrupt a
  // CSV view of the whole store, which has no per-trip equivalent.
  obs::StageSpan sim_span(&trace, "simulation");
  synth::PedestrianModel pedestrians(config_.fleet.seed + 17,
                                     map.hotspots,
                                     config_.fleet.num_days);
  const synth::FleetSimulator fleet(&map, &weather, config_.fleet,
                                    &pedestrians);
  // Online ingestion consumes the materialised store (it rebuilds each
  // car's arrival stream from it), so it forces the in-memory
  // simulation path, exactly like an active fault plan does.
  const bool stream_ingest = config_.stream_ingestion;
  const bool streaming =
      config_.stream_simulation && !config_.faults.Any() && !stream_ingest;

  synth::FleetResult raw;
  int64_t trips_simulated = 0;
  int64_t points_simulated = 0;
  clean::CleaningReport streamed_report;
  std::vector<trace::Trip> streamed_cleaned;
  if (streaming) {
    struct CleaningSink final : public trace::TripSink {
      const clean::CleaningOptions* options = nullptr;
      clean::CleaningReport* report = nullptr;
      std::vector<trace::Trip>* cleaned = nullptr;
      Status Consume(trace::Trip trip) override {
        clean::TripCleanOutput out =
            clean::CleanOneTrip(std::move(trip), *options);
        clean::FoldTripCleanOutput(out, report);
        for (trace::Trip& seg : out.segments) {
          cleaned->push_back(std::move(seg));
        }
        return Status::OK();
      }
    };
    CleaningSink sink;
    sink.options = &config_.cleaning;
    sink.report = &streamed_report;
    sink.cleaned = &streamed_cleaned;
    TAXITRACE_ASSIGN_OR_RETURN(const synth::FleetRunStats stats,
                               fleet.Run(&executor, &sink));
    raw.num_customer_drives = stats.num_customer_drives;
    raw.num_reposition_drives = stats.num_reposition_drives;
    trips_simulated = stats.trips_simulated;
    points_simulated = stats.points_simulated;
  } else {
    TAXITRACE_ASSIGN_OR_RETURN(raw, fleet.Run(&executor));
    trips_simulated = static_cast<int64_t>(raw.store.NumTrips());
    points_simulated = static_cast<int64_t>(raw.store.NumPoints());
  }

  StudyResults results(std::move(map), std::move(weather),
                       std::move(pedestrians));

  // 2.5. Fault injection (skipped entirely on a fault-free plan, so the
  // default configuration runs the exact pre-harness pipeline). The
  // injection itself is serial and draws per trip id / per CSV row, so
  // the corrupted store is identical at any thread count.
  clean::CleaningOptions cleaning_options = config_.cleaning;
  fault::FaultReport injected;
  trace::TraceIoStats io_stats;
  int64_t trips_before_rebuild = trips_simulated;
  if (config_.faults.Any()) {
    obs::StageSpan fault_span(&trace, "fault_injection");
    const fault::FaultInjector injector(config_.faults);
    std::vector<trace::Trip> trips = raw.store.trips();
    injector.CorruptTrips(&trips, &injected);
    if (config_.faults.AnyFileFaults()) {
      // Route the traces through their file format: serialise, corrupt
      // rows, and read back with the lenient parser that drops what it
      // cannot understand.
      const std::string csv =
          injector.CorruptCsv(trace::TripsToCsv(trips), &injected);
      TAXITRACE_ASSIGN_OR_RETURN(trips,
                                 trace::TripsFromCsvLenient(csv, &io_stats));
      injected.rows_dropped_malformed += io_stats.rows_dropped_malformed;
      injected.rows_dropped_non_utf8 += io_stats.rows_dropped_non_utf8;
    }
    trips_before_rebuild = static_cast<int64_t>(trips.size());
    TAXITRACE_ASSIGN_OR_RETURN(
        raw.store,
        fault::RebuildStoreDroppingDuplicates(std::move(trips), &injected));

    // Corrupted input calls for the sanitiser, including a geographic
    // gate built from the road network's bounds. The 5 km inflation
    // dwarfs legitimate GPS scatter (sensor outliers jump ~450 m), so
    // only truly wild fixes — swapped coordinates, garbage parses —
    // fall outside.
    clean::SanitizeOptions& sanitize = cleaning_options.sanitize;
    sanitize.enabled = true;
    sanitize.has_region = true;
    const geo::Bbox gate_box =
        results.map.network.Bounds().Inflated(5000.0);
    const geo::LocalProjection& net_proj =
        results.map.network.projection();
    const geo::LatLon lo =
        net_proj.Inverse(geo::EnPoint{gate_box.min_x, gate_box.min_y});
    const geo::LatLon hi =
        net_proj.Inverse(geo::EnPoint{gate_box.max_x, gate_box.max_y});
    sanitize.lat_min_deg = std::min(lo.lat_deg, hi.lat_deg);
    sanitize.lat_max_deg = std::max(lo.lat_deg, hi.lat_deg);
    sanitize.lon_min_deg = std::min(lo.lon_deg, hi.lon_deg);
    sanitize.lon_max_deg = std::max(lo.lon_deg, hi.lon_deg);
    fault_span.AddItems(injected.TotalInjected());
  }

  results.raw_trips =
      streaming ? trips_simulated : static_cast<int64_t>(raw.store.NumTrips());
  sim_span.AddItems(trips_simulated);
  sim_span.Finish();

  // 3. OD gates, transition extraction and matching machinery — built
  // before the cleaning stage because the online ingestion path fuses
  // cleaning and matching into one per-window unit of work. Everything
  // here is shared read-only state for MatchSegment.
  std::vector<odselect::OdGate> gates;
  for (const synth::GateRoad& g : results.map.gates) {
    gates.emplace_back(g.name, g.geometry, config_.gate);
  }
  const geo::LocalProjection& proj = results.map.network.projection();
  const odselect::TransitionExtractor extractor(gates, proj);
  const geo::Bbox region =
      results.map.network.Bounds().Inflated(300.0);
  const roadnet::SpatialIndex index(&results.map.network);
  const mapmatch::IncrementalMatcher matcher(&results.map.network, &index,
                                             config_.matcher);
  const mapattr::AttributeFetcher fetcher(&results.map.network,
                                          config_.attributes);
  // Gate lookup by name, built once (the per-transition linear scan over
  // gates was O(gates x transitions)).
  std::unordered_map<std::string, const odselect::OdGate*> gate_by_name;
  for (const odselect::OdGate& g : gates) gate_by_name.emplace(g.name(), &g);
  SegmentMatchContext match_context;
  match_context.extractor = &extractor;
  match_context.gate_by_name = &gate_by_name;
  match_context.matcher = &matcher;
  match_context.fetcher = &fetcher;
  match_context.network = &results.map.network;
  match_context.central_area = &results.map.central_area;
  match_context.projection = &proj;
  match_context.region = region;
  match_context.transition_filter = &config_.transition_filter;
  match_context.speed = &config_.speed;
  match_context.route_cache_capacity =
      config_.matcher.gap.route_cache_capacity;

  // 3.5. Online ingestion (stream_ingestion): every car's raw trace is
  // replayed as an arrival stream — optionally shuffled by a bounded
  // displacement — through an IngestSession that undoes the reordering
  // under the watermark and flushes each window (container trip) into
  // the fused clean + match chain the moment it is complete. One
  // session per car, one car per work item: sessions share no state,
  // and the per-car outputs are merged below in store order, so the
  // results are byte-identical to batch at any worker count whenever
  // the displacement fits the lossless bound.
  struct TripIngestOutput {
    int64_t trip_id = 0;
    clean::TripCleanOutput clean;
    std::vector<SegmentMatchOutput> matches;
  };
  struct CarIngestOutput {
    int car_id = 0;
    std::vector<TripIngestOutput> trips;
    stream::IngestStats stats;
    size_t next = 0;  ///< Merge cursor for the store-order fold.
  };
  std::vector<CarIngestOutput> car_ingest;
  if (stream_ingest) {
    obs::StageSpan ingest_span(&trace, "stream_ingestion");
    const std::vector<int> car_ids = raw.store.CarIds();
    car_ingest.resize(car_ids.size());
    const Status ingest_status = executor.ParallelFor(
        0, static_cast<int64_t>(car_ids.size()),
        [&](int64_t ci) -> Status {
          const int car_id = car_ids[static_cast<size_t>(ci)];
          CarIngestOutput& out = car_ingest[static_cast<size_t>(ci)];
          out.car_id = car_id;
          stream::CarStream arrivals =
              stream::BuildCarStream(raw.store, car_id);
          if (config_.ingest.arrival_shuffle_window > 0) {
            stream::ShuffleArrivals(
                &arrivals.records,
                MixSeed(config_.ingest.arrival_shuffle_seed,
                        static_cast<uint64_t>(car_id), 0),
                config_.ingest.arrival_shuffle_window);
          }
          // Each closed window runs the same per-trip cleaning and
          // per-segment matching units the batch stages run, in the
          // same per-car order.
          struct WindowSink final : public trace::TripSink {
            const clean::CleaningOptions* options = nullptr;
            const SegmentMatchContext* context = nullptr;
            std::vector<TripIngestOutput>* out = nullptr;
            Status Consume(trace::Trip trip) override {
              TripIngestOutput rec;
              rec.trip_id = trip.trip_id;
              rec.clean = clean::CleanOneTrip(std::move(trip), *options);
              rec.matches.reserve(rec.clean.segments.size());
              for (const trace::Trip& seg : rec.clean.segments) {
                rec.matches.push_back(MatchSegment(seg, *context));
              }
              out->push_back(std::move(rec));
              return Status::OK();
            }
          };
          WindowSink sink;
          sink.options = &cleaning_options;
          sink.context = &match_context;
          sink.out = &out.trips;
          stream::IngestSession session(car_id, config_.ingest, &sink);
          for (const stream::StreamRecord& rec : arrivals.records) {
            TAXITRACE_RETURN_IF_ERROR(session.Ingest(rec));
          }
          TAXITRACE_RETURN_IF_ERROR(session.FinishStream());
          out.stats = session.stats();
          return Status::OK();
        });
    if (!ingest_status.ok()) return ingest_status;
    for (const CarIngestOutput& c : car_ingest) {
      results.ingest_stats.Add(c.stats);
    }
    ingest_span.AddItems(results.ingest_stats.points_offered +
                         results.ingest_stats.trip_markers_offered);
    ingest_span.Finish();
  }

  // 4. Cleaning: sanitiser (when faulted), order repair, error filters,
  // segmentation, filters. On a streaming run the per-trip work already
  // happened inside the simulation merge, and on an online-ingestion
  // run inside the window flushes; what remains here is folding the
  // totals, so the cleaning span is (by design) near-empty on both.
  obs::StageSpan clean_span(&trace, "cleaning");
  std::vector<trace::Trip> cleaned;
  std::vector<SegmentMatchOutput> match_outputs;
  if (stream_ingest) {
    // Merge the per-car window outputs in store order: walk the store's
    // trips and pull the matching window from its car's queue (each
    // queue is already in per-car store order — release order equals
    // canonical order). A store trip lost wholesale in ingestion is
    // skipped; its records are accounted in the funnel's ingest drops.
    clean::CleaningReport& report = results.cleaning_report;
    std::unordered_map<int, CarIngestOutput*> outputs_by_car;
    for (CarIngestOutput& c : car_ingest) {
      outputs_by_car.emplace(c.car_id, &c);
    }
    const auto fold_window = [&](TripIngestOutput& window) {
      clean::FoldTripCleanOutput(window.clean, &report);
      for (size_t k = 0; k < window.clean.segments.size(); ++k) {
        cleaned.push_back(std::move(window.clean.segments[k]));
        match_outputs.push_back(std::move(window.matches[k]));
      }
    };
    for (const trace::Trip& store_trip : raw.store.trips()) {
      const auto it = outputs_by_car.find(store_trip.car_id);
      if (it == outputs_by_car.end()) continue;
      CarIngestOutput& c = *it->second;
      if (c.next < c.trips.size() &&
          c.trips[c.next].trip_id == store_trip.trip_id) {
        fold_window(c.trips[c.next]);
        ++c.next;
      }
    }
    // Windows whose container id matches no store trip cannot arise
    // from the canonical source, but work is never dropped silently:
    // fold any leftovers in car order.
    for (CarIngestOutput& c : car_ingest) {
      for (; c.next < c.trips.size(); ++c.next) {
        fold_window(c.trips[c.next]);
      }
    }
    report.raw_trips = results.ingest_stats.windows_closed;
    report.raw_points = results.ingest_stats.points_released;
    report.clean_segments = static_cast<int64_t>(cleaned.size());
    for (const trace::Trip& t : cleaned) {
      report.clean_points += static_cast<int64_t>(t.points.size());
    }
    if (metrics != nullptr) {
      clean::PublishCleaningMetrics(report, cleaned, metrics);
    }
  } else if (streaming) {
    streamed_report.raw_trips = trips_simulated;
    streamed_report.raw_points = points_simulated;
    cleaned = std::move(streamed_cleaned);
    streamed_report.clean_segments = static_cast<int64_t>(cleaned.size());
    for (const trace::Trip& t : cleaned) {
      streamed_report.clean_points += static_cast<int64_t>(t.points.size());
    }
    results.cleaning_report = streamed_report;
    if (metrics != nullptr) {
      clean::PublishCleaningMetrics(results.cleaning_report, cleaned,
                                    metrics);
    }
  } else {
    TAXITRACE_ASSIGN_OR_RETURN(
        cleaned, clean::CleanTrips(raw.store, cleaning_options,
                                   &results.cleaning_report, &executor,
                                   metrics));
  }
  // The cleaning stage's own drop counters, before the injection
  // report is merged in — the funnel below needs the unmixed values.
  const fault::FaultReport clean_faults = results.cleaning_report.faults;
  results.cleaning_report.faults.Add(injected);
  clean_span.AddItems(results.cleaning_report.raw_trips);
  clean_span.Finish();

  // 5. Selection + matching fans out over the cleaned trips: every
  // segment is independent given the shared read-only machinery built
  // in stage 3. Each worker fills its segment's slot (MatchSegment)
  // with ordered matched transitions plus Table 3 funnel deltas; the
  // slots are then merged in cleaned order (== trip id order), so the
  // funnel, the match report's running mean, and the transition list
  // are byte-identical at any thread count. On an online-ingestion run
  // the slots were already produced at window flush and merged into
  // cleaned order above; only the fold below runs.
  obs::StageSpan match_span(&trace, "selection_matching");
  if (!stream_ingest) {
    match_outputs.resize(cleaned.size());
    TAXITRACE_RETURN_IF_ERROR(executor.ParallelFor(
        0, static_cast<int64_t>(cleaned.size()), [&](int64_t i) -> Status {
          match_outputs[static_cast<size_t>(i)] =
              MatchSegment(cleaned[static_cast<size_t>(i)], match_context);
          return Status::OK();
        }));
  }

  // Per-car funnel rows (Table 3), folded in cleaned order, plus the
  // fleet-wide totals for the study funnel ledger.
  int64_t segments_selected = 0;
  int64_t transitions_examined = 0;
  int64_t transitions_post_filtered = 0;
  int64_t dropped_direction = 0;
  int64_t dropped_outside_central = 0;
  int64_t dropped_match_failed = 0;
  int64_t dropped_unknown_gate = 0;
  int64_t dropped_endpoint_filter = 0;
  int64_t route_cache_hits = 0;
  int64_t route_cache_misses = 0;
  int64_t route_cache_evictions = 0;
  std::unordered_map<int, odselect::Table3Row> funnel;
  for (size_t i = 0; i < cleaned.size(); ++i) {
    odselect::Table3Row& row = funnel[cleaned[i].car_id];
    row.car_id = cleaned[i].car_id;
    ++row.segments_total;
    SegmentMatchOutput& out = match_outputs[i];
    row.filtered_cleaned += out.filtered_cleaned;
    row.transitions_total += out.transitions_total;
    row.transitions_central += out.transitions_central;
    row.post_filtered += out.post_filtered;
    segments_selected += out.filtered_cleaned;
    transitions_examined += out.transitions_examined;
    transitions_post_filtered += out.post_filtered;
    dropped_direction += out.dropped_direction;
    dropped_outside_central += out.dropped_outside_central;
    dropped_match_failed += out.dropped_match_failed;
    dropped_unknown_gate += out.dropped_unknown_gate;
    dropped_endpoint_filter += out.dropped_endpoint_filter;
    route_cache_hits += out.cache_hits;
    route_cache_misses += out.cache_misses;
    route_cache_evictions += out.cache_evictions;
    for (MatchedTransition& mt : out.transitions) {
      results.match_report.Add(mt.route);
      results.transitions.push_back(std::move(mt));
    }
  }

  for (int car = 1; car <= config_.fleet.num_cars; ++car) {
    odselect::Table3Row row = funnel[car];
    row.car_id = car;
    results.table3.push_back(row);
  }

  match_span.AddItems(static_cast<int64_t>(cleaned.size()));
  match_span.Finish();

  // 7. Grid statistics over all transition point speeds.
  obs::StageSpan analysis_span(&trace, "analysis");
  results.grid_cell_m = config_.grid_cell_m;
  const analysis::Grid grid(config_.grid_cell_m);
  analysis::CellSpeedAccumulator all_speeds(grid);
  std::unordered_map<std::string, analysis::CellSpeedAccumulator>
      by_direction;
  model::OneWayReml cell_model;
  std::unordered_map<analysis::CellId, size_t, analysis::CellIdHash>
      cell_group;
  double speed_sum = 0.0;
  double season_sum[analysis::kNumSeasons] = {};
  int64_t season_n[analysis::kNumSeasons] = {};
  obs::HistogramMetric* speed_hist =
      metrics != nullptr
          ? metrics->histogram("analysis.point_speed_kmh", 0.0, 120.0, 60)
          : nullptr;

  for (const MatchedTransition& mt : results.transitions) {
    auto dir_it = by_direction.find(mt.record.direction);
    if (dir_it == by_direction.end()) {
      dir_it = by_direction
                   .emplace(mt.record.direction,
                            analysis::CellSpeedAccumulator(grid))
                   .first;
    }
    for (const trace::RoutePoint& p : mt.transition.segment.points) {
      const geo::EnPoint local = proj.Forward(p.position);
      all_speeds.Add(local, p.speed_kmh);
      dir_it->second.Add(local, p.speed_kmh);

      const analysis::CellId cell = grid.CellOf(local);
      auto [group_it, inserted] =
          cell_group.emplace(cell, results.model_cells.size());
      if (inserted) results.model_cells.push_back(cell);
      cell_model.Add(group_it->second, p.speed_kmh);

      ++results.total_point_speeds;
      speed_sum += p.speed_kmh;
      if (speed_hist != nullptr) speed_hist->Record(p.speed_kmh);
      const int season =
          static_cast<int>(analysis::SeasonOfTimestamp(p.timestamp_s));
      season_sum[season] += p.speed_kmh;
      ++season_n[season];
    }
  }
  results.overall_mean_speed_kmh =
      results.total_point_speeds > 0
          ? speed_sum / static_cast<double>(results.total_point_speeds)
          : 0.0;
  for (int s = 0; s < analysis::kNumSeasons; ++s) {
    results.seasonal[s].n = season_n[s];
    results.seasonal[s].mean_kmh =
        season_n[s] > 0 ? season_sum[s] / static_cast<double>(season_n[s])
                        : 0.0;
    results.seasonal[s].delta_kmh =
        season_n[s] > 0
            ? results.seasonal[s].mean_kmh - results.overall_mean_speed_kmh
            : 0.0;
  }

  // 8. Cell joins and the mixed model.
  results.cell_features = ComputeCellFeatures(results.map.network, grid);
  results.cells = BuildCellRecords(all_speeds, results.cell_features);
  for (const auto& [direction, acc] : by_direction) {
    results.cells_by_direction[direction] =
        BuildCellRecords(acc, results.cell_features);
  }
  if (cell_model.num_observations() > 3 && cell_model.num_groups() >= 2) {
    TAXITRACE_ASSIGN_OR_RETURN(results.cell_model, cell_model.Fit());
    TAXITRACE_ASSIGN_OR_RETURN(results.geography_lrt,
                               model::TestRandomEffect(cell_model));
  }
  analysis_span.AddItems(results.total_point_speeds);
  analysis_span.Finish();

  if (collect) {
    // Funnel ledger: one reconciled row per stage, every drop named.
    // Every value is a deterministic data count merged in index order,
    // so the ledger is byte-identical at any worker count.
    const clean::CleaningReport& cr = results.cleaning_report;
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("trips.simulated", "trips");
      s.in = trips_simulated;
      s.out = trips_simulated;
    }
    {
      // Identity source stage: the raw point volume entering the
      // pipeline (counted before any fault injection), so the point
      // funnel has an upstream anchor like the trip funnel does. The
      // count comes from the store in memory or from FleetRunStats on
      // a streaming run — identical by construction.
      obs::FunnelStage& s =
          funnel_ledger.AddStage("points.simulated", "points");
      s.in = points_simulated;
      s.out = points_simulated;
    }
    if (config_.faults.Any()) {
      if (config_.faults.AnyFileFaults()) {
        obs::FunnelStage& s =
            funnel_ledger.AddStage("rows.csv_lenient_parse", "rows");
        s.in = io_stats.rows_total;
        s.Drop("malformed", io_stats.rows_dropped_malformed);
        s.Drop("non_utf8", io_stats.rows_dropped_non_utf8);
        s.out = s.in - s.TotalDropped();
      }
      obs::FunnelStage& s =
          funnel_ledger.AddStage("trips.store_rebuild", "trips");
      s.in = trips_before_rebuild;
      s.Drop("duplicate_id", injected.trips_dropped_duplicate_id);
      s.out = results.raw_trips;
    }
    if (stream_ingest) {
      const stream::IngestStats& ing = results.ingest_stats;
      {
        // in == out + drops exactly: every point record the source
        // offered is either released into a window or dropped as a
        // counted late arrival — nothing is silently lost.
        obs::FunnelStage& s =
            funnel_ledger.AddStage("points.ingested", "points");
        s.in = ing.points_offered;
        s.Drop("late_arrival", ing.points_dropped_late);
        s.out = ing.points_released;
      }
      {
        // Window lifecycle: markers offered plus implicitly opened
        // containers, minus late markers, equals windows closed (every
        // opened window closes by end of stream).
        obs::FunnelStage& s =
            funnel_ledger.AddStage("windows.closed", "windows");
        s.in = ing.trip_markers_offered + ing.windows_opened_implicit;
        s.Drop("marker_late_arrival", ing.trip_markers_dropped_late);
        s.out = ing.windows_closed;
      }
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("trips.cleaning", "trips");
      s.in = cr.raw_trips;
      s.Drop("empty", clean_faults.trips_dropped_empty);
      s.out = cr.segmentation.trips_in;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("points.sanitize", "points");
      s.in = cr.raw_points;
      s.Drop("nonfinite", clean_faults.points_dropped_nonfinite);
      s.Drop("foreign_trip", clean_faults.points_dropped_foreign);
      s.Drop("negative_speed", clean_faults.points_dropped_negative_speed);
      s.Drop("out_of_region", clean_faults.points_dropped_out_of_region);
      s.Drop("clock_jump", clean_faults.points_dropped_clock_jump);
      s.out = cr.points_after_sanitize;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("points.outlier_filter", "points");
      s.in = cr.points_after_sanitize;
      s.Drop("duplicate", cr.outliers.duplicates_removed);
      s.Drop("spike", cr.outliers.spikes_removed);
      s.Drop("implied_speed", cr.outliers.implied_speed_removed);
      s.out = cr.points_after_outliers;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("segments.filter", "segments");
      s.in = cr.segmentation.segments_out;
      s.Drop("too_few_points", cr.filter.removed_too_few_points);
      s.Drop("too_long", cr.filter.removed_too_long);
      s.out = cr.filter.kept;
    }
    if (stream_ingest) {
      // The online path's emission point: every segment surviving the
      // cleaning filters inside a window flush was handed straight to
      // the matcher (no buffering between), hence in == out.
      obs::FunnelStage& s =
          funnel_ledger.AddStage("segments.emitted_online", "segments");
      s.in = cr.clean_segments;
      s.out = cr.clean_segments;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("segments.gate_selection", "segments");
      s.in = static_cast<int64_t>(cleaned.size());
      s.Drop("no_gate_crossing",
             static_cast<int64_t>(cleaned.size()) - segments_selected);
      s.out = segments_selected;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("transitions.selection", "transitions");
      s.in = transitions_examined;
      s.Drop("direction_not_selected", dropped_direction);
      s.Drop("outside_central_area", dropped_outside_central);
      s.Drop("match_failed", dropped_match_failed);
      s.Drop("unknown_gate", dropped_unknown_gate);
      s.Drop("endpoint_filter", dropped_endpoint_filter);
      s.out = transitions_post_filtered;
    }
    TAXITRACE_RETURN_IF_ERROR(funnel_ledger.CheckReconciles());

    // Deterministic work counters from the matching machinery and the
    // funnel endpoints. These feed the determinism tests; gauges below
    // do not.
    const roadnet::SpatialIndexStats idx = index.stats();
    registry.counter("roadnet.spatial_index.queries")->Add(idx.queries);
    registry.counter("roadnet.spatial_index.cells_probed")
        ->Add(idx.cells_probed);
    registry.counter("roadnet.spatial_index.candidates")
        ->Add(idx.candidates);
    registry.counter("roadnet.spatial_index.hits")->Add(idx.hits);
    registry.counter("roadnet.spatial_index.empty_geometry_edges")
        ->Add(idx.empty_geometry_edges);
    const roadnet::RouterStats rt = matcher.gap_filler().router().stats();
    registry.counter("roadnet.router.searches")->Add(rt.searches);
    registry.counter("roadnet.router.heap_pops")->Add(rt.heap_pops);
    registry.counter("roadnet.router.settled_vertices")
        ->Add(rt.settled_vertices);
    registry.counter("roadnet.router.goal_directed_searches")
        ->Add(rt.goal_directed_searches);
    registry.counter("mapmatch.route_cache.hits")->Add(route_cache_hits);
    registry.counter("mapmatch.route_cache.misses")
        ->Add(route_cache_misses);
    registry.counter("mapmatch.route_cache.evictions")
        ->Add(route_cache_evictions);
    registry.counter("pipeline.trips_simulated")->Add(trips_simulated);
    registry.counter("pipeline.segments_selected")->Add(segments_selected);
    registry.counter("pipeline.transitions_matched")
        ->Add(transitions_post_filtered);
    registry.counter("pipeline.point_speeds")
        ->Add(results.total_point_speeds);
    if (config_.faults.Any()) {
      registry.counter("fault.injected_total")
          ->Add(injected.TotalInjected());
      registry.counter("fault.dropped_total")
          ->Add(results.cleaning_report.faults.TotalDropped());
    }
    if (stream_ingest) {
      const stream::IngestStats& ing = results.ingest_stats;
      registry.counter("stream.points_ingested")->Add(ing.points_released);
      registry.counter("stream.points_dropped_late")
          ->Add(ing.points_dropped_late);
      registry.counter("stream.windows_closed")->Add(ing.windows_closed);
      registry.counter("stream.windows_opened_implicit")
          ->Add(ing.windows_opened_implicit);
      registry.counter("stream.slots_declared_lost")
          ->Add(ing.slots_declared_lost);
      // Deterministic too (a max of per-car deterministic values), but
      // a high-water mark is a level, not a flow — hence a gauge.
      registry.gauge("stream.peak_buffered_records")
          ->Set(static_cast<double>(ing.peak_buffered_records));
    }

    // Executor load: scheduling-dependent by nature, hence gauges.
    const ExecutorStats ex = executor.stats();
    registry.gauge("executor.batches")->Set(static_cast<double>(ex.batches));
    registry.gauge("executor.serial_items")
        ->Set(static_cast<double>(ex.serial_items));
    registry.gauge("executor.queue_wait_ms")->Set(ex.queue_wait_ms);
    for (size_t w = 0; w < ex.items_per_worker.size(); ++w) {
      registry.gauge(StrFormat("executor.worker%02d.items",
                               static_cast<int>(w)))
          ->Set(static_cast<double>(ex.items_per_worker[w]));
    }

    results.observability.enabled = true;
    results.observability.funnel = funnel_ledger;
    results.observability.counters = registry.Counters();
    results.observability.gauges = registry.Gauges();
    results.observability.histograms = registry.Histograms();
    results.observability.spans = trace.records();
  }

  // Back-compat StageTimings, derived from the top-level stage spans.
  StageTimings timings;
  timings.simulation_threads = executor.num_threads();
  timings.cleaning_threads = executor.num_threads();
  timings.selection_matching_threads = executor.num_threads();
  for (const obs::SpanRecord& r : trace.records()) {
    if (r.name == "map_generation") {
      timings.map_generation_ms = r.duration_ms;
    } else if (r.name == "simulation") {
      timings.simulation_ms = r.duration_ms;
    } else if (r.name == "cleaning") {
      timings.cleaning_ms = r.duration_ms;
    } else if (r.name == "selection_matching") {
      timings.selection_matching_ms = r.duration_ms;
    } else if (r.name == "stream_ingestion") {
      timings.stream_ingest_ms = r.duration_ms;
    } else if (r.name == "analysis") {
      timings.analysis_ms = r.duration_ms;
    }
  }
  results.timings = timings;
  return results;
}

}  // namespace core
}  // namespace taxitrace
