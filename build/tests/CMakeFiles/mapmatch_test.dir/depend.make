# Empty dependencies file for mapmatch_test.
# This may be replaced when dependencies are built.
