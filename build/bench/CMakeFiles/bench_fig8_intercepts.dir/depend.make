# Empty dependencies file for bench_fig8_intercepts.
# This may be replaced when dependencies are built.
