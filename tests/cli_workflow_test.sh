#!/usr/bin/env bash
# End-to-end workflow test of the taxitrace_cli binary: generate a map,
# simulate a small fleet, clean, match and analyze, asserting that every
# stage succeeds and produces non-trivial artefacts.
set -euo pipefail
CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

"$CLI" generate-map elements.csv features.csv 7
test -s elements.csv
test -s features.csv
grep -q "traffic_light" features.csv

"$CLI" simulate elements.csv features.csv trips.csv 1 3 9
test -s trips.csv
# Header plus at least a hundred points.
test "$(wc -l < trips.csv)" -gt 100

"$CLI" clean trips.csv segments.csv | grep -q "rule 1 splits"
test -s segments.csv

"$CLI" match elements.csv features.csv segments.csv routes.geojson 20 \
  | grep -q "matched"
grep -q "LineString" routes.geojson

"$CLI" analyze segments.csv | grep -q "Mixed model"

# The observability-enabled study prints a reconciled funnel and writes
# the snapshot JSON when asked.
"$CLI" study --metrics-json metrics.json 2 7 | grep -q "transitions.selection"
test -s metrics.json
grep -q '"funnel"' metrics.json
grep -q '"counters"' metrics.json

# Unknown commands fail cleanly.
if "$CLI" frobnicate 2>/dev/null; then
  echo "expected failure for unknown command" >&2
  exit 1
fi
echo "cli workflow OK"
