file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_seasons.dir/bench_fig5_seasons.cc.o"
  "CMakeFiles/bench_fig5_seasons.dir/bench_fig5_seasons.cc.o.d"
  "bench_fig5_seasons"
  "bench_fig5_seasons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_seasons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
