#include "taxitrace/core/pipeline.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/clean/cleaning_pipeline.h"
#include "taxitrace/common/executor.h"
#include "taxitrace/common/strings.h"
#include "taxitrace/fault/fault_injector.h"
#include "taxitrace/odselect/transition_extractor.h"
#include "taxitrace/trace/trace_io.h"

namespace taxitrace {
namespace core {

std::vector<analysis::TransitionRecord> StudyResults::Records() const {
  std::vector<analysis::TransitionRecord> out;
  out.reserve(transitions.size());
  for (const MatchedTransition& mt : transitions) out.push_back(mt.record);
  return out;
}

Pipeline::Pipeline(StudyConfig config) : config_(std::move(config)) {}

Result<StudyResults> Pipeline::Run() const {
  const bool collect = config_.observability.enabled;
  // The span trace is always kept — it is a handful of records per run
  // and is what StageTimings is derived from now. The registry and the
  // funnel ledger only come to life on an observability run; with
  // `collect` false no metric is ever touched and
  // StudyResults::observability stays default-empty.
  obs::Trace trace;
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics = collect ? &registry : nullptr;
  obs::FunnelLedger funnel_ledger;

  // One worker pool for every parallel stage. 0 threads = serial
  // inline execution; either way the merged outputs are byte-identical.
  const Executor executor(Executor::ResolveThreadCount(config_.num_threads));

  // 1. Substrates: city map and weather.
  obs::StageSpan map_span(&trace, "map_generation");
  TAXITRACE_ASSIGN_OR_RETURN(synth::CityMap map,
                             synth::GenerateCityMap(config_.map));
  synth::WeatherModel weather(config_.weather_seed, config_.fleet.num_days);
  map_span.AddItems(static_cast<int64_t>(map.network.edges().size()));
  map_span.Finish();

  // 2. Raw traces. Two shapes of the same computation: the in-memory
  // path materialises every raw trip in a store and cleans the store as
  // its own stage; the streaming path chains cleaning onto each trip as
  // it leaves the simulator's ordered merge, so raw points never all
  // exist at once. Trips arrive at the cleaner in the identical
  // (car, day, trip) order either way, and every cleaning counter is
  // folded per trip in that order, so the results are byte-identical.
  // Fault plans force the in-memory path: file-level faults corrupt a
  // CSV view of the whole store, which has no per-trip equivalent.
  obs::StageSpan sim_span(&trace, "simulation");
  synth::PedestrianModel pedestrians(config_.fleet.seed + 17,
                                     map.hotspots,
                                     config_.fleet.num_days);
  const synth::FleetSimulator fleet(&map, &weather, config_.fleet,
                                    &pedestrians);
  const bool streaming = config_.stream_simulation && !config_.faults.Any();

  synth::FleetResult raw;
  int64_t trips_simulated = 0;
  int64_t points_simulated = 0;
  clean::CleaningReport streamed_report;
  std::vector<trace::Trip> streamed_cleaned;
  if (streaming) {
    struct CleaningSink final : public trace::TripSink {
      const clean::CleaningOptions* options = nullptr;
      clean::CleaningReport* report = nullptr;
      std::vector<trace::Trip>* cleaned = nullptr;
      Status Consume(trace::Trip trip) override {
        clean::TripCleanOutput out =
            clean::CleanOneTrip(std::move(trip), *options);
        clean::FoldTripCleanOutput(out, report);
        for (trace::Trip& seg : out.segments) {
          cleaned->push_back(std::move(seg));
        }
        return Status::OK();
      }
    };
    CleaningSink sink;
    sink.options = &config_.cleaning;
    sink.report = &streamed_report;
    sink.cleaned = &streamed_cleaned;
    TAXITRACE_ASSIGN_OR_RETURN(const synth::FleetRunStats stats,
                               fleet.Run(&executor, &sink));
    raw.num_customer_drives = stats.num_customer_drives;
    raw.num_reposition_drives = stats.num_reposition_drives;
    trips_simulated = stats.trips_simulated;
    points_simulated = stats.points_simulated;
  } else {
    TAXITRACE_ASSIGN_OR_RETURN(raw, fleet.Run(&executor));
    trips_simulated = static_cast<int64_t>(raw.store.NumTrips());
    points_simulated = static_cast<int64_t>(raw.store.NumPoints());
  }

  StudyResults results(std::move(map), std::move(weather),
                       std::move(pedestrians));

  // 2.5. Fault injection (skipped entirely on a fault-free plan, so the
  // default configuration runs the exact pre-harness pipeline). The
  // injection itself is serial and draws per trip id / per CSV row, so
  // the corrupted store is identical at any thread count.
  clean::CleaningOptions cleaning_options = config_.cleaning;
  fault::FaultReport injected;
  trace::TraceIoStats io_stats;
  int64_t trips_before_rebuild = trips_simulated;
  if (config_.faults.Any()) {
    obs::StageSpan fault_span(&trace, "fault_injection");
    const fault::FaultInjector injector(config_.faults);
    std::vector<trace::Trip> trips = raw.store.trips();
    injector.CorruptTrips(&trips, &injected);
    if (config_.faults.AnyFileFaults()) {
      // Route the traces through their file format: serialise, corrupt
      // rows, and read back with the lenient parser that drops what it
      // cannot understand.
      const std::string csv =
          injector.CorruptCsv(trace::TripsToCsv(trips), &injected);
      TAXITRACE_ASSIGN_OR_RETURN(trips,
                                 trace::TripsFromCsvLenient(csv, &io_stats));
      injected.rows_dropped_malformed += io_stats.rows_dropped_malformed;
      injected.rows_dropped_non_utf8 += io_stats.rows_dropped_non_utf8;
    }
    trips_before_rebuild = static_cast<int64_t>(trips.size());
    TAXITRACE_ASSIGN_OR_RETURN(
        raw.store,
        fault::RebuildStoreDroppingDuplicates(std::move(trips), &injected));

    // Corrupted input calls for the sanitiser, including a geographic
    // gate built from the road network's bounds. The 5 km inflation
    // dwarfs legitimate GPS scatter (sensor outliers jump ~450 m), so
    // only truly wild fixes — swapped coordinates, garbage parses —
    // fall outside.
    clean::SanitizeOptions& sanitize = cleaning_options.sanitize;
    sanitize.enabled = true;
    sanitize.has_region = true;
    const geo::Bbox gate_box =
        results.map.network.Bounds().Inflated(5000.0);
    const geo::LocalProjection& net_proj =
        results.map.network.projection();
    const geo::LatLon lo =
        net_proj.Inverse(geo::EnPoint{gate_box.min_x, gate_box.min_y});
    const geo::LatLon hi =
        net_proj.Inverse(geo::EnPoint{gate_box.max_x, gate_box.max_y});
    sanitize.lat_min_deg = std::min(lo.lat_deg, hi.lat_deg);
    sanitize.lat_max_deg = std::max(lo.lat_deg, hi.lat_deg);
    sanitize.lon_min_deg = std::min(lo.lon_deg, hi.lon_deg);
    sanitize.lon_max_deg = std::max(lo.lon_deg, hi.lon_deg);
    fault_span.AddItems(injected.TotalInjected());
  }

  results.raw_trips =
      streaming ? trips_simulated : static_cast<int64_t>(raw.store.NumTrips());
  sim_span.AddItems(trips_simulated);
  sim_span.Finish();

  // 3. Cleaning: sanitiser (when faulted), order repair, error filters,
  // segmentation, filters. On a streaming run the per-trip work already
  // happened inside the simulation merge; what remains here is folding
  // the totals, so the cleaning span is (by design) near-empty.
  obs::StageSpan clean_span(&trace, "cleaning");
  std::vector<trace::Trip> cleaned;
  if (streaming) {
    streamed_report.raw_trips = trips_simulated;
    streamed_report.raw_points = points_simulated;
    cleaned = std::move(streamed_cleaned);
    streamed_report.clean_segments = static_cast<int64_t>(cleaned.size());
    for (const trace::Trip& t : cleaned) {
      streamed_report.clean_points += static_cast<int64_t>(t.points.size());
    }
    results.cleaning_report = streamed_report;
    if (metrics != nullptr) {
      clean::PublishCleaningMetrics(results.cleaning_report, cleaned,
                                    metrics);
    }
  } else {
    TAXITRACE_ASSIGN_OR_RETURN(
        cleaned, clean::CleanTrips(raw.store, cleaning_options,
                                   &results.cleaning_report, &executor,
                                   metrics));
  }
  // The cleaning stage's own drop counters, before the injection
  // report is merged in — the funnel below needs the unmixed values.
  const fault::FaultReport clean_faults = results.cleaning_report.faults;
  results.cleaning_report.faults.Add(injected);
  clean_span.AddItems(results.cleaning_report.raw_trips);
  clean_span.Finish();

  // 4. OD gates and transition extraction.
  obs::StageSpan match_span(&trace, "selection_matching");
  std::vector<odselect::OdGate> gates;
  for (const synth::GateRoad& g : results.map.gates) {
    gates.emplace_back(g.name, g.geometry, config_.gate);
  }
  const geo::LocalProjection& proj = results.map.network.projection();
  const odselect::TransitionExtractor extractor(gates, proj);
  const geo::Bbox region =
      results.map.network.Bounds().Inflated(300.0);

  // 5. Matching machinery.
  const roadnet::SpatialIndex index(&results.map.network);
  const mapmatch::IncrementalMatcher matcher(&results.map.network, &index,
                                             config_.matcher);
  const mapattr::AttributeFetcher fetcher(&results.map.network,
                                          config_.attributes);

  // Gate lookup by name, built once (the per-transition linear scan over
  // gates was O(gates x transitions)).
  std::unordered_map<std::string, const odselect::OdGate*> gate_by_name;
  for (const odselect::OdGate& g : gates) gate_by_name.emplace(g.name(), &g);

  // Selection + matching fans out over the cleaned trips: every segment
  // is independent given the shared read-only machinery above. Each
  // worker fills its segment's slot with ordered matched transitions
  // plus Table 3 funnel deltas; the slots are then merged in cleaned
  // order (== trip id order), so the funnel, the match report's running
  // mean, and the transition list are byte-identical at any thread
  // count.
  struct SegmentMatchOutput {
    int64_t filtered_cleaned = 0;
    int64_t transitions_total = 0;
    int64_t transitions_central = 0;
    int64_t post_filtered = 0;
    // Explicit drop accounting for the transition funnel stage: every
    // examined transition lands in exactly one bucket, so
    // examined == post_filtered + the five drop counters.
    int64_t transitions_examined = 0;
    int64_t dropped_direction = 0;
    int64_t dropped_outside_central = 0;
    int64_t dropped_match_failed = 0;
    int64_t dropped_unknown_gate = 0;
    int64_t dropped_endpoint_filter = 0;
    // Final tallies of this trip's route cache. Folding them in cleaned
    // order gives worker-count-independent totals because each cache
    // lives and dies inside one work item.
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t cache_evictions = 0;
    std::vector<MatchedTransition> transitions;
  };
  std::vector<SegmentMatchOutput> match_outputs(cleaned.size());

  TAXITRACE_RETURN_IF_ERROR(executor.ParallelFor(
      0, static_cast<int64_t>(cleaned.size()), [&](int64_t i) -> Status {
        const trace::Trip& segment = cleaned[static_cast<size_t>(i)];
        SegmentMatchOutput& out = match_outputs[static_cast<size_t>(i)];
        // One route memo per cleaned trip, shared by all its matched
        // transitions and never by other work items.
        mapmatch::RouteCache route_cache(
            config_.matcher.gap.route_cache_capacity);

        const odselect::TripGateAnalysis analysis =
            extractor.Analyze(segment);
        if (!analysis.crosses_gate_at_angle ||
            analysis.distinct_gates_crossed < 2) {
          return Status::OK();
        }
        ++out.filtered_cleaned;

        for (const odselect::Transition& transition : analysis.transitions) {
          ++out.transitions_examined;
          if (!odselect::IsSelectedDirection(transition,
                                             config_.transition_filter)) {
            ++out.dropped_direction;
            continue;
          }
          ++out.transitions_total;
          if (!odselect::IsWithinCentralArea(transition,
                                             results.map.central_area,
                                             region, proj,
                                             config_.transition_filter)) {
            ++out.dropped_outside_central;
            continue;
          }
          ++out.transitions_central;

          // Map matching (only cleared transitions through the centre
          // are matched, as in the paper).
          Result<mapmatch::MatchedRoute> route =
              matcher.Match(transition.segment, &route_cache);
          if (!route.ok()) {
            ++out.dropped_match_failed;
            continue;
          }

          const auto origin_it = gate_by_name.find(transition.origin);
          const auto dest_it = gate_by_name.find(transition.destination);
          if (origin_it == gate_by_name.end() ||
              dest_it == gate_by_name.end()) {
            ++out.dropped_unknown_gate;
            continue;
          }
          if (!odselect::PassesEndpointPostFilter(
                  route->geometry, *origin_it->second, *dest_it->second,
                  config_.transition_filter)) {
            ++out.dropped_endpoint_filter;
            continue;
          }
          ++out.post_filtered;

          // 6. Attributes and the per-transition record.
          MatchedTransition mt{transition, std::move(*route), {}};
          mt.record.trip_id = transition.segment.trip_id;
          mt.record.car_id = transition.segment.car_id;
          mt.record.direction = transition.Label();
          mt.record.start_time_s = transition.segment.StartTime();
          mt.record.route_time_h =
              trace::TimeSpanSeconds(transition.segment.points) / 3600.0;
          mt.record.route_distance_km = mt.route.length_m / 1000.0;
          mt.record.low_speed_share =
              analysis::LowSpeedShare(transition.segment, config_.speed);
          mt.record.normal_speed_share = analysis::NormalSpeedShare(
              transition.segment, mt.route, results.map.network,
              config_.speed);
          double fuel = 0.0;
          for (size_t k = 1; k < transition.segment.points.size(); ++k) {
            fuel += transition.segment.points[k].fuel_delta_ml;
          }
          mt.record.fuel_ml = fuel;
          mt.record.attributes = fetcher.Fetch(mt.route);
          out.transitions.push_back(std::move(mt));
        }
        out.cache_hits = route_cache.stats().hits;
        out.cache_misses = route_cache.stats().misses;
        out.cache_evictions = route_cache.stats().evictions;
        return Status::OK();
      }));

  // Per-car funnel rows (Table 3), folded in cleaned order, plus the
  // fleet-wide totals for the study funnel ledger.
  int64_t segments_selected = 0;
  int64_t transitions_examined = 0;
  int64_t transitions_post_filtered = 0;
  int64_t dropped_direction = 0;
  int64_t dropped_outside_central = 0;
  int64_t dropped_match_failed = 0;
  int64_t dropped_unknown_gate = 0;
  int64_t dropped_endpoint_filter = 0;
  int64_t route_cache_hits = 0;
  int64_t route_cache_misses = 0;
  int64_t route_cache_evictions = 0;
  std::unordered_map<int, odselect::Table3Row> funnel;
  for (size_t i = 0; i < cleaned.size(); ++i) {
    odselect::Table3Row& row = funnel[cleaned[i].car_id];
    row.car_id = cleaned[i].car_id;
    ++row.segments_total;
    SegmentMatchOutput& out = match_outputs[i];
    row.filtered_cleaned += out.filtered_cleaned;
    row.transitions_total += out.transitions_total;
    row.transitions_central += out.transitions_central;
    row.post_filtered += out.post_filtered;
    segments_selected += out.filtered_cleaned;
    transitions_examined += out.transitions_examined;
    transitions_post_filtered += out.post_filtered;
    dropped_direction += out.dropped_direction;
    dropped_outside_central += out.dropped_outside_central;
    dropped_match_failed += out.dropped_match_failed;
    dropped_unknown_gate += out.dropped_unknown_gate;
    dropped_endpoint_filter += out.dropped_endpoint_filter;
    route_cache_hits += out.cache_hits;
    route_cache_misses += out.cache_misses;
    route_cache_evictions += out.cache_evictions;
    for (MatchedTransition& mt : out.transitions) {
      results.match_report.Add(mt.route);
      results.transitions.push_back(std::move(mt));
    }
  }

  for (int car = 1; car <= config_.fleet.num_cars; ++car) {
    odselect::Table3Row row = funnel[car];
    row.car_id = car;
    results.table3.push_back(row);
  }

  match_span.AddItems(static_cast<int64_t>(cleaned.size()));
  match_span.Finish();

  // 7. Grid statistics over all transition point speeds.
  obs::StageSpan analysis_span(&trace, "analysis");
  results.grid_cell_m = config_.grid_cell_m;
  const analysis::Grid grid(config_.grid_cell_m);
  analysis::CellSpeedAccumulator all_speeds(grid);
  std::unordered_map<std::string, analysis::CellSpeedAccumulator>
      by_direction;
  model::OneWayReml cell_model;
  std::unordered_map<analysis::CellId, size_t, analysis::CellIdHash>
      cell_group;
  double speed_sum = 0.0;
  double season_sum[analysis::kNumSeasons] = {};
  int64_t season_n[analysis::kNumSeasons] = {};
  obs::HistogramMetric* speed_hist =
      metrics != nullptr
          ? metrics->histogram("analysis.point_speed_kmh", 0.0, 120.0, 60)
          : nullptr;

  for (const MatchedTransition& mt : results.transitions) {
    auto dir_it = by_direction.find(mt.record.direction);
    if (dir_it == by_direction.end()) {
      dir_it = by_direction
                   .emplace(mt.record.direction,
                            analysis::CellSpeedAccumulator(grid))
                   .first;
    }
    for (const trace::RoutePoint& p : mt.transition.segment.points) {
      const geo::EnPoint local = proj.Forward(p.position);
      all_speeds.Add(local, p.speed_kmh);
      dir_it->second.Add(local, p.speed_kmh);

      const analysis::CellId cell = grid.CellOf(local);
      auto [group_it, inserted] =
          cell_group.emplace(cell, results.model_cells.size());
      if (inserted) results.model_cells.push_back(cell);
      cell_model.Add(group_it->second, p.speed_kmh);

      ++results.total_point_speeds;
      speed_sum += p.speed_kmh;
      if (speed_hist != nullptr) speed_hist->Record(p.speed_kmh);
      const int season =
          static_cast<int>(analysis::SeasonOfTimestamp(p.timestamp_s));
      season_sum[season] += p.speed_kmh;
      ++season_n[season];
    }
  }
  results.overall_mean_speed_kmh =
      results.total_point_speeds > 0
          ? speed_sum / static_cast<double>(results.total_point_speeds)
          : 0.0;
  for (int s = 0; s < analysis::kNumSeasons; ++s) {
    results.seasonal[s].n = season_n[s];
    results.seasonal[s].mean_kmh =
        season_n[s] > 0 ? season_sum[s] / static_cast<double>(season_n[s])
                        : 0.0;
    results.seasonal[s].delta_kmh =
        season_n[s] > 0
            ? results.seasonal[s].mean_kmh - results.overall_mean_speed_kmh
            : 0.0;
  }

  // 8. Cell joins and the mixed model.
  results.cell_features = ComputeCellFeatures(results.map.network, grid);
  results.cells = BuildCellRecords(all_speeds, results.cell_features);
  for (const auto& [direction, acc] : by_direction) {
    results.cells_by_direction[direction] =
        BuildCellRecords(acc, results.cell_features);
  }
  if (cell_model.num_observations() > 3 && cell_model.num_groups() >= 2) {
    TAXITRACE_ASSIGN_OR_RETURN(results.cell_model, cell_model.Fit());
    TAXITRACE_ASSIGN_OR_RETURN(results.geography_lrt,
                               model::TestRandomEffect(cell_model));
  }
  analysis_span.AddItems(results.total_point_speeds);
  analysis_span.Finish();

  if (collect) {
    // Funnel ledger: one reconciled row per stage, every drop named.
    // Every value is a deterministic data count merged in index order,
    // so the ledger is byte-identical at any worker count.
    const clean::CleaningReport& cr = results.cleaning_report;
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("trips.simulated", "trips");
      s.in = trips_simulated;
      s.out = trips_simulated;
    }
    {
      // Identity source stage: the raw point volume entering the
      // pipeline (counted before any fault injection), so the point
      // funnel has an upstream anchor like the trip funnel does. The
      // count comes from the store in memory or from FleetRunStats on
      // a streaming run — identical by construction.
      obs::FunnelStage& s =
          funnel_ledger.AddStage("points.simulated", "points");
      s.in = points_simulated;
      s.out = points_simulated;
    }
    if (config_.faults.Any()) {
      if (config_.faults.AnyFileFaults()) {
        obs::FunnelStage& s =
            funnel_ledger.AddStage("rows.csv_lenient_parse", "rows");
        s.in = io_stats.rows_total;
        s.Drop("malformed", io_stats.rows_dropped_malformed);
        s.Drop("non_utf8", io_stats.rows_dropped_non_utf8);
        s.out = s.in - s.TotalDropped();
      }
      obs::FunnelStage& s =
          funnel_ledger.AddStage("trips.store_rebuild", "trips");
      s.in = trips_before_rebuild;
      s.Drop("duplicate_id", injected.trips_dropped_duplicate_id);
      s.out = results.raw_trips;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("trips.cleaning", "trips");
      s.in = cr.raw_trips;
      s.Drop("empty", clean_faults.trips_dropped_empty);
      s.out = cr.segmentation.trips_in;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("points.sanitize", "points");
      s.in = cr.raw_points;
      s.Drop("nonfinite", clean_faults.points_dropped_nonfinite);
      s.Drop("foreign_trip", clean_faults.points_dropped_foreign);
      s.Drop("negative_speed", clean_faults.points_dropped_negative_speed);
      s.Drop("out_of_region", clean_faults.points_dropped_out_of_region);
      s.Drop("clock_jump", clean_faults.points_dropped_clock_jump);
      s.out = cr.points_after_sanitize;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("points.outlier_filter", "points");
      s.in = cr.points_after_sanitize;
      s.Drop("duplicate", cr.outliers.duplicates_removed);
      s.Drop("spike", cr.outliers.spikes_removed);
      s.Drop("implied_speed", cr.outliers.implied_speed_removed);
      s.out = cr.points_after_outliers;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("segments.filter", "segments");
      s.in = cr.segmentation.segments_out;
      s.Drop("too_few_points", cr.filter.removed_too_few_points);
      s.Drop("too_long", cr.filter.removed_too_long);
      s.out = cr.filter.kept;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("segments.gate_selection", "segments");
      s.in = static_cast<int64_t>(cleaned.size());
      s.Drop("no_gate_crossing",
             static_cast<int64_t>(cleaned.size()) - segments_selected);
      s.out = segments_selected;
    }
    {
      obs::FunnelStage& s =
          funnel_ledger.AddStage("transitions.selection", "transitions");
      s.in = transitions_examined;
      s.Drop("direction_not_selected", dropped_direction);
      s.Drop("outside_central_area", dropped_outside_central);
      s.Drop("match_failed", dropped_match_failed);
      s.Drop("unknown_gate", dropped_unknown_gate);
      s.Drop("endpoint_filter", dropped_endpoint_filter);
      s.out = transitions_post_filtered;
    }
    TAXITRACE_RETURN_IF_ERROR(funnel_ledger.CheckReconciles());

    // Deterministic work counters from the matching machinery and the
    // funnel endpoints. These feed the determinism tests; gauges below
    // do not.
    const roadnet::SpatialIndexStats idx = index.stats();
    registry.counter("roadnet.spatial_index.queries")->Add(idx.queries);
    registry.counter("roadnet.spatial_index.cells_probed")
        ->Add(idx.cells_probed);
    registry.counter("roadnet.spatial_index.candidates")
        ->Add(idx.candidates);
    registry.counter("roadnet.spatial_index.hits")->Add(idx.hits);
    registry.counter("roadnet.spatial_index.empty_geometry_edges")
        ->Add(idx.empty_geometry_edges);
    const roadnet::RouterStats rt = matcher.gap_filler().router().stats();
    registry.counter("roadnet.router.searches")->Add(rt.searches);
    registry.counter("roadnet.router.heap_pops")->Add(rt.heap_pops);
    registry.counter("roadnet.router.settled_vertices")
        ->Add(rt.settled_vertices);
    registry.counter("roadnet.router.goal_directed_searches")
        ->Add(rt.goal_directed_searches);
    registry.counter("mapmatch.route_cache.hits")->Add(route_cache_hits);
    registry.counter("mapmatch.route_cache.misses")
        ->Add(route_cache_misses);
    registry.counter("mapmatch.route_cache.evictions")
        ->Add(route_cache_evictions);
    registry.counter("pipeline.trips_simulated")->Add(trips_simulated);
    registry.counter("pipeline.segments_selected")->Add(segments_selected);
    registry.counter("pipeline.transitions_matched")
        ->Add(transitions_post_filtered);
    registry.counter("pipeline.point_speeds")
        ->Add(results.total_point_speeds);
    if (config_.faults.Any()) {
      registry.counter("fault.injected_total")
          ->Add(injected.TotalInjected());
      registry.counter("fault.dropped_total")
          ->Add(results.cleaning_report.faults.TotalDropped());
    }

    // Executor load: scheduling-dependent by nature, hence gauges.
    const ExecutorStats ex = executor.stats();
    registry.gauge("executor.batches")->Set(static_cast<double>(ex.batches));
    registry.gauge("executor.serial_items")
        ->Set(static_cast<double>(ex.serial_items));
    registry.gauge("executor.queue_wait_ms")->Set(ex.queue_wait_ms);
    for (size_t w = 0; w < ex.items_per_worker.size(); ++w) {
      registry.gauge(StrFormat("executor.worker%02d.items",
                               static_cast<int>(w)))
          ->Set(static_cast<double>(ex.items_per_worker[w]));
    }

    results.observability.enabled = true;
    results.observability.funnel = funnel_ledger;
    results.observability.counters = registry.Counters();
    results.observability.gauges = registry.Gauges();
    results.observability.histograms = registry.Histograms();
    results.observability.spans = trace.records();
  }

  // Back-compat StageTimings, derived from the top-level stage spans.
  StageTimings timings;
  timings.simulation_threads = executor.num_threads();
  timings.cleaning_threads = executor.num_threads();
  timings.selection_matching_threads = executor.num_threads();
  for (const obs::SpanRecord& r : trace.records()) {
    if (r.name == "map_generation") {
      timings.map_generation_ms = r.duration_ms;
    } else if (r.name == "simulation") {
      timings.simulation_ms = r.duration_ms;
    } else if (r.name == "cleaning") {
      timings.cleaning_ms = r.duration_ms;
    } else if (r.name == "selection_matching") {
      timings.selection_matching_ms = r.duration_ms;
    } else if (r.name == "analysis") {
      timings.analysis_ms = r.duration_ms;
    }
  }
  results.timings = timings;
  return results;
}

}  // namespace core
}  // namespace taxitrace
