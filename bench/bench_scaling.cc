// Performance scaling: how the pipeline's cost grows with study size,
// network extent and model size — the systems-side companion to the
// reproduction benches.

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_util.h"
#include "taxitrace/mapmatch/gap_filler.h"
#include "taxitrace/model/one_way_reml.h"
#include "taxitrace/obs/observability.h"
#include "taxitrace/roadnet/router.h"

namespace taxitrace {
namespace {

void PrintStageTimings(const char* label, const core::StudyResults& r) {
  std::printf("PIPELINE STAGE TIMINGS (%s):\n", label);
  std::printf("  map generation       %8.1f ms\n",
              r.timings.map_generation_ms);
  std::printf("  fleet simulation     %8.1f ms  (%d threads)\n",
              r.timings.simulation_ms, r.timings.simulation_threads);
  std::printf("  cleaning             %8.1f ms  (%d threads)\n",
              r.timings.cleaning_ms, r.timings.cleaning_threads);
  std::printf("  selection + matching %8.1f ms  (%d threads)\n",
              r.timings.selection_matching_ms,
              r.timings.selection_matching_threads);
  std::printf("  grid + mixed model   %8.1f ms\n", r.timings.analysis_ms);
  std::printf("  total                %8.1f ms for %lld raw points\n\n",
              r.timings.TotalMs(),
              static_cast<long long>(
                  r.cleaning_report.raw_points));
}

std::string RunJson(const core::StudyResults& r, int configured_threads) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "    {\"threads\": %d, \"workers\": %d,\n"
      "     \"map_generation_ms\": %.2f, \"simulation_ms\": %.2f,\n"
      "     \"cleaning_ms\": %.2f, \"selection_matching_ms\": %.2f,\n"
      "     \"analysis_ms\": %.2f, \"total_ms\": %.2f}",
      configured_threads, r.timings.simulation_threads,
      r.timings.map_generation_ms, r.timings.simulation_ms,
      r.timings.cleaning_ms, r.timings.selection_matching_ms,
      r.timings.analysis_ms, r.timings.TotalMs());
  return buf;
}

// The stage timings the simulation overhaul started from, copied
// verbatim from the schema/2 BENCH_pipeline.json committed before it
// (per-drive |E|-sized multiplier refills, per-drive buffer churn, full
// ShortestPath repositioning probes, copy-based cleaning sweeps). Kept
// inline so the /3 file always carries its own before/after comparison.
constexpr const char* kBaselineRunsJson =
    "    {\"threads\": 0, \"workers\": 0,\n"
    "     \"map_generation_ms\": 10.87, \"simulation_ms\": 3937.76,\n"
    "     \"cleaning_ms\": 1602.54, \"selection_matching_ms\": 349.61,\n"
    "     \"analysis_ms\": 5.10, \"total_ms\": 5905.89},\n"
    "    {\"threads\": -1, \"workers\": 1,\n"
    "     \"map_generation_ms\": 6.04, \"simulation_ms\": 3663.44,\n"
    "     \"cleaning_ms\": 1214.07, \"selection_matching_ms\": 375.81,\n"
    "     \"analysis_ms\": 4.47, \"total_ms\": 5263.84}";
constexpr double kBaselineSerialSimulationMs = 3937.76;
constexpr double kBaselineSerialCleaningMs = 1602.54;

double NowMs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1e6;
}

// Routing microbench of record: ShortestPath over sampled OD vertex
// pairs, then the same pairs as edge positions through GapFiller with a
// cold and then a warm route cache, so search cost and cache payoff are
// both visible.
void PrintRoutingBench() {
  synth::CityMapOptions map_options;
  const synth::CityMap map = synth::GenerateCityMap(map_options).value();
  const roadnet::Router router(&map.network);
  const mapmatch::GapFiller filler(&map.network);

  constexpr int kPairs = 256;
  const auto num_vertices =
      static_cast<int64_t>(map.network.num_vertices());
  const auto num_edges = static_cast<int64_t>(map.network.num_edges());
  Rng rng(42);
  std::vector<std::pair<roadnet::VertexId, roadnet::VertexId>> od;
  std::vector<std::pair<roadnet::EdgePosition, roadnet::EdgePosition>> od_pos;
  for (int i = 0; i < kPairs; ++i) {
    od.emplace_back(
        static_cast<roadnet::VertexId>(rng.UniformInt(0, num_vertices - 1)),
        static_cast<roadnet::VertexId>(rng.UniformInt(0, num_vertices - 1)));
    const auto ea =
        static_cast<roadnet::EdgeId>(rng.UniformInt(0, num_edges - 1));
    const auto eb =
        static_cast<roadnet::EdgeId>(rng.UniformInt(0, num_edges - 1));
    od_pos.emplace_back(
        roadnet::EdgePosition{ea, 0.5 * map.network.edge(ea).length_m},
        roadnet::EdgePosition{eb, 0.5 * map.network.edge(eb).length_m});
  }

  int found = 0;
  const double sp_t0 = NowMs();
  for (const auto& [a, b] : od) {
    if (router.ShortestPath(a, b).ok()) ++found;
  }
  const double sp_ms = NowMs() - sp_t0;

  mapmatch::RouteCache cache(kPairs);
  int connected = 0;
  const double cold_t0 = NowMs();
  for (const auto& [a, b] : od_pos) {
    if (filler.Connect(a, b, &cache).ok()) ++connected;
  }
  const double cold_ms = NowMs() - cold_t0;
  const mapmatch::RouteCache::Stats cold_stats = cache.stats();

  const double warm_t0 = NowMs();
  for (const auto& [a, b] : od_pos) {
    (void)filler.Connect(a, b, &cache);
  }
  const double warm_ms = NowMs() - warm_t0;
  const mapmatch::RouteCache::Stats warm_stats = cache.stats();

  const roadnet::RouterStats rt = router.stats();
  std::string json;
  char line[512];
  json += "{\n";
  json += "  \"schema\": \"taxitrace-bench-routing/1\",\n";
  std::snprintf(line, sizeof line,
                "  \"network\": {\"vertices\": %lld, \"edges\": %lld},\n",
                static_cast<long long>(num_vertices),
                static_cast<long long>(num_edges));
  json += line;
  std::snprintf(line, sizeof line, "  \"od_pairs\": %d,\n", kPairs);
  json += line;
  std::snprintf(line, sizeof line,
                "  \"shortest_path\": {\"total_ms\": %.2f, "
                "\"per_query_us\": %.1f, \"found\": %d,\n"
                "    \"heap_pops\": %lld, \"settled_vertices\": %lld, "
                "\"goal_directed_searches\": %lld},\n",
                sp_ms, sp_ms * 1000.0 / kPairs, found,
                static_cast<long long>(rt.heap_pops),
                static_cast<long long>(rt.settled_vertices),
                static_cast<long long>(rt.goal_directed_searches));
  json += line;
  std::snprintf(line, sizeof line,
                "  \"connect_cold_cache\": {\"total_ms\": %.2f, "
                "\"per_query_us\": %.1f, \"connected\": %d, "
                "\"hits\": %lld, \"misses\": %lld},\n",
                cold_ms, cold_ms * 1000.0 / kPairs, connected,
                static_cast<long long>(cold_stats.hits),
                static_cast<long long>(cold_stats.misses));
  json += line;
  std::snprintf(line, sizeof line,
                "  \"connect_warm_cache\": {\"total_ms\": %.2f, "
                "\"per_query_us\": %.1f, "
                "\"hits\": %lld, \"misses\": %lld},\n",
                warm_ms, warm_ms * 1000.0 / kPairs,
                static_cast<long long>(warm_stats.hits - cold_stats.hits),
                static_cast<long long>(warm_stats.misses - cold_stats.misses));
  json += line;
  std::snprintf(line, sizeof line, "  \"warm_speedup\": %.2f\n",
                warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);
  json += line;
  json += "}\n";
  benchutil::EmitFigureFile("BENCH_routing.json", json);
  std::printf(
      "  routing microbench: %d OD pairs, ShortestPath %.1f us/query, "
      "Connect cold %.1f us / warm %.1f us per query\n\n",
      kPairs, sp_ms * 1000.0 / kPairs, cold_ms * 1000.0 / kPairs,
      warm_ms * 1000.0 / kPairs);
}

// Sink for simulation-only benches: counts what streams past and keeps
// nothing, so the run's resident raw-trip state is exactly the
// simulator's reorder buffer.
struct CountingSink final : public trace::TripSink {
  int64_t trips = 0;
  int64_t points = 0;
  Status Consume(trace::Trip trip) override {
    ++trips;
    points += static_cast<int64_t>(trip.points.size());
    return Status::OK();
  }
};

// Simulation bench of record, two legs emitted to BENCH_simulation.json:
// the paper-scale 7x365 fleet simulated serially (the sim-only cousin
// of the pipeline bench's simulation_ms), and a 1000-car x 30-day run
// through the streaming TripSink interface, where the only raw-trip
// state alive at any moment is the reorder buffer — its high-water mark
// (`peak_buffered_shards`, ~worker count) is the bounded-memory number,
// against 30 000 shards total. Smoke mode shrinks both legs and tags
// the file so the JSON of record is only rewritten by full runs.
void PrintSimulationBench(bool smoke) {
  synth::CityMapOptions map_options;
  const synth::CityMap map = synth::GenerateCityMap(map_options).value();

  synth::FleetOptions serial_options;  // 7 cars x 365 days
  if (smoke) serial_options.num_days = 30;
  const synth::WeatherModel weather(19121, serial_options.num_days);
  const synth::FleetSimulator fleet(&map, &weather, serial_options);
  CountingSink serial_sink;
  const double serial_t0 = NowMs();
  const auto serial_stats = fleet.Run(nullptr, &serial_sink);
  const double serial_ms = NowMs() - serial_t0;
  if (!serial_stats.ok()) {
    std::fprintf(stderr, "[bench] serial simulation failed: %s\n",
                 serial_stats.status().ToString().c_str());
    std::exit(EXIT_FAILURE);
  }

  synth::FleetOptions big_options;
  big_options.num_cars = smoke ? 50 : 1000;
  big_options.num_days = smoke ? 5 : 30;
  const synth::WeatherModel big_weather(19121, big_options.num_days);
  const synth::FleetSimulator big_fleet(&map, &big_weather, big_options);
  const Executor pool(Executor::ResolveThreadCount(-1));
  CountingSink big_sink;
  const double big_t0 = NowMs();
  const auto big_stats = big_fleet.Run(&pool, &big_sink);
  const double big_ms = NowMs() - big_t0;
  if (!big_stats.ok()) {
    std::fprintf(stderr, "[bench] streaming simulation failed: %s\n",
                 big_stats.status().ToString().c_str());
    std::exit(EXIT_FAILURE);
  }
  const int64_t big_shards =
      static_cast<int64_t>(big_options.num_cars) * big_options.num_days;

  std::string json;
  char line[512];
  json += "{\n";
  json += "  \"schema\": \"taxitrace-bench-simulation/1\",\n";
  std::snprintf(line, sizeof line, "  \"smoke\": %s,\n",
                smoke ? "true" : "false");
  json += line;
  std::snprintf(
      line, sizeof line,
      "  \"serial\": {\"cars\": %d, \"days\": %d, "
      "\"simulation_ms\": %.2f,\n"
      "    \"trips\": %lld, \"points\": %lld, "
      "\"peak_buffered_shards\": %lld},\n",
      serial_options.num_cars, serial_options.num_days, serial_ms,
      static_cast<long long>(serial_sink.trips),
      static_cast<long long>(serial_sink.points),
      static_cast<long long>(serial_stats->peak_buffered_shards));
  json += line;
  std::snprintf(
      line, sizeof line,
      "  \"streaming\": {\"cars\": %d, \"days\": %d, \"workers\": %d,\n"
      "    \"wall_ms\": %.2f, \"trips\": %lld, \"points\": %lld,\n"
      "    \"shards\": %lld, \"peak_buffered_shards\": %lld}\n",
      big_options.num_cars, big_options.num_days, pool.num_threads(),
      big_ms, static_cast<long long>(big_sink.trips),
      static_cast<long long>(big_sink.points),
      static_cast<long long>(big_shards),
      static_cast<long long>(big_stats->peak_buffered_shards));
  json += line;
  json += "}\n";
  benchutil::EmitFigureFile("BENCH_simulation.json", json);
  std::printf(
      "  simulation bench: %dx%d serial %.1f ms (%lld points); "
      "%dx%d streamed %.1f ms, peak %lld/%lld shards buffered\n\n",
      serial_options.num_cars, serial_options.num_days, serial_ms,
      static_cast<long long>(serial_sink.points), big_options.num_cars,
      big_options.num_days, big_ms,
      static_cast<long long>(big_stats->peak_buffered_shards),
      static_cast<long long>(big_shards));
}

// The perf trajectory of record: serial vs parallel full-study stage
// timings, machine-readable so successive PRs can be compared.
void PrintScaling() {
  // CI smoke mode: swap the two multi-second full-study runs for one
  // small study so the bench-smoke step stays cheap. The routing and
  // simulation microbenches still run (the latter shrunk and tagged
  // "smoke") and emit BENCH_routing.json / BENCH_simulation.json; the
  // pipeline JSON of record is only rewritten by full runs.
  const char* smoke = std::getenv("TAXITRACE_BENCH_SMOKE");
  if (smoke != nullptr && smoke[0] != '\0' && smoke[0] != '0') {
    PrintStageTimings("small study, bench smoke", benchutil::SmallResults());
    PrintRoutingBench();
    PrintSimulationBench(/*smoke=*/true);
    return;
  }

  core::StudyConfig serial_config = core::StudyConfig::FullStudy();
  serial_config.num_threads = 0;
  const core::StudyResults serial =
      benchutil::RunStudyOrExit(serial_config, "serial full study");
  PrintStageTimings("full 7-car, 365-day study, serial", serial);

  core::StudyConfig parallel_config = core::StudyConfig::FullStudy();
  parallel_config.num_threads = -1;  // TAXITRACE_THREADS / all hardware
  const core::StudyResults parallel =
      benchutil::RunStudyOrExit(parallel_config, "parallel full study");
  PrintStageTimings("full 7-car, 365-day study, parallel", parallel);

  const double speedup =
      parallel.timings.TotalMs() > 0.0
          ? serial.timings.TotalMs() / parallel.timings.TotalMs()
          : 0.0;
  std::string json;
  json += "{\n";
  json += "  \"schema\": \"taxitrace-bench-pipeline/3\",\n";
  json += "  \"study\": {\"cars\": 7, \"days\": 365},\n";
  char line[256];
  std::snprintf(
      line, sizeof line, "  \"hardware_threads\": %u,\n",
      // tt-lint: allow(raw-thread): thread-count probe for the report header
      std::thread::hardware_concurrency());
  json += line;
  std::snprintf(line, sizeof line, "  \"raw_points\": %lld,\n",
                static_cast<long long>(serial.cleaning_report.raw_points));
  json += line;
  json += "  \"baseline\": {\n";
  json += "    \"note\": \"schema/2 numbers from before the simulation "
          "& cleaning streaming overhaul\",\n";
  json += "    \"runs\": [\n  ";
  json += kBaselineRunsJson;
  json += "\n    ]\n  },\n";
  json += "  \"runs\": [\n";
  json += RunJson(serial, 0) + ",\n";
  json += RunJson(parallel, -1) + "\n";
  json += "  ],\n";
  std::snprintf(line, sizeof line,
                "  \"parallel_speedup_total\": %.3f,\n", speedup);
  json += line;
  const double simulation_speedup =
      serial.timings.simulation_ms > 0.0
          ? kBaselineSerialSimulationMs / serial.timings.simulation_ms
          : 0.0;
  std::snprintf(line, sizeof line,
                "  \"serial_simulation_speedup_vs_baseline\": %.2f,\n",
                simulation_speedup);
  json += line;
  const double cleaning_speedup =
      serial.timings.cleaning_ms > 0.0
          ? kBaselineSerialCleaningMs / serial.timings.cleaning_ms
          : 0.0;
  std::snprintf(line, sizeof line,
                "  \"serial_cleaning_speedup_vs_baseline\": %.2f\n",
                cleaning_speedup);
  json += line;
  json += "}\n";
  benchutil::EmitFigureFile("BENCH_pipeline.json", json);
  std::printf("  parallel speedup (total wall-clock): %.2fx on %d workers\n",
              speedup, parallel.timings.simulation_threads);
  std::printf("  serial simulation vs pre-overhaul baseline: "
              "%.2fx (%.1f ms -> %.1f ms)\n",
              simulation_speedup, kBaselineSerialSimulationMs,
              serial.timings.simulation_ms);
  std::printf("  serial cleaning vs pre-overhaul baseline: "
              "%.2fx (%.1f ms -> %.1f ms)\n\n",
              cleaning_speedup, kBaselineSerialCleaningMs,
              serial.timings.cleaning_ms);

  PrintRoutingBench();
  PrintSimulationBench(/*smoke=*/false);

  // Metrics snapshot from a separate observability-enabled small study.
  // The two timed full-study runs above keep observability off, so the
  // wall times of record always benchmark the disabled (no-op) path.
  core::StudyConfig metrics_config = core::StudyConfig::SmallStudy();
  metrics_config.observability.enabled = true;
  const core::StudyResults observed =
      benchutil::RunStudyOrExit(metrics_config, "metrics small study");
  benchutil::EmitFigureFile("BENCH_metrics.json",
                            obs::SnapshotJson(observed.observability));
}

void BM_PipelineByThreads(benchmark::State& state) {
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::Pipeline pipeline(config);
    auto results = pipeline.Run();
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_PipelineByThreads)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineByDays(benchmark::State& state) {
  for (auto _ : state) {
    core::StudyConfig config = core::StudyConfig::SmallStudy();
    config.fleet.num_days = static_cast<int>(state.range(0));
    core::Pipeline pipeline(config);
    auto results = pipeline.Run();
    benchmark::DoNotOptimize(results);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PipelineByDays)
    ->Arg(7)
    ->Arg(14)
    ->Arg(28)
    ->Arg(56)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_DijkstraByNetworkExtent(benchmark::State& state) {
  synth::CityMapOptions options;
  options.extent_m = static_cast<double>(state.range(0));
  options.core_extent_m = options.extent_m * 0.8;
  const synth::CityMap map = synth::GenerateCityMap(options).value();
  const roadnet::Router router(&map.network);
  Rng rng(5);
  for (auto _ : state) {
    const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(map.network.num_vertices()) - 1));
    const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(map.network.num_vertices()) - 1));
    auto path = router.ShortestPath(a, b);
    benchmark::DoNotOptimize(path);
  }
  state.counters["edges"] =
      static_cast<double>(map.network.num_edges());
}
BENCHMARK(BM_DijkstraByNetworkExtent)
    ->Arg(600)
    ->Arg(1000)
    ->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

void BM_RemlByObservations(benchmark::State& state) {
  Rng rng(7);
  model::OneWayReml reml;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    reml.Add(static_cast<size_t>(i % 80), rng.Gaussian(20.0, 5.0));
  }
  for (auto _ : state) {
    auto fit = reml.Fit();
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RemlByObservations)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// Simulation hot path in isolation: one fleet streamed through a
// counting sink per iteration, scaled by fleet size. This is the bench
// that moves when drive/observe scratch reuse, lazy route noise, or the
// bounded repositioning probe regress.
void BM_FleetSimulator(benchmark::State& state) {
  static const synth::CityMap map =
      synth::GenerateCityMap(synth::CityMapOptions{}).value();
  constexpr int kDays = 7;
  static const synth::WeatherModel weather(19121, kDays);
  synth::FleetOptions options;
  options.num_cars = static_cast<int>(state.range(0));
  options.num_days = kDays;
  const synth::FleetSimulator fleet(&map, &weather, options);
  int64_t points = 0;
  for (auto _ : state) {
    CountingSink sink;
    auto stats = fleet.Run(nullptr, &sink);
    benchmark::DoNotOptimize(stats);
    points = sink.points;
  }
  state.counters["points"] = static_cast<double>(points);
}
BENCHMARK(BM_FleetSimulator)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SpatialIndexBuild(benchmark::State& state) {
  const core::StudyResults& r = benchutil::SmallResults();
  for (auto _ : state) {
    roadnet::SpatialIndex index(&r.map.network,
                                static_cast<double>(state.range(0)));
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_SpatialIndexBuild)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintScaling)
