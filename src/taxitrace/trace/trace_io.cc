#include "taxitrace/trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "taxitrace/common/csv.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace trace {
namespace {

constexpr const char* kHeader[] = {"trip_id",     "car_id", "point_id",
                                   "timestamp_s", "lat",    "lon",
                                   "speed_kmh",   "fuel_delta_ml"};
constexpr size_t kNumColumns = sizeof(kHeader) / sizeof(kHeader[0]);

}  // namespace

std::string TripsToCsv(const std::vector<Trip>& trips) {
  std::vector<CsvRow> rows;
  rows.emplace_back(kHeader, kHeader + kNumColumns);
  for (const Trip& t : trips) {
    for (const RoutePoint& p : t.points) {
      rows.push_back(CsvRow{
          StrFormat("%lld", static_cast<long long>(t.trip_id)),
          StrFormat("%d", t.car_id),
          StrFormat("%lld", static_cast<long long>(p.point_id)),
          StrFormat("%.3f", p.timestamp_s),
          StrFormat("%.7f", p.position.lat_deg),
          StrFormat("%.7f", p.position.lon_deg),
          StrFormat("%.3f", p.speed_kmh),
          StrFormat("%.3f", p.fuel_delta_ml)});
    }
  }
  return WriteCsv(rows);
}

Result<std::vector<Trip>> TripsFromCsv(const std::string& text) {
  TAXITRACE_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, ParseCsv(text));
  if (rows.empty()) return Status::Corruption("missing CSV header");
  if (rows[0].size() != kNumColumns) {
    return Status::Corruption("unexpected CSV header width");
  }
  std::vector<Trip> trips;
  for (size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    if (row.size() != kNumColumns) {
      return Status::Corruption(StrFormat("row %zu has %zu fields", r,
                                          row.size()));
    }
    TAXITRACE_ASSIGN_OR_RETURN(const int64_t trip_id, ParseInt64(row[0]));
    TAXITRACE_ASSIGN_OR_RETURN(const int64_t car_id, ParseInt64(row[1]));
    RoutePoint p;
    p.trip_id = trip_id;
    TAXITRACE_ASSIGN_OR_RETURN(p.point_id, ParseInt64(row[2]));
    TAXITRACE_ASSIGN_OR_RETURN(p.timestamp_s, ParseDouble(row[3]));
    TAXITRACE_ASSIGN_OR_RETURN(p.position.lat_deg, ParseDouble(row[4]));
    TAXITRACE_ASSIGN_OR_RETURN(p.position.lon_deg, ParseDouble(row[5]));
    TAXITRACE_ASSIGN_OR_RETURN(p.speed_kmh, ParseDouble(row[6]));
    TAXITRACE_ASSIGN_OR_RETURN(p.fuel_delta_ml, ParseDouble(row[7]));

    if (trips.empty() || trips.back().trip_id != trip_id) {
      Trip t;
      t.trip_id = trip_id;
      t.car_id = static_cast<int>(car_id);
      trips.push_back(std::move(t));
    }
    trips.back().points.push_back(p);
  }
  for (Trip& t : trips) t.RecomputeTotals();
  return trips;
}

Status WriteTripsFile(const std::string& path,
                      const std::vector<Trip>& trips) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  const std::string text = TripsToCsv(trips);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<Trip>> ReadTripsFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return TripsFromCsv(buf.str());
}

}  // namespace trace
}  // namespace taxitrace
