// Point / bbox / scenario-slice lookups over a loaded Snapshot.
//
// Every lookup resolves cells through the snapshot's sorted index
// (binary search on (cx, cy)) — no hash table, no hash order — and
// lands in exactly one funnel bucket:
//
//   queries.offered == answered + out_of_bounds + empty_cell
//
// `out_of_bounds` means the query never touched the observed cell-id
// rectangle; `empty_cell` means it did, but no indexed cell (with
// points in the requested slice) was there. The per-engine QueryStats
// tally is deterministic in the query sequence, so workloads that
// shard queries over workers fold engine stats in shard order exactly
// like the pipeline folds its per-trip counters.
//
// An engine is a cheap cursor over an immutable snapshot: create one
// per thread / unit of work and share the Snapshot.

#ifndef TAXITRACE_SERVE_QUERY_ENGINE_H_
#define TAXITRACE_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <vector>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/geo/geometry.h"
#include "taxitrace/serve/snapshot.h"

namespace taxitrace {
namespace serve {

/// Everything the service knows about one cell in one slice.
struct CellStats {
  analysis::CellId cell;
  int64_t n = 0;
  double mean_speed_kmh = 0.0;
  double speed_variance = 0.0;
  CellFeatureRow features;
  CellModelRow model;  ///< model.n == 0: cell not in the Eq. (3) fit.
};

/// Funnel buckets; every query increments offered plus exactly one of
/// the others.
struct QueryStats {
  int64_t offered = 0;
  int64_t answered = 0;
  int64_t out_of_bounds = 0;
  int64_t empty_cell = 0;

  void Add(const QueryStats& other) {
    offered += other.offered;
    answered += other.answered;
    out_of_bounds += other.out_of_bounds;
    empty_cell += other.empty_cell;
  }
  friend bool operator==(const QueryStats&, const QueryStats&) = default;
};

enum class QueryOutcome : unsigned char {
  kAnswered,
  kOutOfBounds,
  kEmptyCell,
};

class QueryEngine {
 public:
  /// The snapshot must outlive the engine.
  explicit QueryEngine(const Snapshot* snapshot);

  /// Stats of the cell containing `position` in slice `slice_index`.
  QueryOutcome PointQuery(const geo::EnPoint& position, int64_t slice_index,
                          CellStats* out);

  /// Stats of one cell in slice `slice_index`.
  QueryOutcome CellQuery(const analysis::CellId& cell, int64_t slice_index,
                         CellStats* out);

  /// Stats of every indexed cell intersecting `box` with points in the
  /// slice, appended to `out` in (cx, cy) order. One funnel event:
  /// answered when at least one cell matched, empty_cell when the box
  /// touched the observed rectangle but matched none, out_of_bounds
  /// otherwise.
  QueryOutcome BboxQuery(const geo::Bbox& box, int64_t slice_index,
                         std::vector<CellStats>* out);

  /// PointQuery against the slice identified by (kind, param); resolves
  /// to empty_cell when the snapshot has no such slice.
  QueryOutcome SliceQuery(const geo::EnPoint& position, SliceKind kind,
                          int32_t param, CellStats* out);

  [[nodiscard]] const QueryStats& stats() const { return stats_; }
  [[nodiscard]] const Snapshot& snapshot() const { return *snapshot_; }

 private:
  [[nodiscard]] bool InBounds(const analysis::CellId& cell) const;
  void Fill(int64_t cell_index, const CellMoments& moments,
            CellStats* out) const;

  const Snapshot* snapshot_;
  analysis::Grid grid_;
  QueryStats stats_;
};

}  // namespace serve
}  // namespace taxitrace

#endif  // TAXITRACE_SERVE_QUERY_ENGINE_H_
