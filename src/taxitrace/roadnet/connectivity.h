// Connectivity diagnostics for prepared networks: weak connectivity of
// the undirected graph and strong connectivity under the one-way
// constraints (a drivable network must let every street reach every
// other street).

#ifndef TAXITRACE_ROADNET_CONNECTIVITY_H_
#define TAXITRACE_ROADNET_CONNECTIVITY_H_

#include <vector>

#include "taxitrace/roadnet/road_network.h"

namespace taxitrace {
namespace roadnet {

/// Component label per vertex ordinal (RoadNetwork::VertexOrdinal;
/// equal to the vertex id on single-tile maps), ignoring travel
/// direction. Labels are 0..k-1 by discovery order.
std::vector<int> WeakComponents(const RoadNetwork& network);

/// Number of weakly connected components.
int CountWeakComponents(const RoadNetwork& network);

/// Vertices of the largest strongly connected component under the
/// one-way constraints (Kosaraju), ascending vertex ids.
std::vector<VertexId> LargestStronglyConnectedComponent(
    const RoadNetwork& network);

/// Connectivity summary for validation / reporting.
struct ConnectivityReport {
  int num_vertices = 0;
  int weak_components = 0;
  int largest_scc_size = 0;
  /// Fraction of vertices inside the largest SCC.
  double scc_coverage = 0.0;
};

/// Computes the summary.
ConnectivityReport AnalyzeConnectivity(const RoadNetwork& network);

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_CONNECTIVITY_H_
