// Named study scenarios: curated configurations for reproduction and
// what-if exploration (the "more heterogeneous context" §VII outlook).

#ifndef TAXITRACE_CORE_SCENARIOS_H_
#define TAXITRACE_CORE_SCENARIOS_H_

#include <string>
#include <vector>

#include "taxitrace/core/study_config.h"

namespace taxitrace {
namespace core {

/// One scenario description.
struct ScenarioInfo {
  std::string name;
  std::string description;
};

/// The available scenario names, in presentation order.
std::vector<ScenarioInfo> ScenarioCatalog();

/// Builds the configuration for a named scenario. Known names:
///   "paper"            — the paper-scale study (FullStudy defaults).
///   "small"            — the reduced study (SmallStudy defaults).
///   "winter-storm"     — always-slippery roads, strong winter bias.
///   "event-weekend"    — doubled crowd hotspot intensity/radius.
///   "degraded-sensors" — heavy GPS noise, outliers, drops and glitches.
///   "dense-city"       — tighter blocks and more signalised junctions.
///   "no-river"         — the counterfactual city without the river.
/// NotFound for unknown names.
Result<StudyConfig> MakeScenario(const std::string& name);

}  // namespace core
}  // namespace taxitrace

#endif  // TAXITRACE_CORE_SCENARIOS_H_
