#include "taxitrace/serve/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "taxitrace/common/check.h"
#include "taxitrace/synth/weather_model.h"
#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace serve {
namespace {

// The format is defined little-endian; the serializer writes host
// bytes, so a big-endian port needs explicit swaps before this builds.
static_assert(std::endian::native == std::endian::little,
              "taxitrace-snapshot/1 serialization assumes a "
              "little-endian host");

// The twelve slices of a version-1 snapshot, in directory order.
constexpr int64_t kSliceAll = 0;
constexpr int64_t kSliceWeekday = 1;
constexpr int64_t kSliceWeekend = 2;
constexpr int64_t kSliceTemperatureBase = 3;  // + TemperatureClass.
constexpr int64_t kSliceCrowdBase =
    kSliceTemperatureBase + synth::kNumTemperatureClasses;  // + crowd class.
constexpr int64_t kNumSlices = kSliceCrowdBase + 3;

// Appends POD records to a string with 8-byte alignment between
// sections.
class ByteWriter {
 public:
  [[nodiscard]] uint64_t offset() const { return bytes_.size(); }

  void AlignTo8() { bytes_.append((8 - bytes_.size() % 8) % 8, '\0'); }

  template <typename T>
  void Append(const T& record) {
    static_assert(std::is_trivially_copyable_v<T>);
    const char* raw = reinterpret_cast<const char*>(&record);
    bytes_.append(raw, sizeof(T));
  }

  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

// One shard's slice accumulators. Shards cover fixed contiguous
// transition ranges, so their contents never depend on worker count.
struct ShardAccumulators {
  std::vector<analysis::CellSpeedAccumulator> slices;
};

int64_t CrowdClassOf(double intensity, const SnapshotBuildOptions& options) {
  if (intensity >= options.crowd_busy_threshold) return 2;
  if (intensity >= options.crowd_active_threshold) return 1;
  return 0;
}

void WriteSliceDirectory(ByteWriter* writer) {
  auto label = [](const char* text) {
    SliceInfo info;
    std::snprintf(info.label, sizeof info.label, "%s", text);
    return info;
  };
  SliceInfo all = label("all");
  all.kind = static_cast<uint32_t>(SliceKind::kAll);
  writer->Append(all);
  SliceInfo weekday = label("weekday");
  weekday.kind = static_cast<uint32_t>(SliceKind::kDayType);
  weekday.param = 0;
  writer->Append(weekday);
  SliceInfo weekend = label("weekend");
  weekend.kind = static_cast<uint32_t>(SliceKind::kDayType);
  weekend.param = 1;
  writer->Append(weekend);
  for (int t = 0; t < synth::kNumTemperatureClasses; ++t) {
    const std::string_view text = synth::TemperatureClassLabel(
        static_cast<synth::TemperatureClass>(t));
    SliceInfo info = label(std::string(text).c_str());
    info.kind = static_cast<uint32_t>(SliceKind::kTemperature);
    info.param = t;
    writer->Append(info);
  }
  const char* crowd_labels[3] = {"crowd-quiet", "crowd-active",
                                 "crowd-busy"};
  for (int c = 0; c < 3; ++c) {
    SliceInfo info = label(crowd_labels[c]);
    info.kind = static_cast<uint32_t>(SliceKind::kCrowd);
    info.param = c;
    writer->Append(info);
  }
}

}  // namespace

Result<std::string> SnapshotBuilder::Build(const core::StudyResults& results,
                                           const Executor* executor) const {
  if (options_.num_shards <= 0) {
    return Status::InvalidArgument("SnapshotBuilder: num_shards must be > 0");
  }
  if (!(options_.crowd_active_threshold <= options_.crowd_busy_threshold)) {
    return Status::InvalidArgument(
        "SnapshotBuilder: crowd thresholds must be ordered");
  }
  const Executor& exec = executor != nullptr ? *executor : Executor::Serial();
  const analysis::Grid grid(results.grid_cell_m);
  const geo::LocalProjection& proj = results.map.network.projection();

  // Accumulate every slice per fixed contiguous shard. The shard count
  // (not the worker count) fixes the floating-point fold tree.
  const int64_t num_transitions =
      static_cast<int64_t>(results.transitions.size());
  const int64_t num_shards =
      std::min<int64_t>(options_.num_shards,
                        std::max<int64_t>(num_transitions, 1));
  std::vector<ShardAccumulators> shards(static_cast<size_t>(num_shards));
  const Status shard_status = exec.ParallelFor(
      0, num_shards, [&](int64_t shard) -> Status {
        ShardAccumulators& out = shards[static_cast<size_t>(shard)];
        out.slices.assign(static_cast<size_t>(kNumSlices),
                          analysis::CellSpeedAccumulator(grid));
        const int64_t begin = shard * num_transitions / num_shards;
        const int64_t end = (shard + 1) * num_transitions / num_shards;
        for (int64_t i = begin; i < end; ++i) {
          const core::MatchedTransition& mt =
              results.transitions[static_cast<size_t>(i)];
          for (const trace::RoutePoint& p : mt.transition.segment.points) {
            const geo::EnPoint local = proj.Forward(p.position);
            out.slices[kSliceAll].Add(local, p.speed_kmh);
            out.slices[trace::IsWeekend(p.timestamp_s) ? kSliceWeekend
                                                       : kSliceWeekday]
                .Add(local, p.speed_kmh);
            const auto temperature =
                static_cast<int64_t>(results.weather.ClassAt(p.timestamp_s));
            out.slices[kSliceTemperatureBase + temperature].Add(local,
                                                                p.speed_kmh);
            const double crowd =
                results.pedestrians.CrowdIntensityAt(local, p.timestamp_s);
            out.slices[kSliceCrowdBase + CrowdClassOf(crowd, options_)].Add(
                local, p.speed_kmh);
          }
        }
        return Status::OK();
      });
  TAXITRACE_RETURN_IF_ERROR(shard_status);

  // Fold the shards in shard order — the canonical merge order that
  // makes the bytes worker-count invariant.
  std::vector<analysis::CellSpeedAccumulator> slices(
      static_cast<size_t>(kNumSlices), analysis::CellSpeedAccumulator(grid));
  for (ShardAccumulators& shard : shards) {
    for (int64_t s = 0; s < kNumSlices; ++s) {
      slices[static_cast<size_t>(s)].Merge(
          shard.slices[static_cast<size_t>(s)]);
    }
  }

  // The sorted cell index: every cell with at least one measured point.
  std::vector<analysis::CellId> cells;
  cells.reserve(slices[kSliceAll].cells().size());
  for (const auto& [cell, moments] : slices[kSliceAll].cells()) {
    cells.push_back(cell);
  }
  std::sort(cells.begin(), cells.end(),
            [](const analysis::CellId& a, const analysis::CellId& b) {
              return a.cx != b.cx ? a.cx < b.cx : a.cy < b.cy;
            });

  SnapshotMeta meta;
  meta.cell_size_m = results.grid_cell_m;
  meta.num_cells = static_cast<int64_t>(cells.size());
  meta.num_slices = kNumSlices;
  meta.total_points = slices[kSliceAll].total_points();
  meta.overall_mean_speed_kmh = results.overall_mean_speed_kmh;
  if (cells.empty()) {
    meta.min_cx = meta.min_cy = 0;
    meta.max_cx = meta.max_cy = -1;
  } else {
    meta.min_cx = cells.front().cx;
    meta.max_cx = cells.back().cx;
    meta.min_cy = meta.max_cy = cells.front().cy;
    for (const analysis::CellId& c : cells) {
      meta.min_cy = std::min(meta.min_cy, c.cy);
      meta.max_cy = std::max(meta.max_cy, c.cy);
    }
  }
  meta.model_mu = results.cell_model.mu;
  meta.model_sigma2_group = results.cell_model.sigma2_group;
  meta.model_sigma2_residual = results.cell_model.sigma2_residual;
  meta.model_lambda = results.cell_model.lambda;

  // Model join: group index of each cell in the Eq. (3) fit.
  std::unordered_map<analysis::CellId, size_t, analysis::CellIdHash>
      cell_group;
  cell_group.reserve(results.model_cells.size());
  for (size_t g = 0; g < results.model_cells.size(); ++g) {
    cell_group.emplace(results.model_cells[g], g);
  }

  // Serialize: header + section table (patched at the end) + payloads.
  ByteWriter writer;
  SnapshotHeader header;
  std::memcpy(header.magic, kSnapshotMagic, sizeof header.magic);
  header.version = kSnapshotVersion;
  header.section_count = 6;
  writer.Append(header);
  std::vector<SectionEntry> sections;
  const uint64_t table_offset = writer.offset();
  for (uint32_t i = 0; i < header.section_count; ++i) {
    writer.Append(SectionEntry{});
  }

  auto begin_section = [&](SectionId id) {
    writer.AlignTo8();
    sections.push_back(SectionEntry{static_cast<uint32_t>(id), 0,
                                    writer.offset(), 0});
  };
  auto end_section = [&] {
    sections.back().size = writer.offset() - sections.back().offset;
  };

  begin_section(SectionId::kMeta);
  writer.Append(meta);
  end_section();

  begin_section(SectionId::kCellIndex);
  for (const analysis::CellId& c : cells) {
    writer.Append(CellEntry{c.cx, c.cy});
  }
  end_section();

  begin_section(SectionId::kSliceDirectory);
  WriteSliceDirectory(&writer);
  end_section();

  begin_section(SectionId::kSliceMoments);
  for (int64_t s = 0; s < kNumSlices; ++s) {
    const auto& slice_cells = slices[static_cast<size_t>(s)].cells();
    for (const analysis::CellId& c : cells) {
      CellMoments row;
      if (const auto it = slice_cells.find(c); it != slice_cells.end()) {
        row.n = it->second.n;
        row.mean = it->second.mean;
        row.m2 = it->second.m2;
      }
      writer.Append(row);
    }
  }
  end_section();

  begin_section(SectionId::kCellFeatures);
  for (const analysis::CellId& c : cells) {
    CellFeatureRow row;
    if (const auto it = results.cell_features.find(c);
        it != results.cell_features.end()) {
      row.traffic_lights = it->second.traffic_lights;
      row.bus_stops = it->second.bus_stops;
      row.pedestrian_crossings = it->second.pedestrian_crossings;
      row.junctions = it->second.junctions;
    }
    writer.Append(row);
  }
  end_section();

  begin_section(SectionId::kCellModel);
  const model::OneWayRemlFit& fit = results.cell_model;
  for (const analysis::CellId& c : cells) {
    CellModelRow row;
    if (const auto it = cell_group.find(c); it != cell_group.end()) {
      const size_t g = it->second;
      if (g < fit.blup.size() && g < fit.group_n.size() &&
          fit.group_n[g] > 0) {
        row.blup = fit.blup[g];
        row.blup_se = g < fit.blup_se.size() ? fit.blup_se[g] : 0.0;
        row.shrinkage = g < fit.shrinkage.size() ? fit.shrinkage[g] : 0.0;
        row.n = fit.group_n[g];
      }
    }
    writer.Append(row);
  }
  end_section();

  std::string bytes = writer.Take();
  TT_CHECK(sections.size() == header.section_count);
  const uint64_t file_size = bytes.size();
  std::memcpy(bytes.data() + offsetof(SnapshotHeader, file_size), &file_size,
              sizeof file_size);
  std::memcpy(bytes.data() + table_offset, sections.data(),
              sections.size() * sizeof(SectionEntry));
  return bytes;
}

Result<Snapshot> Snapshot::FromBytes(std::string bytes) {
  // Park the buffer on the heap so the view survives Snapshot moves
  // (a small std::string member would relocate its inline storage).
  auto owned = std::make_shared<const std::string>(std::move(bytes));
  Snapshot snapshot;
  snapshot.data_ = owned->data();
  snapshot.size_ = owned->size();
  snapshot.storage_ = std::move(owned);
  return Validate(std::move(snapshot));
}

Result<Snapshot> Snapshot::FromFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("snapshot: cannot open " + path);
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("snapshot: cannot stat " + path);
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap rejects zero-length maps; an empty file is just a truncated
    // snapshot, so report it with the same message Validate would use.
    ::close(fd);
    return Status::InvalidArgument("snapshot: truncated header");
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping holds its own reference to the file.
  if (addr == MAP_FAILED) {
    return Status::IOError("snapshot: mmap failed for " + path);
  }
  Snapshot snapshot;
  snapshot.data_ = static_cast<const char*>(addr);
  snapshot.size_ = size;
  snapshot.storage_ = std::shared_ptr<const void>(
      addr, [size](const void* p) { ::munmap(const_cast<void*>(p), size); });
  return Validate(std::move(snapshot));
}

Result<Snapshot> Snapshot::Validate(Snapshot snapshot) {
  const char* const data = snapshot.data_;
  const size_t total_size = snapshot.size_;
  if (total_size < sizeof(SnapshotHeader)) {
    return Status::InvalidArgument("snapshot: truncated header");
  }
  SnapshotHeader header;
  std::memcpy(&header, data, sizeof header);
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof header.magic) != 0) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  if (header.version != kSnapshotVersion) {
    return Status::InvalidArgument("snapshot: unsupported version " +
                                   std::to_string(header.version));
  }
  if (header.file_size != total_size) {
    return Status::InvalidArgument("snapshot: size mismatch (header says " +
                                   std::to_string(header.file_size) +
                                   ", have " + std::to_string(total_size) + ")");
  }
  const uint64_t table_end =
      sizeof(SnapshotHeader) +
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (table_end > total_size) {
    return Status::InvalidArgument("snapshot: truncated section table");
  }

  int64_t meta_offset = -1;
  int64_t cell_index_size = -1;
  int64_t slice_dir_size = -1;
  int64_t moments_size = -1;
  int64_t features_size = -1;
  int64_t model_size = -1;
  snapshot.cell_index_offset_ = snapshot.slice_dir_offset_ =
      snapshot.moments_offset_ = snapshot.features_offset_ =
          snapshot.model_offset_ = -1;
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry,
                data + sizeof(SnapshotHeader) + i * sizeof(SectionEntry),
                sizeof entry);
    if (entry.offset % 8 != 0 || entry.offset > total_size ||
        entry.size > total_size - entry.offset) {
      return Status::InvalidArgument("snapshot: section " +
                                     std::to_string(entry.id) +
                                     " out of bounds");
    }
    const auto offset = static_cast<int64_t>(entry.offset);
    const auto size = static_cast<int64_t>(entry.size);
    switch (static_cast<SectionId>(entry.id)) {
      case SectionId::kMeta:
        if (entry.size != sizeof(SnapshotMeta)) {
          return Status::InvalidArgument("snapshot: bad meta size");
        }
        meta_offset = offset;
        break;
      case SectionId::kCellIndex:
        snapshot.cell_index_offset_ = offset;
        cell_index_size = size;
        break;
      case SectionId::kSliceDirectory:
        snapshot.slice_dir_offset_ = offset;
        slice_dir_size = size;
        break;
      case SectionId::kSliceMoments:
        snapshot.moments_offset_ = offset;
        moments_size = size;
        break;
      case SectionId::kCellFeatures:
        snapshot.features_offset_ = offset;
        features_size = size;
        break;
      case SectionId::kCellModel:
        snapshot.model_offset_ = offset;
        model_size = size;
        break;
      default:
        break;  // Unknown sections are skippable by design.
    }
  }
  if (meta_offset < 0 || snapshot.cell_index_offset_ < 0 ||
      snapshot.slice_dir_offset_ < 0 || snapshot.moments_offset_ < 0 ||
      snapshot.features_offset_ < 0 || snapshot.model_offset_ < 0) {
    return Status::InvalidArgument("snapshot: missing required section");
  }
  std::memcpy(&snapshot.meta_, data + meta_offset, sizeof snapshot.meta_);
  const SnapshotMeta& meta = snapshot.meta_;
  if (meta.num_cells < 0 || meta.num_slices < 0 ||
      !(meta.cell_size_m > 0.0)) {
    return Status::InvalidArgument("snapshot: corrupt meta");
  }
  if (cell_index_size !=
          meta.num_cells * static_cast<int64_t>(sizeof(CellEntry)) ||
      slice_dir_size !=
          meta.num_slices * static_cast<int64_t>(sizeof(SliceInfo)) ||
      moments_size != meta.num_slices * meta.num_cells *
                          static_cast<int64_t>(sizeof(CellMoments)) ||
      features_size !=
          meta.num_cells * static_cast<int64_t>(sizeof(CellFeatureRow)) ||
      model_size !=
          meta.num_cells * static_cast<int64_t>(sizeof(CellModelRow))) {
    return Status::InvalidArgument(
        "snapshot: section sizes disagree with meta counts");
  }
  for (int64_t i = 1; i < meta.num_cells; ++i) {
    const analysis::CellId prev = snapshot.cell(i - 1);
    const analysis::CellId cur = snapshot.cell(i);
    if (prev.cx > cur.cx || (prev.cx == cur.cx && prev.cy >= cur.cy)) {
      return Status::InvalidArgument("snapshot: cell index not sorted");
    }
  }
  return snapshot;
}

int64_t Snapshot::FindCell(const analysis::CellId& target) const {
  int64_t lo = 0;
  int64_t hi = meta_.num_cells;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    const analysis::CellId c = cell(mid);
    if (c.cx < target.cx || (c.cx == target.cx && c.cy < target.cy)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < meta_.num_cells && cell(lo) == target) return lo;
  return -1;
}

int64_t Snapshot::FindSlice(SliceKind kind, int32_t param) const {
  for (int64_t s = 0; s < meta_.num_slices; ++s) {
    const SliceInfo info = slice(s);
    if (info.kind == static_cast<uint32_t>(kind) && info.param == param) {
      return s;
    }
  }
  return -1;
}

}  // namespace serve
}  // namespace taxitrace
