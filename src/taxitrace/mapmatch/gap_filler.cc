#include "taxitrace/mapmatch/gap_filler.h"

#include <limits>

namespace taxitrace {
namespace mapmatch {

GapFiller::GapFiller(const roadnet::RoadNetwork* network,
                     GapFillOptions options)
    : network_(network), router_(network), options_(options) {}

Result<roadnet::Path> GapFiller::Connect(const roadnet::EdgePosition& from,
                                         const roadnet::EdgePosition& to,
                                         RouteCache* cache) const {
  if (cache == nullptr) return router_.ShortestPathBetween(from, to);
  if (const Result<roadnet::Path>* cached = cache->Find(from, to)) {
    return *cached;
  }
  Result<roadnet::Path> path = router_.ShortestPathBetween(from, to);
  cache->Insert(from, to, path);
  return path;
}

double GapFiller::NetworkDistance(const roadnet::EdgePosition& from,
                                  const roadnet::EdgePosition& to,
                                  RouteCache* cache) const {
  const Result<roadnet::Path> path = Connect(from, to, cache);
  return path.ok() ? path->length_m
                   : std::numeric_limits<double>::infinity();
}

bool GapFiller::IsPlausible(double network_length_m,
                            double straight_line_m) const {
  return network_length_m <= options_.detour_factor * straight_line_m +
                                 options_.detour_slack_m;
}

}  // namespace mapmatch
}  // namespace taxitrace
