#include "taxitrace/model/significance.h"

#include <cmath>

namespace taxitrace {
namespace model {
namespace {

// Regularised lower incomplete gamma P(a, x) by series expansion
// (converges fast for x < a + 1).
double LowerGammaSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Regularised upper incomplete gamma Q(a, x) by continued fraction
// (Lentz), for x >= a + 1.
double UpperGammaContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double UpperIncompleteGammaRegularized(double a, double x) {
  if (x <= 0.0) return 1.0;
  if (a <= 0.0) return 0.0;
  if (x < a + 1.0) return 1.0 - LowerGammaSeries(a, x);
  return UpperGammaContinuedFraction(a, x);
}

double ChiSquareSurvival(double x, int dof) {
  if (x <= 0.0) return 1.0;
  return UpperIncompleteGammaRegularized(static_cast<double>(dof) / 2.0,
                                         x / 2.0);
}

Result<RandomEffectLrt> TestRandomEffect(const OneWayReml& model) {
  TAXITRACE_ASSIGN_OR_RETURN(const OneWayRemlFit fit, model.Fit());
  RandomEffectLrt out;
  out.statistic =
      std::max(0.0, model.RemlCriterion(0.0) - fit.reml_criterion);
  // Under H0 the REML-LRT statistic is distributed as an equal mixture
  // of a point mass at 0 and chi-square with 1 dof (the variance sits
  // on the boundary of its parameter space).
  out.p_value = out.statistic <= 0.0
                    ? 1.0
                    : 0.5 * ChiSquareSurvival(out.statistic, 1);
  return out;
}

}  // namespace model
}  // namespace taxitrace
