# Empty compiler generated dependencies file for clean_test.
# This may be replaced when dependencies are built.
