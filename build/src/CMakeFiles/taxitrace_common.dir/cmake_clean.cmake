file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/csv.cc.o"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/csv.cc.o.d"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/histogram.cc.o"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/histogram.cc.o.d"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/logging.cc.o"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/logging.cc.o.d"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/random.cc.o"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/random.cc.o.d"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/status.cc.o"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/status.cc.o.d"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/strings.cc.o"
  "CMakeFiles/taxitrace_common.dir/taxitrace/common/strings.cc.o.d"
  "libtaxitrace_common.a"
  "libtaxitrace_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
