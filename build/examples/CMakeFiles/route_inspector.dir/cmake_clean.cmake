file(REMOVE_RECURSE
  "CMakeFiles/route_inspector.dir/route_inspector.cc.o"
  "CMakeFiles/route_inspector.dir/route_inspector.cc.o.d"
  "route_inspector"
  "route_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
