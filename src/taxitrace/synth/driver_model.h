// Microscopic driver model: turns a routed path into a second-by-second
// drive with realistic speed dynamics — acceleration limits, stochastic
// traffic-light stops (including the rare ~200 s error situation the
// paper's segmentation rules reference), pedestrian-crossing slowdowns,
// crowd hotspots, rush-hour congestion, and weather/season effects.

#ifndef TAXITRACE_SYNTH_DRIVER_MODEL_H_
#define TAXITRACE_SYNTH_DRIVER_MODEL_H_

#include <vector>

#include "taxitrace/common/random.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/roadnet/spatial_index.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/pedestrian_model.h"
#include "taxitrace/synth/weather_model.h"

namespace taxitrace {
namespace synth {

/// One instant of a simulated drive.
struct DriveSample {
  double t_s = 0.0;            ///< Study timestamp.
  geo::EnPoint position;       ///< True (noise-free) position.
  double speed_kmh = 0.0;      ///< True speed.
  double heading_rad = 0.0;    ///< Travel heading.
  double fuel_delta_ml = 0.0;  ///< Fuel burnt since the previous sample.
};

/// Behaviour and vehicle parameters.
struct DriverOptions {
  double accel_ms2 = 1.6;
  double decel_ms2 = 2.2;
  /// Probability of having to stop at a passed traffic light.
  double light_stop_prob = 0.55;
  /// Red-light waits: uniform within [min,max]; with `light_error_prob`
  /// the light is faulty and the wait runs to ~200 s (after which it
  /// switches to blinking yellow — Section IV-C).
  double light_wait_min_s = 8.0;
  double light_wait_max_s = 75.0;
  double light_error_prob = 0.004;
  double light_error_wait_s = 200.0;
  /// Pedestrian crossings: slowdown probability (scaled up inside
  /// hotspots) and the speed driven past an occupied crossing.
  double crossing_slow_prob = 0.45;
  double crossing_slow_kmh = 14.0;
  double crossing_stop_prob_in_hotspot = 0.30;
  /// Bus stops: probability of being briefly stuck behind a bus.
  double bus_slow_prob = 0.12;
  /// Probability that a queue discharges slowly after a stop (a short
  /// crawl at walking pace past the stop line).
  double queue_crawl_prob = 0.8;
  /// Rate (events per second at full crowd intensity) of ad-hoc
  /// pedestrian-induced crawls while driving inside a hotspot.
  double hotspot_crawl_rate_per_s = 0.16;
  /// Fuel model (millilitres): idle rate plus speed and acceleration
  /// terms, calibrated so the Table 4 gate-to-gate trips land at the
  /// paper's ~210-265 ml.
  double fuel_idle_ml_s = 0.14;
  double fuel_speed_ml_per_m = 0.036;
  double fuel_speed2_ml_s_per_ms2 = 0.0007;
  double fuel_accel_ml_per_ms = 0.75;
  /// Simulation step, seconds.
  double step_s = 1.0;
  /// Radius within which a feature affects a passing car, metres.
  double feature_influence_radius_m = 25.0;
};

/// Simulates drives over a generated city. Holds pointers to the map and
/// weather model, which must outlive it.
class DriverModel {
 public:
  /// `pedestrians` (optional) makes hotspot crowding time-varying; when
  /// null the hotspots' static intensities apply at all times.
  DriverModel(const CityMap* map, const WeatherModel* weather,
              DriverOptions options = {},
              const PedestrianModel* pedestrians = nullptr);

  /// Drives `path` starting at `start_time_s`. `driver_factor` scales the
  /// driver's preferred speed (1.0 = drives at the limit). Deterministic
  /// given `rng` state.
  std::vector<DriveSample> Drive(const roadnet::Path& path,
                                 double start_time_s, double driver_factor,
                                 Rng* rng) const;

  /// Engine-on idling at a fixed position (taxi stand / customer wait).
  /// Samples are spaced ~10 s apart.
  std::vector<DriveSample> Idle(const geo::EnPoint& position,
                                double start_time_s, double duration_s) const;

  /// Multiplier (< 1 inside hotspots) applied to target speed at `p`.
  [[nodiscard]] double HotspotFactor(const geo::EnPoint& p) const;

  /// Crowd intensity at `p`: 0 outside hotspots, up to the hotspot's
  /// intensity at its centre (static profile).
  [[nodiscard]] double HotspotIntensity(const geo::EnPoint& p) const;

  /// Crowd intensity at `p` and time `t`: the pedestrian model's
  /// time-varying level when present, else the static profile.
  [[nodiscard]]
  double CrowdIntensity(const geo::EnPoint& p, double timestamp_s) const;

  /// Seasonal speed multiplier for a timestamp (autumn fastest, winter
  /// slowest — the ordering the paper reports).
  static double SeasonFactor(double timestamp_s);

  [[nodiscard]] const DriverOptions& options() const { return options_; }

 private:
  struct EdgeEvent {
    roadnet::FeatureType type;
    double arc_on_edge_m;  ///< Offset along the edge geometry.
  };

  const CityMap* map_;
  const WeatherModel* weather_;
  const PedestrianModel* pedestrians_;
  DriverOptions options_;
  /// Per-edge feature events, precomputed from the map.
  std::vector<std::vector<EdgeEvent>> edge_events_;
};

}  // namespace synth
}  // namespace taxitrace

#endif  // TAXITRACE_SYNTH_DRIVER_MODEL_H_
