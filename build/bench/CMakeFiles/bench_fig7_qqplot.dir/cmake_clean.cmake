file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_qqplot.dir/bench_fig7_qqplot.cc.o"
  "CMakeFiles/bench_fig7_qqplot.dir/bench_fig7_qqplot.cc.o.d"
  "bench_fig7_qqplot"
  "bench_fig7_qqplot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_qqplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
