// The streaming pipeline's contract: chaining cleaning onto each trip
// as it leaves the simulator's ordered merge (stream_simulation = true)
// produces StudyResults byte-identical to the in-memory path — same
// trips in the same order reach the same per-trip stages, and every
// counter folds in the same order. Checked on fault-free and faulted
// studies at 0/1/2/8 workers; doubles compared exactly, plus the golden
// digest, which hashes the full downstream output.

#include <gtest/gtest.h>

#include "taxitrace/common/check.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/reports.h"

namespace taxitrace {
namespace {

core::StudyResults RunStudy(int num_threads, bool streaming,
                            const fault::FaultPlan& faults = {},
                            bool observability = false) {
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.num_threads = num_threads;
  config.stream_simulation = streaming;
  config.faults = faults;
  config.observability.enabled = observability;
  core::Pipeline pipeline(config);
  auto run = pipeline.Run();
  TT_CHECK_OK(run.status());
  return std::move(run).value();
}

const core::StudyResults& InMemoryReference() {
  static const core::StudyResults reference =
      RunStudy(0, /*streaming=*/false);
  return reference;
}

const std::string& InMemoryDigest() {
  static const std::string digest =
      core::StudyDigestJson(InMemoryReference());
  return digest;
}

// Field-level comparison of everything the digest does not cover:
// the cleaning report (all counters), the simulation totals, and the
// funnel rows. The digest handles transitions, cells, and the model.
void ExpectSameReports(const core::StudyResults& a,
                       const core::StudyResults& b) {
  EXPECT_EQ(a.raw_trips, b.raw_trips);
  const clean::CleaningReport& ca = a.cleaning_report;
  const clean::CleaningReport& cb = b.cleaning_report;
  EXPECT_EQ(ca.raw_trips, cb.raw_trips);
  EXPECT_EQ(ca.raw_points, cb.raw_points);
  EXPECT_EQ(ca.points_after_sanitize, cb.points_after_sanitize);
  EXPECT_EQ(ca.points_after_outliers, cb.points_after_outliers);
  EXPECT_EQ(ca.order.trips_consistent, cb.order.trips_consistent);
  EXPECT_EQ(ca.order.trips_repaired_by_id, cb.order.trips_repaired_by_id);
  EXPECT_EQ(ca.order.trips_repaired_by_timestamp,
            cb.order.trips_repaired_by_timestamp);
  EXPECT_EQ(ca.outliers.duplicates_removed, cb.outliers.duplicates_removed);
  EXPECT_EQ(ca.outliers.spikes_removed, cb.outliers.spikes_removed);
  EXPECT_EQ(ca.outliers.implied_speed_removed,
            cb.outliers.implied_speed_removed);
  EXPECT_EQ(ca.interpolation.gaps_restored, cb.interpolation.gaps_restored);
  EXPECT_EQ(ca.interpolation.points_inserted,
            cb.interpolation.points_inserted);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(ca.segmentation.splits_by_rule[r],
              cb.segmentation.splits_by_rule[r]);
  }
  EXPECT_EQ(ca.segmentation.trips_in, cb.segmentation.trips_in);
  EXPECT_EQ(ca.segmentation.segments_out, cb.segmentation.segments_out);
  EXPECT_EQ(ca.filter.removed_too_few_points,
            cb.filter.removed_too_few_points);
  EXPECT_EQ(ca.filter.removed_too_long, cb.filter.removed_too_long);
  EXPECT_EQ(ca.filter.kept, cb.filter.kept);
  EXPECT_EQ(ca.clean_segments, cb.clean_segments);
  EXPECT_EQ(ca.clean_points, cb.clean_points);
  EXPECT_EQ(ca.faults.ToString(), cb.faults.ToString());

  ASSERT_EQ(a.table3.size(), b.table3.size());
  for (size_t i = 0; i < a.table3.size(); ++i) {
    EXPECT_EQ(a.table3[i].segments_total, b.table3[i].segments_total);
    EXPECT_EQ(a.table3[i].post_filtered, b.table3[i].post_filtered);
  }
  EXPECT_EQ(a.transitions.size(), b.transitions.size());
  EXPECT_EQ(a.total_point_speeds, b.total_point_speeds);
  EXPECT_EQ(a.overall_mean_speed_kmh, b.overall_mean_speed_kmh);
  EXPECT_EQ(a.match_report.routes, b.match_report.routes);
  EXPECT_EQ(a.match_report.mean_snap_distance_m,
            b.match_report.mean_snap_distance_m);
}

TEST(StreamingEquivalenceTest, SerialStreamingMatchesInMemory) {
  const core::StudyResults run = RunStudy(0, /*streaming=*/true);
  ExpectSameReports(InMemoryReference(), run);
  EXPECT_EQ(InMemoryDigest(), core::StudyDigestJson(run));
}

TEST(StreamingEquivalenceTest, OneWorkerStreamingMatchesInMemory) {
  const core::StudyResults run = RunStudy(1, /*streaming=*/true);
  ExpectSameReports(InMemoryReference(), run);
  EXPECT_EQ(InMemoryDigest(), core::StudyDigestJson(run));
}

TEST(StreamingEquivalenceTest, TwoWorkersStreamingMatchesInMemory) {
  const core::StudyResults run = RunStudy(2, /*streaming=*/true);
  ExpectSameReports(InMemoryReference(), run);
  EXPECT_EQ(InMemoryDigest(), core::StudyDigestJson(run));
}

TEST(StreamingEquivalenceTest, EightWorkersStreamingMatchesInMemory) {
  const core::StudyResults run = RunStudy(8, /*streaming=*/true);
  ExpectSameReports(InMemoryReference(), run);
  EXPECT_EQ(InMemoryDigest(), core::StudyDigestJson(run));
}

// A faulted study falls back to the in-memory path (file faults
// corrupt one CSV view of the whole store), so the flag must be a
// no-op there — same results at every worker count, not a silently
// different code path.
const core::StudyResults& FaultedReference() {
  static const core::StudyResults reference =
      RunStudy(0, /*streaming=*/false, fault::FaultPlan::Uniform(0.02));
  return reference;
}

TEST(StreamingEquivalenceTest, FaultedStudyStreamingFlagIsIdentity) {
  const core::StudyResults run =
      RunStudy(0, /*streaming=*/true, fault::FaultPlan::Uniform(0.02));
  ExpectSameReports(FaultedReference(), run);
  EXPECT_GT(run.cleaning_report.faults.TotalDropped(), 0);
  EXPECT_EQ(core::StudyDigestJson(FaultedReference()),
            core::StudyDigestJson(run));
}

TEST(StreamingEquivalenceTest, FaultedEightWorkersStreamingMatches) {
  const core::StudyResults run =
      RunStudy(8, /*streaming=*/true, fault::FaultPlan::Uniform(0.02));
  ExpectSameReports(FaultedReference(), run);
  EXPECT_EQ(core::StudyDigestJson(FaultedReference()),
            core::StudyDigestJson(run));
}

// Observability must agree too: the funnel ledger (including the new
// trips.simulated / points.simulated source stages) and every counter
// — clean.* included, which streaming publishes via the same helper —
// are deterministic data counts in both modes.
TEST(StreamingEquivalenceTest, FunnelAndCountersMatchInMemory) {
  const core::StudyResults in_memory =
      RunStudy(0, /*streaming=*/false, {}, /*observability=*/true);
  const core::StudyResults streamed =
      RunStudy(2, /*streaming=*/true, {}, /*observability=*/true);
  ASSERT_TRUE(in_memory.observability.enabled);
  ASSERT_TRUE(streamed.observability.enabled);
  EXPECT_EQ(in_memory.observability.funnel, streamed.observability.funnel);
  EXPECT_EQ(in_memory.observability.counters,
            streamed.observability.counters);
  EXPECT_NE(in_memory.observability.funnel.Find("points.simulated"),
            nullptr);
  const Status reconciles =
      streamed.observability.funnel.CheckReconciles();
  EXPECT_TRUE(reconciles.ok()) << reconciles.ToString();
}

}  // namespace
}  // namespace taxitrace
