#include "taxitrace/roadnet/road_network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "taxitrace/common/check.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace roadnet {

RoadNetwork::RoadNetwork(const geo::LatLon& origin,
                         const TilingOptions& tiling)
    : origin_(origin), projection_(origin), tiling_(tiling) {
  TT_CHECK(tiling_.tile_size_m >= 0.0);
  if (tiling_.tile_size_m == 0.0) {
    // Single-tile mode: tile 0 exists from the start so packed ids are
    // the historical dense ids and TileAt() always resolves.
    tiles_.emplace_back();
    tile_directory_.emplace(TileCoord{0, 0}, 0);
  }
}

const Vertex& RoadNetwork::vertex(VertexId id) const {
  TT_DCHECK(HasVertex(id));
  return tiles_[static_cast<size_t>(TileIndexOf(id))]
      .vertices[static_cast<size_t>(LocalIdOf(id))];
}

const Edge& RoadNetwork::edge(EdgeId id) const {
  TT_DCHECK(HasEdge(id));
  return tiles_[static_cast<size_t>(TileIndexOf(id))]
      .edges[static_cast<size_t>(LocalIdOf(id))];
}

const MapFeature& RoadNetwork::feature(FeatureId id) const {
  TT_DCHECK(id >= 0 && static_cast<size_t>(id) < features_.size());
  return features_[static_cast<size_t>(id)];
}

const GraphTile& RoadNetwork::tile(TileIndex t) const {
  TT_DCHECK(t >= 0 && static_cast<size_t>(t) < tiles_.size());
  return tiles_[static_cast<size_t>(t)];
}

std::span<const BoundaryArc> RoadNetwork::BoundaryArcs(TileIndex t) const {
  if (adjacency_stale()) RebuildAdjacency();
  return tile(t).boundary;
}

TileIndex RoadNetwork::TileAt(const geo::EnPoint& p) const {
  const TileCoord coord = tiling_.tile_size_m > 0.0
                              ? TileCoordOfPoint(p, tiling_.tile_size_m)
                              : TileCoord{0, 0};
  const auto it = tile_directory_.find(coord);
  return it == tile_directory_.end() ? TileIndex{-1} : it->second;
}

size_t RoadNetwork::VertexOrdinal(VertexId id) const {
  TT_DCHECK(HasVertex(id));
  if (ordinals_stale()) RebuildOrdinalBases();
  return vertex_base_[static_cast<size_t>(TileIndexOf(id))] +
         static_cast<size_t>(LocalIdOf(id));
}

size_t RoadNetwork::EdgeOrdinal(EdgeId id) const {
  TT_DCHECK(HasEdge(id));
  if (ordinals_stale()) RebuildOrdinalBases();
  return edge_base_[static_cast<size_t>(TileIndexOf(id))] +
         static_cast<size_t>(LocalIdOf(id));
}

VertexId RoadNetwork::VertexIdAt(size_t ordinal) const {
  TT_DCHECK(ordinal < num_vertices_);
  if (ordinals_stale()) RebuildOrdinalBases();
  // Largest tile whose base is <= ordinal.
  const auto it = std::upper_bound(vertex_base_.begin(), vertex_base_.end(),
                                   ordinal);
  const auto t = static_cast<size_t>(it - vertex_base_.begin()) - 1;
  return PackTiledId(static_cast<TileIndex>(t),
                     static_cast<int32_t>(ordinal - vertex_base_[t]));
}

EdgeId RoadNetwork::EdgeIdAt(size_t ordinal) const {
  TT_DCHECK(ordinal < num_edges_);
  if (ordinals_stale()) RebuildOrdinalBases();
  const auto it =
      std::upper_bound(edge_base_.begin(), edge_base_.end(), ordinal);
  const auto t = static_cast<size_t>(it - edge_base_.begin()) - 1;
  return PackTiledId(static_cast<TileIndex>(t),
                     static_cast<int32_t>(ordinal - edge_base_[t]));
}

const std::vector<EdgeId>& RoadNetwork::IncidentEdges(VertexId v) const {
  TT_DCHECK(HasVertex(v));
  return tiles_[static_cast<size_t>(TileIndexOf(v))]
      .incident[static_cast<size_t>(LocalIdOf(v))];
}

void RoadNetwork::WarmAdjacency() const {
  if (adjacency_stale()) RebuildAdjacency();
}

void RoadNetwork::RebuildOrdinalBases() const {
  ordinal_vertex_count_ = num_vertices_;
  ordinal_edge_count_ = num_edges_;
  vertex_base_.assign(tiles_.size(), 0);
  edge_base_.assign(tiles_.size(), 0);
  size_t vsum = 0;
  size_t esum = 0;
  for (size_t t = 0; t < tiles_.size(); ++t) {
    vertex_base_[t] = vsum;
    edge_base_[t] = esum;
    vsum += tiles_[t].vertices.size();
    esum += tiles_[t].edges.size();
  }
}

void RoadNetwork::RebuildAdjacency() const {
  for (GraphTile& t : tiles_) {
    const size_t n = t.vertices.size();
    t.csr_offsets.assign(n + 1, 0);
    for (size_t v = 0; v < n; ++v) {
      t.csr_offsets[v + 1] =
          t.csr_offsets[v] + static_cast<int32_t>(t.incident[v].size());
    }
    t.csr_arcs.resize(static_cast<size_t>(t.csr_offsets[n]));
    t.boundary.clear();
    size_t next = 0;
    for (size_t v = 0; v < n; ++v) {
      const VertexId base = t.vertices[v].id;
      for (const EdgeId eid : t.incident[v]) {
        const Edge& e = edge(eid);
        // A self-loop appears twice in the incidence list; both copies
        // leave along the edge orientation, matching Opposite()'s
        // from-first resolution.
        const bool forward = e.from == base;
        HalfEdge arc;
        arc.edge = eid;
        arc.head = forward ? e.to : e.from;
        arc.length_m = e.length_m;
        arc.traversable_out = CanTraverse(eid, forward);
        arc.traversable_in = CanTraverse(eid, !forward);
        arc.forward = forward;
        t.csr_arcs[next++] = arc;
        if (TileIndexOf(arc.head) != TileIndexOf(base)) {
          t.boundary.push_back(BoundaryArc{base, arc.head, eid});
        }
      }
    }
  }
  RebuildOrdinalBases();
  csr_vertex_count_ = num_vertices_;
  csr_edge_count_ = num_edges_;
}

bool RoadNetwork::CanTraverse(EdgeId e, bool forward) const {
  const TravelDirection d = edge(e).direction;
  if (d == TravelDirection::kBoth) return true;
  return forward ? d == TravelDirection::kForward
                 : d == TravelDirection::kBackward;
}

VertexId RoadNetwork::Opposite(EdgeId e, VertexId v) const {
  const Edge& ed = edge(e);
  TT_DCHECK(ed.from == v || ed.to == v);
  return ed.from == v ? ed.to : ed.from;
}

geo::EnPoint RoadNetwork::PointAt(const EdgePosition& pos) const {
  return edge(pos.edge).geometry.Interpolate(pos.arc_length_m);
}

int RoadNetwork::CountFeaturesOnEdge(EdgeId e, FeatureType t) const {
  int n = 0;
  for (FeatureId f : edge(e).feature_ids) {
    if (feature(f).type == t) ++n;
  }
  return n;
}

int RoadNetwork::CountFeatures(FeatureType t) const {
  int n = 0;
  for (const MapFeature& f : features_) {
    if (f.type == t) ++n;
  }
  return n;
}

geo::Bbox RoadNetwork::Bounds() const {
  geo::Bbox box = geo::Bbox::Empty();
  ForEachEdge([&](const Edge& e) { box.Extend(e.geometry.Bounds()); });
  return box;
}

size_t RoadNetwork::ApproxMemoryBytes() const {
  size_t bytes = sizeof(RoadNetwork);
  bytes += features_.capacity() * sizeof(MapFeature);
  bytes += tile_directory_.size() *
           (sizeof(TileCoord) + sizeof(TileIndex) + 2 * sizeof(void*));
  bytes += vertex_base_.capacity() * sizeof(size_t);
  bytes += edge_base_.capacity() * sizeof(size_t);
  for (const GraphTile& t : tiles_) {
    bytes += sizeof(GraphTile);
    bytes += t.vertices.capacity() * sizeof(Vertex);
    bytes += t.csr_offsets.capacity() * sizeof(int32_t);
    bytes += t.csr_arcs.capacity() * sizeof(HalfEdge);
    bytes += t.boundary.capacity() * sizeof(BoundaryArc);
    bytes += t.incident.capacity() * sizeof(std::vector<EdgeId>);
    for (const std::vector<EdgeId>& inc : t.incident) {
      bytes += inc.capacity() * sizeof(EdgeId);
    }
    bytes += t.edges.capacity() * sizeof(Edge);
    for (const Edge& e : t.edges) {
      bytes += e.geometry.size() * sizeof(geo::EnPoint);
      bytes += e.element_ids.capacity() * sizeof(ElementId);
      bytes += e.feature_ids.capacity() * sizeof(FeatureId);
      bytes += e.road_name.capacity();
    }
  }
  return bytes;
}

TileIndex RoadNetwork::TileForPosition(const geo::EnPoint& position) {
  if (tiling_.tile_size_m == 0.0) return 0;
  const TileCoord coord = TileCoordOfPoint(position, tiling_.tile_size_m);
  const auto it = tile_directory_.find(coord);
  if (it != tile_directory_.end()) return it->second;
  TT_CHECK(tiles_.size() < static_cast<size_t>(kMaxTiles));
  const auto index = static_cast<TileIndex>(tiles_.size());
  tiles_.emplace_back();
  tiles_.back().coord = coord;
  tile_directory_.emplace(coord, index);
  return index;
}

VertexId RoadNetwork::AddVertex(const geo::EnPoint& position,
                                bool is_junction) {
  const TileIndex t = TileForPosition(position);
  GraphTile& tl = tiles_[static_cast<size_t>(t)];
  TT_CHECK(tl.vertices.size() <= static_cast<size_t>(kMaxLocalId));
  const VertexId id =
      PackTiledId(t, static_cast<int32_t>(tl.vertices.size()));
  tl.vertices.push_back(Vertex{id, position, is_junction});
  tl.incident.emplace_back();
  ++num_vertices_;
  return id;
}

EdgeId RoadNetwork::AddEdge(Edge edge) {
  TT_CHECK(HasVertex(edge.from));
  TT_CHECK(HasVertex(edge.to));
  const TileIndex t = TileIndexOf(edge.from);
  GraphTile& tl = tiles_[static_cast<size_t>(t)];
  TT_CHECK(tl.edges.size() <= static_cast<size_t>(kMaxLocalId));
  const EdgeId id = PackTiledId(t, static_cast<int32_t>(tl.edges.size()));
  edge.id = id;
  edge.length_m = edge.geometry.Length();
  tiles_[static_cast<size_t>(TileIndexOf(edge.from))]
      .incident[static_cast<size_t>(LocalIdOf(edge.from))]
      .push_back(id);
  tiles_[static_cast<size_t>(TileIndexOf(edge.to))]
      .incident[static_cast<size_t>(LocalIdOf(edge.to))]
      .push_back(id);
  tl.edges.push_back(std::move(edge));
  ++num_edges_;
  return id;
}

FeatureId RoadNetwork::AddFeature(FeatureType type,
                                  const geo::EnPoint& position,
                                  double attach_radius_m) {
  const FeatureId id = static_cast<FeatureId>(features_.size());
  features_.push_back(MapFeature{id, type, position});

  EdgeId best_edge = kInvalidEdge;
  double best_dist = attach_radius_m;
  ForEachEdge([&](const Edge& e) {
    if (!e.geometry.Bounds().Inflated(attach_radius_m).Contains(position)) {
      return;
    }
    const double d = e.geometry.Project(position).distance;
    if (d <= best_dist) {
      best_dist = d;
      best_edge = e.id;
    }
  });
  if (best_edge != kInvalidEdge) {
    tiles_[static_cast<size_t>(TileIndexOf(best_edge))]
        .edges[static_cast<size_t>(LocalIdOf(best_edge))]
        .feature_ids.push_back(id);
  }
  return id;
}

Status RoadNetwork::Validate() const {
  for (size_t ti = 0; ti < tiles_.size(); ++ti) {
    const GraphTile& tl = tiles_[ti];
    const auto tidx = static_cast<TileIndex>(ti);
    for (size_t i = 0; i < tl.vertices.size(); ++i) {
      const VertexId expect = PackTiledId(tidx, static_cast<int32_t>(i));
      if (tl.vertices[i].id != expect) {
        return Status::Corruption(StrFormat("vertex %zu of tile %zu has id %d",
                                            i, ti, tl.vertices[i].id));
      }
      if (tiling_.tile_size_m > 0.0 &&
          TileCoordOfPoint(tl.vertices[i].position, tiling_.tile_size_m) !=
              tl.coord) {
        return Status::Corruption(StrFormat(
            "vertex %d lies outside its tile", tl.vertices[i].id));
      }
    }
    for (size_t i = 0; i < tl.edges.size(); ++i) {
      const Edge& e = tl.edges[i];
      if (e.id != PackTiledId(tidx, static_cast<int32_t>(i))) {
        return Status::Corruption(
            StrFormat("edge %zu of tile %zu has id %d", i, ti, e.id));
      }
      if (!HasVertex(e.from) || !HasVertex(e.to)) {
        return Status::Corruption(StrFormat("edge %d has bad endpoints", e.id));
      }
      if (TileIndexOf(e.from) != tidx) {
        return Status::Corruption(StrFormat(
            "edge %d is not stored in the tile of its from-vertex", e.id));
      }
      if (e.geometry.size() < 2) {
        return Status::Corruption(StrFormat("edge %d has no geometry", e.id));
      }
      constexpr double kSnapTolerance = 0.5;  // metres
      if (geo::Distance(e.geometry.front(), vertex(e.from).position) >
              kSnapTolerance ||
          geo::Distance(e.geometry.back(), vertex(e.to).position) >
              kSnapTolerance) {
        return Status::Corruption(
            StrFormat("edge %d geometry does not meet its vertices", e.id));
      }
      if (!(e.length_m > 0.0)) {
        return Status::Corruption(StrFormat("edge %d has zero length", e.id));
      }
      if (!(e.speed_limit_kmh > 0.0)) {
        return Status::Corruption(
            StrFormat("edge %d has non-positive speed limit", e.id));
      }
      for (FeatureId f : e.feature_ids) {
        if (f < 0 || static_cast<size_t>(f) >= features_.size()) {
          return Status::Corruption(
              StrFormat("edge %d references missing feature %lld", e.id,
                        static_cast<long long>(f)));
        }
      }
    }
    for (size_t v = 0; v < tl.incident.size(); ++v) {
      const VertexId vid = PackTiledId(tidx, static_cast<int32_t>(v));
      for (EdgeId e : tl.incident[v]) {
        if (!HasEdge(e)) {
          return Status::Corruption(StrFormat(
              "incidence list of vertex %d lists missing edge %d", vid, e));
        }
        const Edge& ed = edge(e);
        if (ed.from != vid && ed.to != vid) {
          return Status::Corruption(
              StrFormat("incidence list of vertex %d lists edge %d", vid, e));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace roadnet
}  // namespace taxitrace
