// Significance testing for the mixed model: the REML likelihood-ratio
// test of the random cell effect (is there "strong evidence of the
// effect of geography", as the paper puts it?), with the boundary-
// corrected 0.5*chi2_0 + 0.5*chi2_1 null mixture.

#ifndef TAXITRACE_MODEL_SIGNIFICANCE_H_
#define TAXITRACE_MODEL_SIGNIFICANCE_H_

#include "taxitrace/common/result.h"
#include "taxitrace/model/one_way_reml.h"

namespace taxitrace {
namespace model {

/// Upper-tail probability P(X > x) of a chi-square distribution with
/// `dof` degrees of freedom (regularised incomplete gamma). dof >= 1,
/// x >= 0.
double ChiSquareSurvival(double x, int dof);

/// Regularised upper incomplete gamma Q(a, x), a > 0, x >= 0.
double UpperIncompleteGammaRegularized(double a, double x);

/// Result of the random-effect likelihood-ratio test.
struct RandomEffectLrt {
  /// -2 * (restricted logLik at lambda = 0 minus at the REML optimum).
  double statistic = 0.0;
  /// Boundary-corrected p-value (0.5 chi2_0 + 0.5 chi2_1 mixture).
  double p_value = 1.0;

  [[nodiscard]] bool Significant(double alpha = 0.05) const {
    return p_value < alpha;
  }
};

/// Tests whether the between-group variance is non-zero. Fails when the
/// underlying model cannot be fitted.
Result<RandomEffectLrt> TestRandomEffect(const OneWayReml& model);

}  // namespace model
}  // namespace taxitrace

#endif  // TAXITRACE_MODEL_SIGNIFICANCE_H_
