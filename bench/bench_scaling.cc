// Performance scaling: how the pipeline's cost grows with study size,
// network extent and model size — the systems-side companion to the
// reproduction benches.

#include <string>
#include <thread>

#include "bench_util.h"
#include "taxitrace/model/one_way_reml.h"
#include "taxitrace/obs/observability.h"
#include "taxitrace/roadnet/router.h"

namespace taxitrace {
namespace {

void PrintStageTimings(const char* label, const core::StudyResults& r) {
  std::printf("PIPELINE STAGE TIMINGS (%s):\n", label);
  std::printf("  map generation       %8.1f ms\n",
              r.timings.map_generation_ms);
  std::printf("  fleet simulation     %8.1f ms  (%d threads)\n",
              r.timings.simulation_ms, r.timings.simulation_threads);
  std::printf("  cleaning             %8.1f ms  (%d threads)\n",
              r.timings.cleaning_ms, r.timings.cleaning_threads);
  std::printf("  selection + matching %8.1f ms  (%d threads)\n",
              r.timings.selection_matching_ms,
              r.timings.selection_matching_threads);
  std::printf("  grid + mixed model   %8.1f ms\n", r.timings.analysis_ms);
  std::printf("  total                %8.1f ms for %lld raw points\n\n",
              r.timings.TotalMs(),
              static_cast<long long>(
                  r.cleaning_report.raw_points));
}

std::string RunJson(const core::StudyResults& r, int configured_threads) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "    {\"threads\": %d, \"workers\": %d,\n"
      "     \"map_generation_ms\": %.2f, \"simulation_ms\": %.2f,\n"
      "     \"cleaning_ms\": %.2f, \"selection_matching_ms\": %.2f,\n"
      "     \"analysis_ms\": %.2f, \"total_ms\": %.2f}",
      configured_threads, r.timings.simulation_threads,
      r.timings.map_generation_ms, r.timings.simulation_ms,
      r.timings.cleaning_ms, r.timings.selection_matching_ms,
      r.timings.analysis_ms, r.timings.TotalMs());
  return buf;
}

// The perf trajectory of record: serial vs parallel full-study stage
// timings, machine-readable so successive PRs can be compared.
void PrintScaling() {
  core::StudyConfig serial_config = core::StudyConfig::FullStudy();
  serial_config.num_threads = 0;
  const core::StudyResults serial =
      benchutil::RunStudyOrExit(serial_config, "serial full study");
  PrintStageTimings("full 7-car, 365-day study, serial", serial);

  core::StudyConfig parallel_config = core::StudyConfig::FullStudy();
  parallel_config.num_threads = -1;  // TAXITRACE_THREADS / all hardware
  const core::StudyResults parallel =
      benchutil::RunStudyOrExit(parallel_config, "parallel full study");
  PrintStageTimings("full 7-car, 365-day study, parallel", parallel);

  const double speedup =
      parallel.timings.TotalMs() > 0.0
          ? serial.timings.TotalMs() / parallel.timings.TotalMs()
          : 0.0;
  std::string json;
  json += "{\n";
  json += "  \"schema\": \"taxitrace-bench-pipeline/1\",\n";
  json += "  \"study\": {\"cars\": 7, \"days\": 365},\n";
  char line[256];
  std::snprintf(
      line, sizeof line, "  \"hardware_threads\": %u,\n",
      std::thread::hardware_concurrency());  // tt-lint: allow(raw-thread)
  json += line;
  std::snprintf(line, sizeof line, "  \"raw_points\": %lld,\n",
                static_cast<long long>(serial.cleaning_report.raw_points));
  json += line;
  json += "  \"runs\": [\n";
  json += RunJson(serial, 0) + ",\n";
  json += RunJson(parallel, -1) + "\n";
  json += "  ],\n";
  std::snprintf(line, sizeof line,
                "  \"parallel_speedup_total\": %.3f\n", speedup);
  json += line;
  json += "}\n";
  benchutil::EmitFigureFile("BENCH_pipeline.json", json);
  std::printf("  parallel speedup (total wall-clock): %.2fx on %d workers\n\n",
              speedup, parallel.timings.simulation_threads);

  // Metrics snapshot from a separate observability-enabled small study.
  // The two timed full-study runs above keep observability off, so the
  // wall times of record always benchmark the disabled (no-op) path.
  core::StudyConfig metrics_config = core::StudyConfig::SmallStudy();
  metrics_config.observability.enabled = true;
  const core::StudyResults observed =
      benchutil::RunStudyOrExit(metrics_config, "metrics small study");
  benchutil::EmitFigureFile("BENCH_metrics.json",
                            obs::SnapshotJson(observed.observability));
}

void BM_PipelineByThreads(benchmark::State& state) {
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::Pipeline pipeline(config);
    auto results = pipeline.Run();
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_PipelineByThreads)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineByDays(benchmark::State& state) {
  for (auto _ : state) {
    core::StudyConfig config = core::StudyConfig::SmallStudy();
    config.fleet.num_days = static_cast<int>(state.range(0));
    core::Pipeline pipeline(config);
    auto results = pipeline.Run();
    benchmark::DoNotOptimize(results);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PipelineByDays)
    ->Arg(7)
    ->Arg(14)
    ->Arg(28)
    ->Arg(56)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_DijkstraByNetworkExtent(benchmark::State& state) {
  synth::CityMapOptions options;
  options.extent_m = static_cast<double>(state.range(0));
  options.core_extent_m = options.extent_m * 0.8;
  const synth::CityMap map = synth::GenerateCityMap(options).value();
  const roadnet::Router router(&map.network);
  Rng rng(5);
  for (auto _ : state) {
    const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(map.network.vertices().size()) - 1));
    const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(map.network.vertices().size()) - 1));
    auto path = router.ShortestPath(a, b);
    benchmark::DoNotOptimize(path);
  }
  state.counters["edges"] =
      static_cast<double>(map.network.edges().size());
}
BENCHMARK(BM_DijkstraByNetworkExtent)
    ->Arg(600)
    ->Arg(1000)
    ->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

void BM_RemlByObservations(benchmark::State& state) {
  Rng rng(7);
  model::OneWayReml reml;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    reml.Add(static_cast<size_t>(i % 80), rng.Gaussian(20.0, 5.0));
  }
  for (auto _ : state) {
    auto fit = reml.Fit();
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RemlByObservations)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_SpatialIndexBuild(benchmark::State& state) {
  const core::StudyResults& r = benchutil::SmallResults();
  for (auto _ : state) {
    roadnet::SpatialIndex index(&r.map.network,
                                static_cast<double>(state.range(0)));
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_SpatialIndexBuild)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintScaling)
