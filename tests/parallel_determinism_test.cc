// The parallel pipeline's contract: StudyResults is byte-identical at
// any thread count, including the serial (0-thread) fallback. These
// tests run the small study serially once, then at several worker
// counts, and compare exact values — doubles included, since the
// ordered merges are required to reproduce the serial fold order.

#include <gtest/gtest.h>

#include <string>

#include "taxitrace/common/check.h"
#include "taxitrace/common/executor.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/reports.h"
#include "taxitrace/serve/replay.h"
#include "taxitrace/serve/snapshot.h"

namespace taxitrace {
namespace {

core::StudyResults RunWithThreads(int num_threads,
                                  const fault::FaultPlan& faults = {},
                                  bool observability = false) {
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.num_threads = num_threads;
  config.faults = faults;
  config.observability.enabled = observability;
  core::Pipeline pipeline(config);
  auto run = pipeline.Run();
  TT_CHECK_OK(run.status());
  return std::move(run).value();
}

const core::StudyResults& SerialReference() {
  static const core::StudyResults reference = RunWithThreads(0);
  return reference;
}

void ExpectIdenticalResults(const core::StudyResults& a,
                            const core::StudyResults& b) {
  // Simulation output.
  EXPECT_EQ(a.raw_trips, b.raw_trips);

  // Cleaning report, every counter.
  const clean::CleaningReport& ca = a.cleaning_report;
  const clean::CleaningReport& cb = b.cleaning_report;
  EXPECT_EQ(ca.raw_trips, cb.raw_trips);
  EXPECT_EQ(ca.raw_points, cb.raw_points);
  EXPECT_EQ(ca.order.trips_consistent, cb.order.trips_consistent);
  EXPECT_EQ(ca.order.trips_repaired_by_id, cb.order.trips_repaired_by_id);
  EXPECT_EQ(ca.order.trips_repaired_by_timestamp,
            cb.order.trips_repaired_by_timestamp);
  EXPECT_EQ(ca.outliers.duplicates_removed, cb.outliers.duplicates_removed);
  EXPECT_EQ(ca.outliers.spikes_removed, cb.outliers.spikes_removed);
  EXPECT_EQ(ca.outliers.implied_speed_removed,
            cb.outliers.implied_speed_removed);
  EXPECT_EQ(ca.interpolation.gaps_restored, cb.interpolation.gaps_restored);
  EXPECT_EQ(ca.interpolation.points_inserted,
            cb.interpolation.points_inserted);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(ca.segmentation.splits_by_rule[r],
              cb.segmentation.splits_by_rule[r]);
  }
  EXPECT_EQ(ca.segmentation.trips_in, cb.segmentation.trips_in);
  EXPECT_EQ(ca.segmentation.segments_out, cb.segmentation.segments_out);
  EXPECT_EQ(ca.filter.removed_too_few_points,
            cb.filter.removed_too_few_points);
  EXPECT_EQ(ca.filter.removed_too_long, cb.filter.removed_too_long);
  EXPECT_EQ(ca.filter.kept, cb.filter.kept);
  EXPECT_EQ(ca.clean_segments, cb.clean_segments);
  EXPECT_EQ(ca.clean_points, cb.clean_points);

  // Fault accounting (all counters; ToString prints every nonzero one).
  EXPECT_EQ(ca.faults.TotalInjected(), cb.faults.TotalInjected());
  EXPECT_EQ(ca.faults.TotalDropped(), cb.faults.TotalDropped());
  EXPECT_EQ(ca.faults.ToString(), cb.faults.ToString());

  // Table 3 funnel.
  ASSERT_EQ(a.table3.size(), b.table3.size());
  for (size_t i = 0; i < a.table3.size(); ++i) {
    EXPECT_EQ(a.table3[i].car_id, b.table3[i].car_id);
    EXPECT_EQ(a.table3[i].segments_total, b.table3[i].segments_total);
    EXPECT_EQ(a.table3[i].filtered_cleaned, b.table3[i].filtered_cleaned);
    EXPECT_EQ(a.table3[i].transitions_total, b.table3[i].transitions_total);
    EXPECT_EQ(a.table3[i].transitions_central,
              b.table3[i].transitions_central);
    EXPECT_EQ(a.table3[i].post_filtered, b.table3[i].post_filtered);
  }

  // Matched transitions: same population, same order, same records.
  ASSERT_EQ(a.transitions.size(), b.transitions.size());
  for (size_t i = 0; i < a.transitions.size(); ++i) {
    const core::MatchedTransition& ta = a.transitions[i];
    const core::MatchedTransition& tb = b.transitions[i];
    EXPECT_EQ(ta.record.trip_id, tb.record.trip_id);
    EXPECT_EQ(ta.record.car_id, tb.record.car_id);
    EXPECT_EQ(ta.record.direction, tb.record.direction);
    EXPECT_EQ(ta.record.start_time_s, tb.record.start_time_s);
    EXPECT_EQ(ta.record.route_time_h, tb.record.route_time_h);
    EXPECT_EQ(ta.record.route_distance_km, tb.record.route_distance_km);
    EXPECT_EQ(ta.record.low_speed_share, tb.record.low_speed_share);
    EXPECT_EQ(ta.record.normal_speed_share, tb.record.normal_speed_share);
    EXPECT_EQ(ta.record.fuel_ml, tb.record.fuel_ml);
    EXPECT_EQ(ta.route.length_m, tb.route.length_m);
    EXPECT_EQ(ta.route.steps.size(), tb.route.steps.size());
    EXPECT_EQ(ta.transition.segment.points.size(),
              tb.transition.segment.points.size());
  }

  // Grid joins.
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].cell, b.cells[i].cell);
    EXPECT_EQ(a.cells[i].num_points, b.cells[i].num_points);
    EXPECT_EQ(a.cells[i].mean_speed_kmh, b.cells[i].mean_speed_kmh);
    EXPECT_EQ(a.cells[i].speed_variance, b.cells[i].speed_variance);
  }
  EXPECT_EQ(a.cells_by_direction.size(), b.cells_by_direction.size());
  for (const auto& [direction, cells] : a.cells_by_direction) {
    const auto it = b.cells_by_direction.find(direction);
    ASSERT_NE(it, b.cells_by_direction.end()) << direction;
    EXPECT_EQ(cells.size(), it->second.size()) << direction;
  }

  // Mixed model: the REML fit folds observations in merged trip order,
  // so even its doubles must agree exactly.
  EXPECT_EQ(a.cell_model.mu, b.cell_model.mu);
  EXPECT_EQ(a.cell_model.lambda, b.cell_model.lambda);
  EXPECT_EQ(a.cell_model.sigma2_group, b.cell_model.sigma2_group);
  EXPECT_EQ(a.cell_model.sigma2_residual, b.cell_model.sigma2_residual);
  EXPECT_EQ(a.cell_model.num_observations, b.cell_model.num_observations);
  EXPECT_EQ(a.cell_model.blup, b.cell_model.blup);
  ASSERT_EQ(a.model_cells.size(), b.model_cells.size());
  for (size_t i = 0; i < a.model_cells.size(); ++i) {
    EXPECT_EQ(a.model_cells[i], b.model_cells[i]);
  }
  EXPECT_EQ(a.geography_lrt.statistic, b.geography_lrt.statistic);
  EXPECT_EQ(a.geography_lrt.p_value, b.geography_lrt.p_value);

  // Match report, including its order-dependent running mean.
  EXPECT_EQ(a.match_report.routes, b.match_report.routes);
  EXPECT_EQ(a.match_report.matched_points, b.match_report.matched_points);
  EXPECT_EQ(a.match_report.skipped_points, b.match_report.skipped_points);
  EXPECT_EQ(a.match_report.gaps_filled, b.match_report.gaps_filled);
  EXPECT_EQ(a.match_report.mean_snap_distance_m,
            b.match_report.mean_snap_distance_m);
  EXPECT_EQ(a.match_report.max_snap_distance_m,
            b.match_report.max_snap_distance_m);
  EXPECT_EQ(a.match_report.total_length_km, b.match_report.total_length_km);

  // Point-speed aggregates.
  EXPECT_EQ(a.total_point_speeds, b.total_point_speeds);
  EXPECT_EQ(a.overall_mean_speed_kmh, b.overall_mean_speed_kmh);
  for (int s = 0; s < analysis::kNumSeasons; ++s) {
    EXPECT_EQ(a.seasonal[s].n, b.seasonal[s].n);
    EXPECT_EQ(a.seasonal[s].mean_kmh, b.seasonal[s].mean_kmh);
    EXPECT_EQ(a.seasonal[s].delta_kmh, b.seasonal[s].delta_kmh);
  }
}

TEST(ParallelDeterminismTest, OneWorkerMatchesSerial) {
  ExpectIdenticalResults(SerialReference(), RunWithThreads(1));
}

TEST(ParallelDeterminismTest, TwoWorkersMatchSerial) {
  ExpectIdenticalResults(SerialReference(), RunWithThreads(2));
}

TEST(ParallelDeterminismTest, EightWorkersMatchSerial) {
  ExpectIdenticalResults(SerialReference(), RunWithThreads(8));
}

// The same contract holds with fault injection on: the injector draws
// from per-trip / per-row MixSeed streams, so the corrupted input — and
// everything downstream of it — is a pure function of the plan.
const core::StudyResults& FaultedSerialReference() {
  static const core::StudyResults reference =
      RunWithThreads(0, fault::FaultPlan::Uniform(0.02));
  return reference;
}

TEST(ParallelDeterminismTest, FaultedStudyInjectsAndDrops) {
  const fault::FaultReport& faults =
      FaultedSerialReference().cleaning_report.faults;
  EXPECT_GT(faults.TotalInjected(), 0);
  EXPECT_GT(faults.TotalDropped(), 0);
}

TEST(ParallelDeterminismTest, FaultedOneWorkerMatchesSerial) {
  ExpectIdenticalResults(FaultedSerialReference(),
                         RunWithThreads(1, fault::FaultPlan::Uniform(0.02)));
}

TEST(ParallelDeterminismTest, FaultedTwoWorkersMatchSerial) {
  ExpectIdenticalResults(FaultedSerialReference(),
                         RunWithThreads(2, fault::FaultPlan::Uniform(0.02)));
}

TEST(ParallelDeterminismTest, FaultedEightWorkersMatchSerial) {
  ExpectIdenticalResults(FaultedSerialReference(),
                         RunWithThreads(8, fault::FaultPlan::Uniform(0.02)));
}

// Observability legs. Two contracts at once: collecting metrics must
// not perturb StudyResults (a metrics-on run equals the metrics-off
// serial reference, field for field), and the deterministic half of the
// snapshot — the funnel ledger and the counters — must be identical at
// any worker count. Gauges and spans are run-dependent by design and
// are deliberately not compared.
const core::StudyResults& ObservedSerialReference() {
  static const core::StudyResults reference =
      RunWithThreads(0, {}, /*observability=*/true);
  return reference;
}

void ExpectIdenticalObservability(const core::StudyResults& a,
                                  const core::StudyResults& b) {
  ASSERT_TRUE(a.observability.enabled);
  ASSERT_TRUE(b.observability.enabled);
  EXPECT_EQ(a.observability.funnel, b.observability.funnel);
  EXPECT_EQ(a.observability.counters, b.observability.counters);
}

TEST(ParallelDeterminismTest, MetricsOffRunHasEmptySnapshot) {
  const core::StudyResults& r = SerialReference();
  EXPECT_FALSE(r.observability.enabled);
  EXPECT_TRUE(r.observability.funnel.empty());
  EXPECT_TRUE(r.observability.counters.empty());
  EXPECT_TRUE(r.observability.spans.empty());
}

TEST(ParallelDeterminismTest, MetricsDoNotPerturbSerialResults) {
  ExpectIdenticalResults(SerialReference(), ObservedSerialReference());
  const Status reconciles =
      ObservedSerialReference().observability.funnel.CheckReconciles();
  EXPECT_TRUE(reconciles.ok()) << reconciles.ToString();
}

TEST(ParallelDeterminismTest, MetricsOnOneWorkerMatchesSerial) {
  const core::StudyResults run = RunWithThreads(1, {}, true);
  ExpectIdenticalResults(SerialReference(), run);
  ExpectIdenticalObservability(ObservedSerialReference(), run);
}

TEST(ParallelDeterminismTest, MetricsOnTwoWorkersMatchSerial) {
  const core::StudyResults run = RunWithThreads(2, {}, true);
  ExpectIdenticalResults(SerialReference(), run);
  ExpectIdenticalObservability(ObservedSerialReference(), run);
}

TEST(ParallelDeterminismTest, MetricsOnEightWorkersMatchSerial) {
  const core::StudyResults run = RunWithThreads(8, {}, true);
  ExpectIdenticalResults(SerialReference(), run);
  ExpectIdenticalObservability(ObservedSerialReference(), run);
}

// With fault injection on, the funnel gains the store-rebuild (and,
// with file faults, the CSV parse) stages — and still reconciles
// exactly, in == out + dropped, at every stage.
TEST(ParallelDeterminismTest, FaultedFunnelReconcilesAcrossWorkers) {
  const core::StudyResults serial =
      RunWithThreads(0, fault::FaultPlan::Uniform(0.02), true);
  ExpectIdenticalResults(FaultedSerialReference(), serial);
  const Status reconciles =
      serial.observability.funnel.CheckReconciles();
  EXPECT_TRUE(reconciles.ok()) << reconciles.ToString();
  EXPECT_NE(serial.observability.funnel.Find("trips.store_rebuild"),
            nullptr);

  const core::StudyResults parallel =
      RunWithThreads(8, fault::FaultPlan::Uniform(0.02), true);
  ExpectIdenticalResults(FaultedSerialReference(), parallel);
  ExpectIdenticalObservability(serial, parallel);
}

// Route-cache legs. The gap-fill memo only skips repeat searches, so a
// cache-off run (capacity 0) must reproduce the cache-on results
// exactly — field for field and down to the golden digest — at every
// worker count. (The cache-on legs are the default-config tests above.)
core::StudyResults RunWithCacheOff(int num_threads) {
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.num_threads = num_threads;
  config.matcher.gap.route_cache_capacity = 0;
  core::Pipeline pipeline(config);
  auto run = pipeline.Run();
  TT_CHECK_OK(run.status());
  return std::move(run).value();
}

TEST(ParallelDeterminismTest, CacheOffSerialMatchesSerial) {
  const core::StudyResults run = RunWithCacheOff(0);
  ExpectIdenticalResults(SerialReference(), run);
  EXPECT_EQ(core::StudyDigestJson(SerialReference()),
            core::StudyDigestJson(run));
}

TEST(ParallelDeterminismTest, CacheOffOneWorkerMatchesSerial) {
  ExpectIdenticalResults(SerialReference(), RunWithCacheOff(1));
}

TEST(ParallelDeterminismTest, CacheOffTwoWorkersMatchSerial) {
  ExpectIdenticalResults(SerialReference(), RunWithCacheOff(2));
}

TEST(ParallelDeterminismTest, CacheOffEightWorkersMatchSerial) {
  const core::StudyResults run = RunWithCacheOff(8);
  ExpectIdenticalResults(SerialReference(), run);
  EXPECT_EQ(core::StudyDigestJson(SerialReference()),
            core::StudyDigestJson(run));
}

// The router's work counters are sums of per-search deterministic work
// (goal-directed or not is decided by the search arguments alone), and
// the route-cache tallies fold per trip in cleaned order, so the whole
// counter snapshot — including the Dijkstra-vs-A* mix — is identical at
// any worker count.
TEST(ParallelDeterminismTest, RouterCountersDeterministicAcrossWorkers) {
  const std::vector<obs::CounterSample>& counters =
      ObservedSerialReference().observability.counters;
  for (const char* name :
       {"roadnet.router.searches", "roadnet.router.heap_pops",
        "roadnet.router.settled_vertices",
        "roadnet.router.goal_directed_searches",
        "mapmatch.route_cache.hits", "mapmatch.route_cache.misses",
        "mapmatch.route_cache.evictions"}) {
    bool found = false;
    for (const obs::CounterSample& c : counters) found |= c.name == name;
    EXPECT_TRUE(found) << "missing counter " << name;
  }
  const core::StudyResults run = RunWithThreads(8, {}, true);
  EXPECT_EQ(counters, run.observability.counters);
}

// Serve-layer legs. The snapshot builder shards the matched points over
// a fixed shard count and folds the shards in shard order, so the
// serialized snapshot — one flat byte string — must be byte-identical
// at every worker count. The replay harness makes the same promise for
// its funnel tallies and result digest: queries live in fixed shards,
// every random choice is counter-derived, and per-shard engine stats
// fold in shard order.
std::string SnapshotBytesWithThreads(int num_threads) {
  const Executor executor(num_threads);
  auto bytes = serve::SnapshotBuilder().Build(SerialReference(), &executor);
  TT_CHECK_OK(bytes.status());
  return std::move(bytes).value();
}

TEST(ParallelDeterminismTest, SnapshotBytesIdenticalAcrossWorkers) {
  const std::string serial = SnapshotBytesWithThreads(0);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, SnapshotBytesWithThreads(1));
  EXPECT_EQ(serial, SnapshotBytesWithThreads(2));
  EXPECT_EQ(serial, SnapshotBytesWithThreads(8));
}

TEST(ParallelDeterminismTest, ReplayStatsAndDigestIdenticalAcrossWorkers) {
  auto snapshot = serve::Snapshot::FromBytes(SnapshotBytesWithThreads(0));
  TT_CHECK_OK(snapshot.status());
  serve::WorkloadOptions options;
  options.num_queries = 20000;
  auto replay_with = [&](int num_threads) {
    const Executor executor(num_threads);
    auto replayed = serve::ReplayWorkload(*snapshot, options, &executor);
    TT_CHECK_OK(replayed.status());
    return std::move(replayed).value();
  };
  const serve::ReplayResult serial = replay_with(0);
  EXPECT_EQ(serial.stats.offered, options.num_queries);
  for (const int num_threads : {1, 2, 8}) {
    const serve::ReplayResult run = replay_with(num_threads);
    EXPECT_EQ(run.stats, serial.stats) << num_threads << " workers";
    EXPECT_EQ(run.digest, serial.digest) << num_threads << " workers";
  }
}

TEST(ParallelDeterminismTest, ThreadCountsAreRecorded) {
  const core::StudyResults results = RunWithThreads(2);
  EXPECT_EQ(results.timings.simulation_threads, 2);
  EXPECT_EQ(results.timings.cleaning_threads, 2);
  EXPECT_EQ(results.timings.selection_matching_threads, 2);
  EXPECT_EQ(SerialReference().timings.simulation_threads, 0);
}

}  // namespace
}  // namespace taxitrace
