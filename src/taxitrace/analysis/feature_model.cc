#include "taxitrace/analysis/feature_model.h"

namespace taxitrace {
namespace analysis {

double FeatureModelFit::Coefficient(const std::string& term) const {
  for (size_t i = 0; i < terms.size(); ++i) {
    if (terms[i] == term && i < fit.fixed_effects.size()) {
      return fit.fixed_effects[i];
    }
  }
  return 0.0;
}

double FeatureModelFit::StandardError(const std::string& term) const {
  for (size_t i = 0; i < terms.size(); ++i) {
    if (terms[i] == term && i < fit.fixed_se.size()) {
      return fit.fixed_se[i];
    }
  }
  return 0.0;
}

Result<FeatureModelFit> FitFeatureModel(
    const std::vector<SpeedObservation>& observations,
    const std::unordered_map<CellId, CellFeatureCounts, CellIdHash>&
        features,
    const Grid& grid) {
  if (observations.size() < 10) {
    return Status::FailedPrecondition("too few observations");
  }
  FeatureModelFit out;
  out.terms = FeatureModelTerms();
  model::MixedModel mixed(out.terms.size());
  std::unordered_map<CellId, size_t, CellIdHash> groups;
  for (const SpeedObservation& obs : observations) {
    const CellId cell = grid.CellOf(obs.position);
    const auto fit = features.find(cell);
    const CellFeatureCounts counts =
        fit == features.end() ? CellFeatureCounts{} : fit->second;
    const auto [it, inserted] = groups.emplace(cell, groups.size());
    if (inserted) out.cells.push_back(cell);
    mixed.Add({1.0, static_cast<double>(counts.traffic_lights),
               static_cast<double>(counts.bus_stops),
               static_cast<double>(counts.pedestrian_crossings),
               static_cast<double>(counts.junctions)},
              it->second, obs.speed_kmh);
  }
  TAXITRACE_ASSIGN_OR_RETURN(out.fit, mixed.Fit());
  return out;
}

}  // namespace analysis
}  // namespace taxitrace
