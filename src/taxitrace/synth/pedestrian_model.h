// Pedestrian activity model — the stand-in for the city-wide WiFi
// sensing of Kostakos et al. that the paper uses to explain crowded
// areas ("hotspots, crowded areas with a lot of pedestrians moving, have
// an effect on the results"). Produces a deterministic crowd-activity
// level per hotspot over time: a diurnal curve (midday and evening
// peaks), weekend boosts and day-to-day noise.

#ifndef TAXITRACE_SYNTH_PEDESTRIAN_MODEL_H_
#define TAXITRACE_SYNTH_PEDESTRIAN_MODEL_H_

#include <vector>

#include "taxitrace/common/random.h"
#include "taxitrace/synth/city_map_generator.h"

namespace taxitrace {
namespace synth {

/// Deterministic pedestrian activity per hotspot. Owns a copy of the
/// hotspot list, so it has no lifetime coupling to the map.
class PedestrianModel {
 public:
  /// Builds daily activity factors for `num_days` days.
  PedestrianModel(uint64_t seed, std::vector<Hotspot> hotspots,
                  int num_days = 365);

  /// Activity of hotspot `index` at a study timestamp, in [0, ~1.5]:
  /// 1.0 is the hotspot's nominal (static) crowding.
  [[nodiscard]] double ActivityAt(size_t index, double timestamp_s) const;

  /// Crowd intensity at a position: the hotspot spatial profile scaled
  /// by the current activity (replaces the static intensity).
  double CrowdIntensityAt(const geo::EnPoint& position,
                          double timestamp_s) const;

  /// Mean activity of hotspot `index` over the daytime hours (09-21) of
  /// the whole study — what a WiFi census would report.
  [[nodiscard]] double MeanDaytimeActivity(size_t index) const;

  /// The hotspots this model animates.
  [[nodiscard]] const std::vector<Hotspot>& hotspots() const {
    return hotspots_;
  }

 private:
  std::vector<Hotspot> hotspots_;
  /// [hotspot][day] day-to-day multiplier.
  std::vector<std::vector<double>> daily_factor_;
};

/// The shared diurnal pedestrian curve (midday and evening peaks;
/// near-empty streets at night), mean ~1 over the active day.
double PedestrianDiurnalCurve(double hour_of_day, bool weekend);

}  // namespace synth
}  // namespace taxitrace

#endif  // TAXITRACE_SYNTH_PEDESTRIAN_MODEL_H_
