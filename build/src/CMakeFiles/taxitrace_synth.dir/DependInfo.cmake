
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/synth/city_map_generator.cc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/city_map_generator.cc.o" "gcc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/city_map_generator.cc.o.d"
  "/root/repo/src/taxitrace/synth/driver_model.cc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/driver_model.cc.o" "gcc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/driver_model.cc.o.d"
  "/root/repo/src/taxitrace/synth/fleet_simulator.cc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/fleet_simulator.cc.o" "gcc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/fleet_simulator.cc.o.d"
  "/root/repo/src/taxitrace/synth/pedestrian_model.cc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/pedestrian_model.cc.o" "gcc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/pedestrian_model.cc.o.d"
  "/root/repo/src/taxitrace/synth/sensor_model.cc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/sensor_model.cc.o" "gcc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/sensor_model.cc.o.d"
  "/root/repo/src/taxitrace/synth/weather_model.cc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/weather_model.cc.o" "gcc" "src/CMakeFiles/taxitrace_synth.dir/taxitrace/synth/weather_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
