// Time-based trip segmentation (Section IV-C, Table 2).
//
// Taxi drivers can run the engine for most of a day, so a raw trip
// (engine-on to engine-off) may span many customer rides separated by
// stand waits. The segmentation splits a trip wherever one of the rules
// of Table 2 classifies the gap between consecutive route points as a
// stop:
//   1. The distance between route points does not change within three
//      minutes.
//   2. The distance change is less than 3 km within more than 7 minutes.
//   3. Movement at a speed below 0.002 m/s.
//   4. Less than 3 km within more than 15 minutes at a speed above
//      0.002 m/s.
//   5. After the first round, segments longer than 40 km are re-split
//      with rule 1 using a 1.5-minute interval.

#ifndef TAXITRACE_CLEAN_SEGMENTATION_H_
#define TAXITRACE_CLEAN_SEGMENTATION_H_

#include <vector>

#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace clean {

/// Table 2 thresholds.
struct SegmentationOptions {
  // Rule 1.
  double rule1_window_s = 180.0;
  /// "Does not change" tolerance (GPS noise floor), metres.
  double no_change_tolerance_m = 20.0;
  // Rule 2.
  double rule2_window_s = 420.0;
  double rule2_max_move_m = 3000.0;
  // Rule 3.
  double rule3_speed_ms = 0.002;
  // Rule 4.
  double rule4_window_s = 900.0;
  double rule4_max_move_m = 3000.0;
  // Rule 5.
  double rule5_length_m = 40000.0;
  double rule5_window_s = 90.0;
};

/// Which rule (1..5) split each boundary, for diagnostics.
struct SegmentationStats {
  int64_t splits_by_rule[5] = {0, 0, 0, 0, 0};
  int64_t trips_in = 0;
  int64_t segments_out = 0;
};

/// Splits one trip into trip segments. Segment trips inherit the car id;
/// their ids are `source_trip_id * 1000 + k` (k = 0,1,...), keeping the
/// mapping to the source trip explicit. Points must be in repaired
/// (time-monotone) order.
std::vector<trace::Trip> SegmentTrip(const trace::Trip& trip,
                                     const SegmentationOptions& options = {},
                                     SegmentationStats* stats = nullptr);

/// Segments every trip of a collection.
std::vector<trace::Trip> SegmentTrips(const std::vector<trace::Trip>& trips,
                                      const SegmentationOptions& options = {},
                                      SegmentationStats* stats = nullptr);

}  // namespace clean
}  // namespace taxitrace

#endif  // TAXITRACE_CLEAN_SEGMENTATION_H_
