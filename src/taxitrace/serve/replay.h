// Synthetic query replay against a Snapshot: the serve layer's bench
// and proof harness in one.
//
// The workload is a hot-cell Zipf mix over the observed cells (rank by
// point count, weight 1/rank^s) of point, bbox, scenario-slice, and
// deliberate out-of-bounds queries. Query i of shard k derives every
// random choice from MixSeed(seed, k, i) — counter-derived, so the
// query stream, the funnel tallies, and the result digest are
// byte-identical at any worker count, while shards run concurrently
// through common/executor. Latency percentiles and QPS are
// observations of the run (gauges, never inputs to anything
// deterministic).

#ifndef TAXITRACE_SERVE_REPLAY_H_
#define TAXITRACE_SERVE_REPLAY_H_

#include <cstdint>

#include "taxitrace/common/executor.h"
#include "taxitrace/common/result.h"
#include "taxitrace/obs/funnel.h"
#include "taxitrace/obs/metrics.h"
#include "taxitrace/serve/query_engine.h"
#include "taxitrace/serve/snapshot.h"

namespace taxitrace {
namespace serve {

struct WorkloadOptions {
  int64_t num_queries = 1'000'000;
  uint64_t seed = 20121;
  /// Zipf exponent of the hot-cell mix; larger = hotter head.
  double zipf_exponent = 1.1;
  /// Query-type mix; the remainder after the three shares are
  /// deliberate out-of-bounds probes.
  double point_share = 0.55;
  double bbox_share = 0.15;
  double slice_share = 0.20;
  /// Bbox queries span [1, bbox_max_span_cells] cells per axis.
  int32_t bbox_max_span_cells = 6;
  /// Fixed query shards; independent of worker count.
  int num_shards = 64;
};

struct ReplayResult {
  QueryStats stats;            ///< Deterministic funnel tallies.
  uint64_t digest = 0;         ///< Order-sensitive fold of all results.
  int64_t num_queries = 0;
  double wall_ms = 0.0;        ///< Run observation.
  double qps = 0.0;            ///< num_queries / wall.
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Replays the workload. When `metrics` is set, publishes the
/// serve.query.* counter family (deterministic) and serve.replay.*
/// gauges (run observations). When `funnel` is set, appends a
/// "serve.queries" stage (in = offered, out = answered, drops =
/// out_of_bounds + empty_cell) and enforces its reconciliation.
Result<ReplayResult> ReplayWorkload(const Snapshot& snapshot,
                                    const WorkloadOptions& options,
                                    const Executor* executor,
                                    obs::MetricsRegistry* metrics = nullptr,
                                    obs::FunnelLedger* funnel = nullptr);

}  // namespace serve
}  // namespace taxitrace

#endif  // TAXITRACE_SERVE_REPLAY_H_
