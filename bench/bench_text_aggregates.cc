// The Section VI-A in-text aggregates: total measured point speeds,
// seasonal mean-speed deltas, the study-area feature census, and the
// end-to-end pipeline runtime.

#include "bench_util.h"

namespace taxitrace {
namespace {

void PrintAggregates() {
  const core::StudyResults& r = benchutil::FullResults();
  std::printf("%s\n", core::FormatTextAggregates(r).c_str());
}

void BM_FullSmallStudy(benchmark::State& state) {
  for (auto _ : state) {
    core::Pipeline pipeline(core::StudyConfig::SmallStudy());
    auto results = pipeline.Run();
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_FullSmallStudy)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintAggregates)
