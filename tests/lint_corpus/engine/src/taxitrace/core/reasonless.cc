// A suppression without a reason still suppresses its target but
// raises suppression-reason in its place.

#include "taxitrace/core/fake.h"

namespace taxitrace {

void Meh(std::atomic<int>& c) {
  c.fetch_add(1, std::memory_order_relaxed);  // tt-lint: allow(relaxed-atomic) expect(suppression-reason)
}

}  // namespace taxitrace
