// Advice generation: turns trip scores into the post-driving guidance
// the Driving coach prototype showed drivers ("instructing the driver
// for fuel-efficient driving is of great interest", §VII).

#ifndef TAXITRACE_COACH_ADVISOR_H_
#define TAXITRACE_COACH_ADVISOR_H_

#include <string>
#include <vector>

#include "taxitrace/coach/trip_score.h"

namespace taxitrace {
namespace coach {

/// Advice categories, ordered by typical fuel impact.
enum class AdviceTopic : unsigned char {
  kIdling,
  kHarshDriving,
  kSpeeding,
  kRouteChoice,   ///< Too much low-speed exposure: pick another route/time.
  kWellDriven,
};

/// One piece of advice.
struct Advice {
  AdviceTopic topic;
  std::string message;
  /// Estimated fuel at stake on this trip, ml (0 for kWellDriven).
  double potential_saving_ml = 0.0;
};

/// Advice thresholds.
struct AdvisorOptions {
  double idle_share_threshold = 0.25;
  double harsh_per_km_threshold = 1.5;
  double speeding_share_threshold = 0.10;
  double low_speed_share_threshold = 0.35;
  /// Idling burn rate used for the saving estimate, ml per idle point
  /// (~40 s at 0.14 ml/s).
  double idle_ml_per_point = 5.5;
};

/// Generates advice for one scored trip, most valuable first. A trip
/// with no findings yields a single kWellDriven entry.
std::vector<Advice> AdviseTrip(const TripScore& score,
                               const AdvisorOptions& options = {});

/// Stable topic name ("idling", "harsh_driving", ...).
std::string_view AdviceTopicName(AdviceTopic topic);

}  // namespace coach
}  // namespace taxitrace

#endif  // TAXITRACE_COACH_ADVISOR_H_
