// Referenced by tests/CMakeLists.txt; must not be flagged.
