// Ablation: the incremental matcher with map-direction info and
// Dijkstra gap filling vs the nearest-edge baseline, on simulated drives
// with known ground truth.

#include "bench_util.h"
#include "taxitrace/clean/order_repair.h"
#include "taxitrace/clean/outlier_filter.h"
#include "taxitrace/mapmatch/hmm_matcher.h"
#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/mapmatch/match_quality.h"
#include "taxitrace/mapmatch/nearest_edge_matcher.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/driver_model.h"
#include "taxitrace/synth/sensor_model.h"

namespace taxitrace {
namespace {

struct Case {
  trace::Trip trip;
  roadnet::Path truth;
};

struct World {
  synth::CityMap map;
  std::vector<Case> cases;
};

const World& TestWorld() {
  static const World* world = [] {
    auto* w = new World{synth::GenerateCityMap().value(), {}};
    const synth::WeatherModel weather(3, 30);
    const synth::DriverModel driver(&w->map, &weather);
    const roadnet::Router router(&w->map.network);
    const synth::SensorModel sensor;  // default defects on
    Rng rng(7);
    while (w->cases.size() < 60) {
      const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
          0, static_cast<int64_t>(w->map.network.num_vertices()) - 1));
      const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
          0, static_cast<int64_t>(w->map.network.num_vertices()) - 1));
      auto path = router.ShortestPath(a, b);
      if (!path.ok() || path->length_m < 1000.0) continue;
      const auto samples = driver.Drive(*path, 7200.0, 1.0, &rng);
      Case c;
      c.truth = std::move(*path);
      int64_t next_id = 1;
      c.trip.points = sensor.Observe(samples, 1, &next_id,
                                     w->map.network.projection(), &rng);
      // The paper's pipeline repairs ordering and removes obvious
      // errors before matching; do the same here.
      clean::RepairPointOrder(&c.trip.points);
      clean::FilterOutliers(&c.trip.points);
      if (c.trip.points.size() < 5) continue;
      w->cases.push_back(std::move(c));
    }
    return w;
  }();
  return *world;
}

void PrintAblation() {
  const World& world = TestWorld();
  const roadnet::SpatialIndex index(&world.map.network);
  const mapmatch::IncrementalMatcher incremental(&world.map.network,
                                                 &index);
  const mapmatch::HmmMatcher hmm(&world.map.network, &index);
  const mapmatch::NearestEdgeMatcher baseline(&world.map.network, &index);

  double jaccard[3] = {}, deviation[3] = {}, len_err[3] = {};
  int n = 0;
  for (const Case& c : world.cases) {
    const auto inc = incremental.Match(c.trip);
    const auto vit = hmm.Match(c.trip);
    const auto base = baseline.Match(c.trip);
    if (!inc.ok() || !vit.ok() || !base.ok()) continue;
    std::vector<roadnet::EdgeId> truth_edges;
    for (const roadnet::PathStep& s : c.truth.steps) {
      truth_edges.push_back(s.edge);
    }
    const mapmatch::MatchedRoute* routes[3] = {&*inc, &*vit, &*base};
    for (int m = 0; m < 3; ++m) {
      jaccard[m] +=
          mapmatch::EdgeJaccard(routes[m]->DistinctEdges(), truth_edges);
      deviation[m] += mapmatch::MeanGeometryDeviation(routes[m]->geometry,
                                                      c.truth.geometry);
      len_err[m] += mapmatch::RouteLengthError(routes[m]->length_m,
                                               c.truth.length_m);
    }
    ++n;
  }
  std::printf(
      "ABLATION: incremental matcher (Section IV-E) vs HMM/Viterbi vs "
      "nearest-edge baseline, %d simulated drives\n",
      n);
  std::printf(
      "  metric                 incremental       HMM   nearest-edge\n");
  std::printf("  edge Jaccard              %8.3f  %8.3f      %8.3f\n",
              jaccard[0] / n, jaccard[1] / n, jaccard[2] / n);
  std::printf("  mean deviation (m)        %8.1f  %8.1f      %8.1f\n",
              deviation[0] / n, deviation[1] / n, deviation[2] / n);
  std::printf("  route length error        %8.3f  %8.3f      %8.3f\n",
              len_err[0] / n, len_err[1] / n, len_err[2] / n);
  std::printf(
      "Check: connectivity-aware matchers dominate the baseline on edge "
      "recovery -> %s\n\n",
      (jaccard[0] > jaccard[2] && jaccard[1] > jaccard[2]) ? "HOLDS"
                                                           : "VIOLATED");
}

void BM_IncrementalMatch(benchmark::State& state) {
  const World& world = TestWorld();
  const roadnet::SpatialIndex index(&world.map.network);
  const mapmatch::IncrementalMatcher matcher(&world.map.network, &index);
  size_t idx = 0;
  for (auto _ : state) {
    auto matched = matcher.Match(world.cases[idx % world.cases.size()].trip);
    benchmark::DoNotOptimize(matched);
    ++idx;
  }
}
BENCHMARK(BM_IncrementalMatch)->Unit(benchmark::kMillisecond);

void BM_HmmMatch(benchmark::State& state) {
  const World& world = TestWorld();
  const roadnet::SpatialIndex index(&world.map.network);
  const mapmatch::HmmMatcher matcher(&world.map.network, &index);
  size_t idx = 0;
  for (auto _ : state) {
    auto matched = matcher.Match(world.cases[idx % world.cases.size()].trip);
    benchmark::DoNotOptimize(matched);
    ++idx;
  }
}
BENCHMARK(BM_HmmMatch)->Unit(benchmark::kMillisecond);

void BM_NearestEdgeMatch(benchmark::State& state) {
  const World& world = TestWorld();
  const roadnet::SpatialIndex index(&world.map.network);
  const mapmatch::NearestEdgeMatcher matcher(&world.map.network, &index);
  size_t idx = 0;
  for (auto _ : state) {
    auto matched = matcher.Match(world.cases[idx % world.cases.size()].trip);
    benchmark::DoNotOptimize(matched);
    ++idx;
  }
}
BENCHMARK(BM_NearestEdgeMatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintAblation)
