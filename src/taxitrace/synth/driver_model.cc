#include "taxitrace/synth/driver_model.h"

#include <algorithm>
#include <cmath>

#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace synth {
namespace {

// Cursor over a polyline with prefix sums kept in a caller-owned buffer
// (so repeated drives reuse the storage). Lookups remember the last
// segment: the drive loop advances monotonically, making the common
// query O(1); any other query falls back to the O(log n) binary search
// with identical results.
class GeometryCursor {
 public:
  GeometryCursor(const geo::Polyline& line, std::vector<double>* cum)
      : line_(line), cum_(*cum) {
    const std::vector<geo::EnPoint>& pts = line.points();
    cum_.clear();
    cum_.reserve(pts.size());
    cum_.push_back(0.0);
    for (size_t i = 1; i < pts.size(); ++i) {
      cum_.push_back(cum_.back() + geo::Distance(pts[i - 1], pts[i]));
    }
  }

  double total() const { return cum_.empty() ? 0.0 : cum_.back(); }

  geo::EnPoint PositionAt(double arc) const {
    const size_t i = SegmentAt(arc);
    const std::vector<geo::EnPoint>& pts = line_.points();
    const double seg = cum_[i + 1] - cum_[i];
    const double t = seg > 0 ? (arc - cum_[i]) / seg : 0.0;
    return pts[i] + std::clamp(t, 0.0, 1.0) * (pts[i + 1] - pts[i]);
  }

  double HeadingAt(double arc) const {
    return HeadingOfSegment(SegmentAt(arc));
  }

  /// Position and heading at `arc` from a single segment lookup — the
  /// drive loop needs both for every sample.
  void SampleAt(double arc, geo::EnPoint* pos, double* heading) const {
    const size_t i = SegmentAt(arc);
    const std::vector<geo::EnPoint>& pts = line_.points();
    const double seg = cum_[i + 1] - cum_[i];
    const double t = seg > 0 ? (arc - cum_[i]) / seg : 0.0;
    *pos = pts[i] + std::clamp(t, 0.0, 1.0) * (pts[i + 1] - pts[i]);
    *heading = HeadingOfSegment(i);
  }

 private:
  /// SegmentHeading (an atan2) memoised per segment: consecutive drive
  /// samples almost always share a segment.
  double HeadingOfSegment(size_t i) const {
    if (i != heading_seg_) {
      heading_seg_ = i;
      heading_ = line_.SegmentHeading(i);
    }
    return heading_;
  }

  // The segment holding `arc`: the largest i with cum_[i] <= arc,
  // clamped into [0, size - 2] — the fast paths below reproduce the
  // binary search's answer exactly whenever they hit.
  size_t SegmentAt(double arc) const {
    arc = std::clamp(arc, 0.0, total());
    size_t i = hint_;
    if (i + 1 < cum_.size() && cum_[i] <= arc) {
      if (arc < cum_[i + 1]) return i;
      if (i + 2 < cum_.size() && cum_[i + 1] <= arc && arc < cum_[i + 2]) {
        hint_ = i + 1;
        return i + 1;
      }
    }
    const auto it = std::upper_bound(cum_.begin(), cum_.end(), arc);
    i = it == cum_.begin()
            ? 0
            : static_cast<size_t>(it - cum_.begin()) - 1;
    if (i + 1 >= cum_.size()) i = cum_.size() - 2;
    hint_ = i;
    return i;
  }

  const geo::Polyline& line_;
  std::vector<double>& cum_;
  mutable size_t hint_ = 0;
  mutable size_t heading_seg_ = static_cast<size_t>(-1);
  mutable double heading_ = 0.0;
};

}  // namespace

DriverModel::DriverModel(const CityMap* map, const WeatherModel* weather,
                         DriverOptions options,
                         const PedestrianModel* pedestrians)
    : map_(map),
      weather_(weather),
      pedestrians_(pedestrians),
      options_(options) {
  // Precompute, for every edge (indexed by ordinal; == id on
  // single-tile maps), the features whose influence circle the edge
  // passes through and where along the edge they act.
  edge_events_.resize(map_->network.num_edges());
  const roadnet::SpatialIndex index(&map_->network);
  for (const roadnet::MapFeature& f : map_->network.features()) {
    const std::vector<roadnet::EdgeCandidate> nearby =
        index.Nearby(f.position, options_.feature_influence_radius_m);
    for (const roadnet::EdgeCandidate& cand : nearby) {
      edge_events_[map_->network.EdgeOrdinal(cand.edge)].push_back(
          EdgeEvent{f.type, cand.projection.arc_length});
    }
  }
}

double DriverModel::HotspotFactor(const geo::EnPoint& p) const {
  return 1.0 - 0.55 * HotspotIntensity(p);
}

double DriverModel::HotspotIntensity(const geo::EnPoint& p) const {
  double intensity = 0.0;
  for (const Hotspot& h : map_->hotspots) {
    const double d = geo::Distance(p, h.center);
    if (d < h.radius_m) {
      const double depth = 1.0 - d / h.radius_m;  // 0 at rim, 1 at centre
      intensity = std::max(intensity, h.intensity * depth);
    }
  }
  return intensity;
}

double DriverModel::CrowdIntensity(const geo::EnPoint& p,
                                   double timestamp_s) const {
  return pedestrians_ != nullptr
             ? pedestrians_->CrowdIntensityAt(p, timestamp_s)
             : HotspotIntensity(p);
}

double DriverModel::CrowdIntensity(
    const geo::EnPoint& p, double timestamp_s,
    const std::vector<size_t>& candidates) const {
  if (pedestrians_ != nullptr) {
    return pedestrians_->CrowdIntensityAt(p, timestamp_s, candidates);
  }
  // Static profile, restricted to the candidates; skipped hotspots are
  // out of range and contribute nothing, so this equals
  // HotspotIntensity(p) for any p the candidates were built for.
  double intensity = 0.0;
  for (const size_t i : candidates) {
    const Hotspot& h = map_->hotspots[i];
    const double d = geo::Distance(p, h.center);
    if (d < h.radius_m) {
      const double depth = 1.0 - d / h.radius_m;
      intensity = std::max(intensity, h.intensity * depth);
    }
  }
  return intensity;
}

double DriverModel::CrowdIntensity(
    const geo::EnPoint& p, const CrowdWindow& window,
    const std::vector<size_t>& candidates) const {
  if (pedestrians_ != nullptr) {
    return pedestrians_->CrowdIntensityAt(p, window, candidates);
  }
  // The static profile is time-independent; the window carries nothing.
  double intensity = 0.0;
  for (const size_t i : candidates) {
    const Hotspot& h = map_->hotspots[i];
    const double d = geo::Distance(p, h.center);
    if (d < h.radius_m) {
      const double depth = 1.0 - d / h.radius_m;
      intensity = std::max(intensity, h.intensity * depth);
    }
  }
  return intensity;
}

void DriverModel::FillHotspotCandidates(
    const geo::EnPoint& lo, const geo::EnPoint& hi,
    std::vector<size_t>* candidates) const {
  candidates->clear();
  const std::vector<Hotspot>& hotspots =
      pedestrians_ != nullptr ? pedestrians_->hotspots() : map_->hotspots;
  for (size_t i = 0; i < hotspots.size(); ++i) {
    const Hotspot& h = hotspots[i];
    // Keep h when its centre is within radius of the box on both axes:
    // necessary for any point p in the box to satisfy
    // Distance(p, centre) < radius, since that distance dominates each
    // axis gap. Conservative, hence exactness-preserving.
    if (h.center.x >= lo.x - h.radius_m && h.center.x <= hi.x + h.radius_m &&
        h.center.y >= lo.y - h.radius_m && h.center.y <= hi.y + h.radius_m) {
      candidates->push_back(i);
    }
  }
}

double DriverModel::SeasonFactor(double timestamp_s) {
  switch (trace::MonthOfTimestamp(timestamp_s)) {
    case 12:
    case 1:
    case 2:
      return 0.97;  // winter: slowest
    case 3:
    case 4:
    case 5:
      return 1.0;  // spring
    case 6:
    case 7:
    case 8:
      return 1.03;  // summer
    default:
      return 1.065;  // autumn: fastest (the ordering of the paper)
  }
}

std::vector<DriveSample> DriverModel::Drive(const roadnet::Path& path,
                                            double start_time_s,
                                            double driver_factor,
                                            Rng* rng) const {
  DriveScratch scratch;
  Drive(path, start_time_s, driver_factor, rng, &scratch);
  return std::move(scratch.samples);
}

const std::vector<DriveSample>& DriverModel::Drive(
    const roadnet::Path& path, double start_time_s, double driver_factor,
    Rng* rng, DriveScratch* scratch) const {
  std::vector<DriveSample>& samples = scratch->samples;
  samples.clear();
  if (path.geometry.size() < 2) return samples;
  const GeometryCursor cursor(path.geometry, &scratch->cursor_cum);
  const double total = cursor.total();
  if (total < 1.0) return samples;

  // Hotspot prefilter: every crowd query below is at a point of the
  // path geometry, so only hotspots whose influence circle meets the
  // geometry's bounding box can ever contribute. Most drives pass no
  // hotspot at all and skip the per-step crowd scans entirely.
  {
    const std::vector<geo::EnPoint>& pts = path.geometry.points();
    geo::EnPoint lo = pts.front();
    geo::EnPoint hi = pts.front();
    for (const geo::EnPoint& p : pts) {
      lo.x = std::min(lo.x, p.x);
      lo.y = std::min(lo.y, p.y);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
    }
    FillHotspotCandidates(lo, hi, &scratch->hotspot_candidates);
  }
  const std::vector<size_t>& hotspot_candidates =
      scratch->hotspot_candidates;

  // Speed-limit zones along the path, one per step. When the path
  // contains partial edges the step lengths are scaled onto the actual
  // geometry length.
  using Zone = DriveScratch::Zone;
  using DriveEvent = DriveScratch::Event;
  std::vector<Zone>& zones = scratch->zones;
  zones.clear();
  double steps_total = 0.0;
  for (const roadnet::PathStep& s : path.steps) {
    steps_total += map_->network.edge(s.edge).length_m;
  }
  const double scale = steps_total > 0 ? total / steps_total : 1.0;
  {
    double arc = 0.0;
    for (const roadnet::PathStep& s : path.steps) {
      const roadnet::Edge& e = map_->network.edge(s.edge);
      arc += e.length_m * scale;
      zones.push_back(Zone{arc, e.speed_limit_kmh / 3.6});
    }
    if (zones.empty()) zones.push_back(Zone{total, 40.0 / 3.6});
    zones.back().end_arc = total;
  }

  // Instantiate stochastic events along the path.
  std::vector<DriveEvent>& events = scratch->events;
  events.clear();
  {
    double base_arc = 0.0;
    for (const roadnet::PathStep& s : path.steps) {
      const roadnet::Edge& e = map_->network.edge(s.edge);
      for (const EdgeEvent& ev :
           edge_events_[map_->network.EdgeOrdinal(s.edge)]) {
        const double on_edge =
            s.forward ? ev.arc_on_edge_m : e.length_m - ev.arc_on_edge_m;
        const double arc = base_arc + on_edge * scale;
        if (arc < 5.0 || arc > total - 5.0) continue;
        DriveEvent out;
        out.arc_m = arc;
        switch (ev.type) {
          case roadnet::FeatureType::kTrafficLight:
            if (rng->Bernoulli(options_.light_stop_prob)) {
              out.is_stop = true;
              out.wait_s = rng->Bernoulli(options_.light_error_prob)
                               ? options_.light_error_wait_s
                               : rng->Uniform(options_.light_wait_min_s,
                                              options_.light_wait_max_s);
              events.push_back(out);
            }
            break;
          case roadnet::FeatureType::kPedestrianCrossing: {
            const geo::EnPoint pos = cursor.PositionAt(arc);
            const double crowd = 0.55 * CrowdIntensity(
                pos, start_time_s, hotspot_candidates);  // 0..0.55
            const double p_slow = std::min(
                0.9, options_.crossing_slow_prob * (1.0 + 3.0 * crowd));
            if (rng->Bernoulli(p_slow)) {
              out.slow_to_ms = options_.crossing_slow_kmh / 3.6;
              if (crowd > 0.0 &&
                  rng->Bernoulli(options_.crossing_stop_prob_in_hotspot *
                                 crowd * 3.0)) {
                out.is_stop = true;
                out.wait_s = rng->Uniform(2.0, 10.0);
              }
              events.push_back(out);
            }
            break;
          }
          case roadnet::FeatureType::kBusStop:
            if (rng->Bernoulli(options_.bus_slow_prob)) {
              out.is_stop = true;
              out.wait_s = rng->Uniform(4.0, 18.0);
              events.push_back(out);
            }
            break;
        }
      }
      base_arc += e.length_m * scale;
    }
    std::sort(events.begin(), events.end(),
              [](const DriveEvent& a, const DriveEvent& b) {
                return a.arc_m < b.arc_m;
              });
    // Merge events closer than 12 m (a junction's lights seen from two
    // incident edges should act once).
    std::vector<DriveEvent>& merged = scratch->merged_events;
    merged.clear();
    for (const DriveEvent& ev : events) {
      if (!merged.empty() && ev.arc_m - merged.back().arc_m < 12.0) {
        merged.back().is_stop = merged.back().is_stop || ev.is_stop;
        merged.back().wait_s = std::max(merged.back().wait_s, ev.wait_s);
        merged.back().slow_to_ms =
            std::min(merged.back().slow_to_ms, ev.slow_to_ms);
        continue;
      }
      merged.push_back(ev);
    }
    events.swap(merged);
  }

  const bool slippery = weather_->SlipperyAt(start_time_s);
  const double temperature = weather_->TemperatureAt(start_time_s);
  double weather_factor = 1.0;
  if (slippery) weather_factor *= 0.96;
  if (temperature < -12.0) weather_factor *= 0.95;
  const double season_factor = SeasonFactor(start_time_s);

  const double dt = options_.step_s;
  double t = start_time_s;
  double arc = 0.0;
  double v = 0.0;
  size_t zone_idx = 0;
  size_t next_stop = 0;
  // Queue discharge after a stop: crawl slowly for a stretch.
  double crawl_until_arc = -1.0;
  double crawl_speed_ms = 99.0;
  const int max_iterations = static_cast<int>(3 * 3600 / dt);
  samples.reserve(static_cast<size_t>(total / 8.0) + 16);

  // Timestamp decomposition hoisted out of the loop: day index, weekend
  // flag and diurnal crowd level are constant between CrowdWindow
  // boundaries, so one window refresh replaces a HourOfDay + IsWeekend
  // + DayOfStudy round per simulated second.
  CrowdWindow window = MakeCrowdWindow(t);

  // One PositionAt per step: the sample position computed at the bottom
  // of the loop is exactly the next iteration's current position.
  geo::EnPoint pos = cursor.PositionAt(arc);
  for (int iter = 0; iter < max_iterations && arc < total - 0.5; ++iter) {
    while (zone_idx + 1 < zones.size() && arc > zones[zone_idx].end_arc) {
      ++zone_idx;
    }
    if (t >= window.valid_until_s) window = MakeCrowdWindow(t);
    // Seconds into the study day; `hour >= 7.0` on the historical
    // HourOfDay value is `tod >= 7 * 3600` here (the breakpoint
    // products are exact, so the division by 3600 preserves order).
    const double tod = t - window.day_start_s;
    const bool rush = !window.weekend &&
                      ((tod >= 7.0 * 3600.0 && tod < 9.0 * 3600.0) ||
                       (tod >= 15.0 * 3600.0 && tod < 17.0 * 3600.0));
    const double crowd_now = CrowdIntensity(pos, window, hotspot_candidates);
    double target = zones[zone_idx].limit_ms * driver_factor *
                    season_factor * weather_factor *
                    (1.0 - 0.55 * crowd_now);
    if (rush && map_->central_area.Contains(pos)) target *= 0.86;
    // Pedestrian traffic inside crowded areas forces ad-hoc crawls.
    if (arc >= crawl_until_arc && v > 1.0) {
      const double crowd = crowd_now;
      if (crowd > 0.0 &&
          rng->Bernoulli(crowd * options_.hotspot_crawl_rate_per_s * dt)) {
        crawl_until_arc = arc + rng->Uniform(8.0, 30.0);
        crawl_speed_ms = rng->Uniform(0.4, 2.0);
      }
    }
    if (arc < crawl_until_arc) target = std::min(target, crawl_speed_ms);

    // Slow-down events act in a window around their position.
    for (size_t i = next_stop; i < events.size(); ++i) {
      if (events[i].arc_m > arc + 30.0) break;
      if (!events[i].done && std::abs(events[i].arc_m - arc) < 22.0) {
        target = std::min(target, events[i].slow_to_ms);
      }
    }
    // Brake for the next pending stop; execute the wait on arrival.
    while (next_stop < events.size() &&
           (events[next_stop].done ||
            (!events[next_stop].is_stop &&
             events[next_stop].arc_m < arc - 25.0))) {
      ++next_stop;
    }
    if (next_stop < events.size() && events[next_stop].is_stop) {
      DriveEvent& ev = events[next_stop];
      const double gap = ev.arc_m - arc;
      // Arrived at the stop line (the braking profile brings v down on
      // approach; any residual speed is absorbed by the stop).
      if (gap <= 3.0) {
        // Arrived: wait out the red light / crossing / bus. Position
        // and arc are frozen for the whole wait, so one heading lookup
        // serves every wait sample.
        const double stop_heading = cursor.HeadingAt(arc);
        const int wait_samples =
            std::max(1, static_cast<int>(ev.wait_s / dt));
        for (int w = 0; w < wait_samples; ++w) {
          t += dt;
          samples.push_back(DriveSample{t, pos, 0.0, stop_heading,
                                        options_.fuel_idle_ml_s * dt});
        }
        ev.done = true;
        ++next_stop;
        v = 0.0;
        // A queue often discharges slowly past the stop line.
        if (rng->Bernoulli(options_.queue_crawl_prob)) {
          crawl_until_arc = arc + rng->Uniform(15.0, 60.0);
          crawl_speed_ms = rng->Uniform(1.0, 2.4);  // ~4-9 km/h
        }
        continue;
      }
      if (gap > 0.0) {
        const double v_brake =
            std::sqrt(2.0 * options_.decel_ms2 * std::max(0.0, gap - 1.5));
        target = std::min(target, v_brake);
      }
    }
    // Keep crawling forward when no stop is pending.
    if (target < 1.0 &&
        (next_stop >= events.size() || !events[next_stop].is_stop ||
         events[next_stop].arc_m > arc + 3.0)) {
      target = 1.0;
    }

    const double dv = std::clamp(target - v, -options_.decel_ms2 * dt,
                                 options_.accel_ms2 * dt);
    v = std::max(0.0, v + dv);
    arc = std::min(total, arc + v * dt);
    t += dt;
    const double fuel =
        options_.fuel_idle_ml_s * dt + options_.fuel_speed_ml_per_m * v * dt +
        options_.fuel_speed2_ml_s_per_ms2 * v * v * dt +
        options_.fuel_accel_ml_per_ms * std::max(0.0, dv);
    double heading;
    cursor.SampleAt(arc, &pos, &heading);
    samples.push_back(DriveSample{t, pos, v * 3.6, heading, fuel});
  }
  return samples;
}

std::vector<DriveSample> DriverModel::Idle(const geo::EnPoint& position,
                                           double start_time_s,
                                           double duration_s) const {
  std::vector<DriveSample> samples;
  Idle(position, start_time_s, duration_s, &samples);
  return samples;
}

void DriverModel::Idle(const geo::EnPoint& position, double start_time_s,
                       double duration_s,
                       std::vector<DriveSample>* out) const {
  out->clear();
  constexpr double kIdleStep = 10.0;
  for (double t = kIdleStep; t <= duration_s; t += kIdleStep) {
    out->push_back(DriveSample{start_time_s + t, position, 0.0, 0.0,
                               options_.fuel_idle_ml_s * kIdleStep});
  }
}

}  // namespace synth
}  // namespace taxitrace
