#include <gtest/gtest.h>

#include "taxitrace/mapattr/attribute_fetcher.h"
#include "taxitrace/roadnet/map_preparation.h"

namespace taxitrace {
namespace mapattr {
namespace {

using geo::EnPoint;
using roadnet::FeatureSpec;
using roadnet::FeatureType;
using roadnet::TrafficElement;

const geo::LatLon kOrigin{65.0121, 25.4682};

TrafficElement MakeElement(roadnet::ElementId id,
                           std::vector<EnPoint> pts) {
  TrafficElement el;
  el.id = id;
  el.geometry = geo::Polyline(std::move(pts));
  return el;
}

// A 600 m straight main street with two cross streets at x=200 and
// x=400, a traffic light at the first junction, a pedestrian crossing on
// the main street near x=300, a crossing on the side street (should NOT
// count for main-street routes) and a bus stop on the main street.
class AttributeFetcherTest : public testing::Test {
 protected:
  AttributeFetcherTest() {
    std::vector<TrafficElement> elements = {
        MakeElement(1, {{0, 0}, {200, 0}}),
        MakeElement(2, {{200, 0}, {400, 0}}),
        MakeElement(3, {{400, 0}, {600, 0}}),
        MakeElement(4, {{200, -150}, {200, 0}}),
        MakeElement(5, {{200, 0}, {200, 150}}),
        MakeElement(6, {{400, -150}, {400, 0}}),
        MakeElement(7, {{400, 0}, {400, 150}}),
    };
    const std::vector<FeatureSpec> features = {
        {FeatureType::kTrafficLight, EnPoint{200, 0}},
        {FeatureType::kPedestrianCrossing, EnPoint{300, 2}},
        {FeatureType::kPedestrianCrossing, EnPoint{200, 30}},  // side street
        {FeatureType::kBusStop, EnPoint{500, 4}},
    };
    net_ = std::make_unique<roadnet::RoadNetwork>(
        roadnet::PrepareRoadNetwork(elements, features, kOrigin).value());
    fetcher_ = std::make_unique<AttributeFetcher>(net_.get());
  }

  // The matched route driving the main street west -> east.
  mapmatch::MatchedRoute MainStreetRoute() const {
    mapmatch::MatchedRoute route;
    net_->ForEachEdge([&](const roadnet::Edge& e) {
      // Main-street edges are horizontal at y ~ 0.
      if (std::abs(e.geometry.front().y) < 1.0 &&
          std::abs(e.geometry.back().y) < 1.0) {
        route.steps.push_back(roadnet::PathStep{e.id, true});
      }
    });
    route.geometry = geo::Polyline({{0, 0}, {600, 0}});
    route.length_m = 600.0;
    return route;
  }

  std::unique_ptr<roadnet::RoadNetwork> net_;
  std::unique_ptr<AttributeFetcher> fetcher_;
};

TEST_F(AttributeFetcherTest, CountsJunctionsPassed) {
  const mapmatch::MatchedRoute route = MainStreetRoute();
  ASSERT_EQ(route.steps.size(), 3u);
  // Two interior junctions (x = 200, x = 400).
  EXPECT_EQ(fetcher_->CountJunctionsPassed(route.steps), 2);
}

TEST_F(AttributeFetcherTest, TrafficLightsCountByProximity) {
  const RouteAttributes attrs = fetcher_->Fetch(MainStreetRoute());
  EXPECT_EQ(attrs.traffic_lights, 1);
}

TEST_F(AttributeFetcherTest, CrossingsCountOnlyOnTraversedEdges) {
  const RouteAttributes attrs = fetcher_->Fetch(MainStreetRoute());
  // The x=300 crossing sits on the main street; the x=200,y=30 crossing
  // attaches to a side-street edge and must not count.
  EXPECT_EQ(attrs.pedestrian_crossings, 1);
}

TEST_F(AttributeFetcherTest, BusStopsCounted) {
  const RouteAttributes attrs = fetcher_->Fetch(MainStreetRoute());
  EXPECT_EQ(attrs.bus_stops, 1);
}

TEST_F(AttributeFetcherTest, SideStreetRouteSeesItsOwnFeatures) {
  mapmatch::MatchedRoute route;
  net_->ForEachEdge([&](const roadnet::Edge& e) {
    if (std::abs(e.geometry.front().x - 200.0) < 1.0 &&
        std::abs(e.geometry.back().x - 200.0) < 1.0) {
      route.steps.push_back(roadnet::PathStep{e.id, true});
    }
  });
  ASSERT_EQ(route.steps.size(), 2u);
  route.geometry = geo::Polyline({{200, -150}, {200, 150}});
  const RouteAttributes attrs = fetcher_->Fetch(route);
  EXPECT_EQ(attrs.pedestrian_crossings, 1);  // the side-street crossing
  EXPECT_EQ(attrs.traffic_lights, 1);        // junction light, by proximity
  EXPECT_EQ(attrs.bus_stops, 0);
  EXPECT_EQ(fetcher_->CountJunctionsPassed(route.steps), 1);
}

TEST_F(AttributeFetcherTest, EmptyRouteHasNoAttributes) {
  const RouteAttributes attrs = fetcher_->Fetch(mapmatch::MatchedRoute{});
  EXPECT_EQ(attrs.junctions, 0);
  EXPECT_EQ(attrs.traffic_lights, 0);
  EXPECT_EQ(attrs.pedestrian_crossings, 0);
  EXPECT_EQ(attrs.bus_stops, 0);
}

TEST_F(AttributeFetcherTest, FeatureCountedOnceAcrossRepeatedEdges) {
  mapmatch::MatchedRoute route = MainStreetRoute();
  // Drive the street twice.
  const auto steps = route.steps;
  for (const auto& s : steps) route.steps.push_back(s);
  const RouteAttributes attrs = fetcher_->Fetch(route);
  EXPECT_EQ(attrs.pedestrian_crossings, 1);
  EXPECT_EQ(attrs.bus_stops, 1);
}

TEST_F(AttributeFetcherTest, RadiusOptionsRespected) {
  AttributeFetcherOptions tight;
  tight.traffic_light_radius_m = 0.5;  // the light sits ~0 m off the route
  const AttributeFetcher tight_fetcher(net_.get(), tight);
  const RouteAttributes attrs = tight_fetcher.Fetch(MainStreetRoute());
  EXPECT_EQ(attrs.traffic_lights, 1);

  AttributeFetcherOptions far;
  far.traffic_light_radius_m = 500.0;
  const AttributeFetcher far_fetcher(net_.get(), far);
  EXPECT_EQ(far_fetcher.Fetch(MainStreetRoute()).traffic_lights, 1);
}

}  // namespace
}  // namespace mapattr
}  // namespace taxitrace
