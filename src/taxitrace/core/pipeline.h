// The end-to-end study pipeline: synthetic city + fleet -> cleaning ->
// OD selection -> map matching -> attribute fetching -> grid statistics
// -> mixed model. Produces every data structure behind the paper's
// tables and figures.

#ifndef TAXITRACE_CORE_PIPELINE_H_
#define TAXITRACE_CORE_PIPELINE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "taxitrace/analysis/cell_stats.h"
#include "taxitrace/analysis/route_stats.h"
#include "taxitrace/analysis/seasons.h"
#include "taxitrace/core/segment_match.h"
#include "taxitrace/core/study_config.h"
#include "taxitrace/mapmatch/match_report.h"
#include "taxitrace/model/one_way_reml.h"
#include "taxitrace/model/significance.h"
#include "taxitrace/obs/observability.h"
#include "taxitrace/stream/ingest_session.h"

namespace taxitrace {
namespace core {

/// Wall-clock cost of each pipeline stage, milliseconds, plus the
/// worker-thread count each parallel stage ran with (0 = serial).
/// Derived from the run's obs::Trace stage spans; kept as a flat
/// struct for the existing report/bench call sites.
struct StageTimings {
  double map_generation_ms = 0.0;
  double simulation_ms = 0.0;
  double cleaning_ms = 0.0;
  double selection_matching_ms = 0.0;
  double analysis_ms = 0.0;
  /// Online ingestion (stream_ingestion runs only): the fused
  /// clean + match work that replaces the cleaning and
  /// selection_matching stages, whose spans are then near-empty.
  double stream_ingest_ms = 0.0;

  int simulation_threads = 0;
  int cleaning_threads = 0;
  int selection_matching_threads = 0;

  [[nodiscard]] double TotalMs() const {
    return map_generation_ms + simulation_ms + cleaning_ms +
           selection_matching_ms + analysis_ms + stream_ingest_ms;
  }
};

/// Per-season aggregates of the transition point speeds.
struct SeasonalSpeed {
  int64_t n = 0;
  double mean_kmh = 0.0;
  /// Mean minus the all-year mean, km/h (the Section VI-A deltas).
  double delta_kmh = 0.0;
};

/// Everything the study produces.
struct StudyResults {
  StudyResults(synth::CityMap map_in, synth::WeatherModel weather_in,
               synth::PedestrianModel pedestrians_in)
      : map(std::move(map_in)),
        weather(std::move(weather_in)),
        pedestrians(std::move(pedestrians_in)) {}

  synth::CityMap map;
  synth::WeatherModel weather;
  /// The crowd-activity model the simulation drove with (the WiFi-count
  /// proxy of the paper's crowdsourcing outlook).
  synth::PedestrianModel pedestrians;
  clean::CleaningReport cleaning_report;
  int64_t raw_trips = 0;

  /// Table 3 funnel, one row per car.
  std::vector<odselect::Table3Row> table3;

  /// Post-filtered transitions with matches and records (the analysis
  /// population).
  std::vector<MatchedTransition> transitions;

  /// Grid join over all transition points (Table 5 base).
  std::vector<analysis::CellRecord> cells;
  /// Grid joins restricted to one direction (Fig. 6 uses "L-T").
  std::unordered_map<std::string, std::vector<analysis::CellRecord>>
      cells_by_direction;
  std::unordered_map<analysis::CellId, analysis::CellFeatureCounts,
                     analysis::CellIdHash>
      cell_features;

  /// The Eq. (3) random-intercept model over point speeds.
  model::OneWayRemlFit cell_model;
  /// Group index -> cell of the model fit.
  std::vector<analysis::CellId> model_cells;
  /// REML likelihood-ratio test of the cell effect ("the effect of
  /// geography on the point speeds").
  model::RandomEffectLrt geography_lrt;

  /// Analysis grid cell size used for the joins above, metres.
  double grid_cell_m = 200.0;

  /// Point-speed aggregates.
  int64_t total_point_speeds = 0;
  double overall_mean_speed_kmh = 0.0;
  SeasonalSpeed seasonal[analysis::kNumSeasons];

  /// Matching health across the analysed transitions.
  mapmatch::MatchReport match_report;

  /// Online ingestion accounting (folded over every car's session in
  /// car order), populated only on a stream_ingestion run;
  /// default-empty otherwise. Deterministic in the config seeds at any
  /// worker count, like the funnel.
  stream::IngestStats ingest_stats;

  /// Wall-clock cost of each stage of this run.
  StageTimings timings;

  /// Metrics, funnel ledger and stage spans, populated only when
  /// StudyConfig::observability.enabled; default-empty otherwise. The
  /// funnel and counters are deterministic in the config seeds; gauges,
  /// histograms of timings, and spans are observations of the run.
  obs::StudySnapshot observability;

  /// All transition records (convenience view over `transitions`).
  [[nodiscard]] std::vector<analysis::TransitionRecord> Records() const;
};

/// Runs the study.
class Pipeline {
 public:
  explicit Pipeline(StudyConfig config);

  /// Executes every stage. Deterministic in the config seeds.
  Result<StudyResults> Run() const;

  [[nodiscard]] const StudyConfig& config() const { return config_; }

 private:
  StudyConfig config_;
};

}  // namespace core
}  // namespace taxitrace

#endif  // TAXITRACE_CORE_PIPELINE_H_
