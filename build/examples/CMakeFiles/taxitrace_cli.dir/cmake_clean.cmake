file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_cli.dir/taxitrace_cli.cc.o"
  "CMakeFiles/taxitrace_cli.dir/taxitrace_cli.cc.o.d"
  "taxitrace_cli"
  "taxitrace_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
