// Polyline simplification (Ramer-Douglas-Peucker), used to thin matched
// route geometry before export.

#ifndef TAXITRACE_GEO_SIMPLIFY_H_
#define TAXITRACE_GEO_SIMPLIFY_H_

#include "taxitrace/geo/polyline.h"

namespace taxitrace {
namespace geo {

/// Ramer-Douglas-Peucker simplification: returns a polyline whose every
/// removed vertex lies within `tolerance_m` of the simplified line.
/// Endpoints are always kept.
Polyline Simplify(const Polyline& line, double tolerance_m);

}  // namespace geo
}  // namespace taxitrace

#endif  // TAXITRACE_GEO_SIMPLIFY_H_
