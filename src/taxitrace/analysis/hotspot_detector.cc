#include "taxitrace/analysis/hotspot_detector.h"

#include <algorithm>
#include <cmath>

#include "taxitrace/geo/convex_hull.h"

namespace taxitrace {
namespace analysis {

std::vector<DetectedHotspot> DetectHotspots(
    const std::vector<CellRecord>& cells,
    const HotspotDetectorOptions& options) {
  std::vector<const CellRecord*> eligible;
  std::vector<double> means;
  for (const CellRecord& cell : cells) {
    if (cell.num_points < options.min_points) continue;
    eligible.push_back(&cell);
    means.push_back(cell.mean_speed_kmh);
  }
  std::vector<DetectedHotspot> out;
  if (eligible.size() < 3) return out;
  const double mean = Mean(means);
  const double sd = std::sqrt(Variance(means));
  if (sd <= 0.0) return out;

  for (const CellRecord* cell : eligible) {
    const double z = (cell->mean_speed_kmh - mean) / sd;
    if (z > -options.slow_z_threshold) continue;
    DetectedHotspot hit;
    hit.cell = *cell;
    hit.z_score = z;
    hit.explained_by_features = cell->features.traffic_lights > 0 ||
                                cell->features.bus_stops > 0;
    out.push_back(hit);
  }
  std::sort(out.begin(), out.end(),
            [](const DetectedHotspot& a, const DetectedHotspot& b) {
              return a.z_score < b.z_score;
            });
  return out;
}

std::vector<DetectedHotspot> DetectCrowdCandidates(
    const std::vector<CellRecord>& cells,
    const HotspotDetectorOptions& options) {
  std::vector<DetectedHotspot> all = DetectHotspots(cells, options);
  std::vector<DetectedHotspot> out;
  for (DetectedHotspot& hit : all) {
    if (!hit.explained_by_features) out.push_back(std::move(hit));
  }
  return out;
}

geo::Polygon HotspotRegionOutline(
    const std::vector<DetectedHotspot>& hotspots, const Grid& grid) {
  std::vector<geo::EnPoint> corners;
  corners.reserve(hotspots.size() * 4);
  for (const DetectedHotspot& hit : hotspots) {
    const geo::Bbox b = grid.CellBounds(hit.cell.cell);
    corners.push_back(geo::EnPoint{b.min_x, b.min_y});
    corners.push_back(geo::EnPoint{b.max_x, b.min_y});
    corners.push_back(geo::EnPoint{b.max_x, b.max_y});
    corners.push_back(geo::EnPoint{b.min_x, b.max_y});
  }
  return geo::ConvexHull(std::move(corners));
}

}  // namespace analysis
}  // namespace taxitrace
