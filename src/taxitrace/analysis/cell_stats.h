// Cell-level analysis: joining per-cell average speeds with static map
// features — Table 5 and the Fig. 6 cell map.

#ifndef TAXITRACE_ANALYSIS_CELL_STATS_H_
#define TAXITRACE_ANALYSIS_CELL_STATS_H_

#include <functional>
#include <vector>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/analysis/summary_stats.h"

namespace taxitrace {
namespace analysis {

/// One cell with measurements: its average point speed joined with its
/// static feature counts.
struct CellRecord {
  CellId cell;
  geo::EnPoint center;
  int64_t num_points = 0;
  double mean_speed_kmh = 0.0;
  double speed_variance = 0.0;
  CellFeatureCounts features;
};

/// Joins a speed accumulator with cell feature counts. Cells without
/// measurement points are excluded (as in the paper's regression).
std::vector<CellRecord> BuildCellRecords(
    const CellSpeedAccumulator& speeds,
    const std::unordered_map<CellId, CellFeatureCounts, CellIdHash>&
        features);

/// One stratum column of Table 5: the distribution of per-cell average
/// speeds over the cells matching a predicate.
struct CellStratumStats {
  int64_t num_cells = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double variance = 0.0;
};

/// Summarises the mean speeds of cells matching `predicate`.
CellStratumStats SummarizeCells(
    const std::vector<CellRecord>& records,
    const std::function<bool(const CellRecord&)>& predicate);

/// The four strata of Table 5.
struct Table5 {
  CellStratumStats no_lights;              ///< traffic lights == 0
  CellStratumStats no_lights_no_bus;       ///< lights == 0 and bus == 0
  CellStratumStats lights_and_bus;         ///< lights > 0 and bus > 0
  CellStratumStats lights;                 ///< lights > 0
};

/// Builds Table 5 from cell records.
Table5 BuildTable5(const std::vector<CellRecord>& records);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_CELL_STATS_H_
