// Declarations backing the idiom corpus: Status-returning functions
// are collected from headers in pass 1, so ignored-status can fire on
// the .cc call sites.

#pragma once

namespace taxitrace {

Status WriteThing(int x);
Status ReadThing(int x);

}  // namespace taxitrace
