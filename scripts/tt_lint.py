#!/usr/bin/env python3
"""Repo-idiom linter for the taxitrace tree.

Greps src/taxitrace/ for patterns the codebase has banned:

  bare-assert       assert( in library code. Asserts compile away in
                    Release; invariants must use TT_CHECK / TT_DCHECK
                    from taxitrace/common/check.h.
  result-ok-status  Constructing a Result from Status::OK(). A Result
                    either holds a value or a *non-OK* status; this is
                    a TT_CHECK abort at runtime — catch it in review.
  ignored-status    Calling a Status-returning function as a bare
                    statement. [[nodiscard]] catches this at compile
                    time for by-value returns; the linter also covers
                    code that is not compiled on every platform.
  include-path      #include "..." in src/ that does not use the
                    canonical taxitrace/... path form.
  raw-thread        std::thread / std::jthread / std::async outside
                    taxitrace/common/executor.*. All parallelism goes
                    through the Executor so the determinism contract
                    (ordered merges, derived RNG streams) holds.
  adhoc-timing      std::chrono outside taxitrace/common/executor.* and
                    taxitrace/obs/. All wall-clock measurement goes
                    through obs::StageSpan (or the executor's queue
                    accounting) so stage costs land in one uniform,
                    dumpable record instead of scattered stopwatches.
  linear-reset      Resetting whole-graph search state (dist / prev /
                    seen / stamp arrays) with .assign or std::fill
                    outside a scratch type. Per-search O(|V|) clears are
                    exactly what the generation-stamped scratch types
                    (roadnet/search_scratch.h, the spatial index's
                    QueryScratch) exist to avoid; search code must reuse
                    them so a search costs O(visited), not O(|V|).
  unregistered-test A tests/*.cc file that tests/CMakeLists.txt never
                    references: the test compiles on nobody's machine
                    and silently never runs. (Repo-level rule; not
                    suppressable on a line.)

A finding can be suppressed on its line with: // tt-lint: allow(<rule>)

Exit status: 0 when clean, 1 when findings were printed, 2 on usage
errors. Runs as a ctest entry (tt_lint) and as a CI step.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SRC_SUFFIXES = {".h", ".cc"}

ALLOW_RE = re.compile(r"//\s*tt-lint:\s*allow\(([a-z-]+)\)")

BARE_ASSERT_RE = re.compile(r"(?<![_\w])assert\s*\(")
RAW_THREAD_RE = re.compile(r"std::(thread|jthread|async)\b")
ADHOC_TIMING_RE = re.compile(r"std::chrono\b")
RESULT_OK_RE = re.compile(r"Result<[^;]*Status::OK\(\)")
# Whole-array clears of search-state vectors: dist_.assign(n, inf),
# std::fill(seen.begin(), ...). Growth-only resize() is fine — the
# scratch types use it — and lines that go through a scratch object
# (or live in a *scratch* file) are the sanctioned implementation.
LINEAR_RESET_RE = re.compile(
    r"\b(?:dist|prev(?:_edge|_vertex)?|visited|settled|seen(?:_stamp)?|stamp)"
    r"_?\s*(?:\.|->)\s*assign\s*\(|"
    r"std::fill\s*\(\s*(?:\w+\s*(?:\.|->)\s*)*"
    r"(?:dist|prev|visited|settled|seen|stamp)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# Declarations like:  Status Foo(...  /  [[nodiscard]] Status Foo(...
STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+)?Status\s+(\w+)\s*\(")
# Call statement:  optional receiver chain, then Name(...);  with no
# assignment, return, or macro wrapping on the line.
CALL_STMT_TEMPLATE = r"^\s*(?:[\w\]\)]+(?:\.|->|::))*{name}\s*\("


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string literals so the
    pattern rules do not fire on prose or log messages."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"//.*", "", line)
    return line


def collect_status_functions(files: list[Path]) -> set[str]:
    """Names of functions declared to return Status in src/ headers."""
    names: set[str] = set()
    for path in files:
        if path.suffix != ".h":
            continue
        # Status's own factory functions (OK, NotFound, ...) are value
        # producers, not fallible calls.
        if path.name == "status.h" and path.parent.name == "common":
            continue
        for line in path.read_text(encoding="utf-8").splitlines():
            m = STATUS_DECL_RE.match(line)
            if m:
                names.add(m.group(1))
    names -= {"OK", "Status"}
    return names


def lint_file(path: Path, status_fns: set[str], repo_root: Path) -> list[str]:
    findings = []
    rel = path.relative_to(repo_root)
    in_block_comment = False
    prev_code_line = ""
    is_check_header = rel.as_posix() == "src/taxitrace/common/check.h"
    is_executor = rel.as_posix() in (
        "src/taxitrace/common/executor.h",
        "src/taxitrace/common/executor.cc",
    )
    # Timing is sanctioned only where it is the module's job: the
    # executor's queue accounting and the obs/ span layer.
    timing_exempt = is_executor or \
        rel.as_posix().startswith("src/taxitrace/obs/")
    for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        allowed = set(ALLOW_RE.findall(raw))

        # Track /* ... */ blocks coarsely (the tree uses // comments).
        if in_block_comment:
            if "*/" in raw:
                in_block_comment = False
            continue
        # The include rule needs the quoted path, so it runs on the raw
        # line before string literals are stripped.
        include_m = INCLUDE_RE.match(raw)
        line = strip_comments_and_strings(raw)
        if "/*" in line and "*/" not in line:
            in_block_comment = True
            line = line.split("/*")[0]

        def report(rule: str, message: str) -> None:
            if rule not in allowed:
                findings.append(f"{rel}:{lineno}: [{rule}] {message}")

        if (BARE_ASSERT_RE.search(line) and "static_assert" not in line
                and not is_check_header):
            report("bare-assert",
                   "bare assert() in library code; use TT_CHECK or "
                   "TT_DCHECK (taxitrace/common/check.h)")

        if RAW_THREAD_RE.search(line) and not is_executor:
            report("raw-thread",
                   "raw std::thread/std::async; use the Executor "
                   "(taxitrace/common/executor.h) so parallel stages "
                   "stay deterministic")

        if ADHOC_TIMING_RE.search(line) and not timing_exempt:
            report("adhoc-timing",
                   "ad-hoc std::chrono timing; use obs::StageSpan "
                   "(taxitrace/obs/stage_span.h) so the cost shows up "
                   "in the stage trace")

        if (LINEAR_RESET_RE.search(line) and "scratch" not in path.name
                and "scratch" not in line):
            report("linear-reset",
                   "O(|V|) per-search reset of search state; keep it in "
                   "a generation-stamped scratch "
                   "(taxitrace/roadnet/search_scratch.h) so each search "
                   "costs O(visited)")

        if RESULT_OK_RE.search(line):
            report("result-ok-status",
                   "Result constructed from Status::OK(); a Result holds "
                   "a value or a non-OK status")

        if include_m and not include_m.group(1).startswith("taxitrace/"):
            report("include-path",
                   f'#include "{include_m.group(1)}" does not use the '
                   'taxitrace/... path form')

        stripped = line.strip()
        # A line continuing a previous expression (assignment, argument
        # list, ternary, ...) is not a bare statement.
        is_continuation = bool(prev_code_line) and \
            prev_code_line[-1] in "=(,?:+-|&<>"
        if stripped.endswith(";") and "=" not in stripped \
                and not is_continuation \
                and not stripped.startswith("return") \
                and "TT_CHECK_OK" not in stripped \
                and "RETURN_IF_ERROR" not in stripped \
                and "(void)" not in stripped:
            for name in status_fns:
                if re.match(CALL_STMT_TEMPLATE.format(name=re.escape(name)),
                            stripped):
                    report("ignored-status",
                           f"return value of Status-returning {name}() "
                           "is ignored")
                    break
        if stripped:
            prev_code_line = stripped

    return findings


def check_test_registration(repo_root: Path) -> list[str]:
    """Every tests/*.cc must be referenced by tests/CMakeLists.txt."""
    tests_dir = repo_root / "tests"
    cmake = tests_dir / "CMakeLists.txt"
    if not cmake.is_file():
        return []
    cmake_text = cmake.read_text(encoding="utf-8")
    findings = []
    for source in sorted(tests_dir.glob("*.cc")):
        if source.name not in cmake_text:
            findings.append(
                f"tests/{source.name}: [unregistered-test] test source is "
                "not referenced by tests/CMakeLists.txt, so it never "
                "builds or runs")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/taxitrace under the repo root)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: inferred)")
    args = parser.parse_args()

    repo_root = args.root.resolve()
    targets = [Path(p).resolve() for p in args.paths] or \
        [repo_root / "src" / "taxitrace"]

    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(p for p in sorted(target.rglob("*"))
                         if p.suffix in SRC_SUFFIXES)
        elif target.is_file():
            files.append(target)
        else:
            print(f"tt_lint: no such path: {target}", file=sys.stderr)
            return 2

    status_fns = collect_status_functions(files)

    findings: list[str] = []
    for path in files:
        findings.extend(lint_file(path, status_fns, repo_root))
    findings.extend(check_test_registration(repo_root))

    for finding in findings:
        print(finding)
    if findings:
        print(f"tt_lint: {len(findings)} finding(s) in {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"tt_lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
