#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "taxitrace/clean/order_repair.h"
#include "taxitrace/common/executor.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/roadnet/connectivity.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/driver_model.h"
#include "taxitrace/synth/fleet_simulator.h"
#include "taxitrace/synth/sensor_model.h"
#include "taxitrace/synth/weather_model.h"
#include "taxitrace/trace/time_util.h"
#include "taxitrace/trace/trip_sink.h"

namespace taxitrace {
namespace synth {
namespace {

// Shared generated map: generation is deterministic, so one instance
// serves all tests.
const CityMap& TestMap() {
  static const CityMap* map = [] {
    auto result = GenerateCityMap();
    return new CityMap(std::move(result).value());
  }();
  return *map;
}

// --- Weather -----------------------------------------------------------------

TEST(WeatherModelTest, Deterministic) {
  const WeatherModel a(5, 365), b(5, 365);
  for (int d = 0; d < 365; d += 30) {
    EXPECT_EQ(a.TemperatureAt(d * trace::kSecondsPerDay),
              b.TemperatureAt(d * trace::kSecondsPerDay));
  }
}

TEST(WeatherModelTest, WinterColderThanSummer) {
  const WeatherModel w(7, 365);
  // Mean over January (study days ~92..122) vs July (~273..303).
  double january = 0.0, july = 0.0;
  for (int d = 92; d < 122; ++d) {
    january += w.daily_mean_celsius()[static_cast<size_t>(d)];
  }
  for (int d = 273; d < 303; ++d) {
    july += w.daily_mean_celsius()[static_cast<size_t>(d)];
  }
  EXPECT_LT(january / 30.0, -3.0);
  EXPECT_GT(july / 30.0, 10.0);
}

TEST(WeatherModelTest, DiurnalCycleWarmestAfternoon) {
  const WeatherModel w(9, 365);
  const double day = 200.0 * trace::kSecondsPerDay;
  EXPECT_GT(w.TemperatureAt(day + 15.0 * 3600),
            w.TemperatureAt(day + 4.0 * 3600));
}

TEST(WeatherModelTest, SlipperyOnlyWhenFreezing) {
  const WeatherModel w(11, 365);
  int slippery_warm_days = 0;
  for (int d = 0; d < 365; ++d) {
    const double noon = d * trace::kSecondsPerDay + 12 * 3600.0;
    if (w.SlipperyAt(noon) &&
        w.daily_mean_celsius()[static_cast<size_t>(d)] >= 0.0) {
      ++slippery_warm_days;
    }
  }
  EXPECT_EQ(slippery_warm_days, 0);
}

TEST(TemperatureClassTest, Boundaries) {
  EXPECT_EQ(ClassifyTemperature(-20), TemperatureClass::kBelowMinus15);
  EXPECT_EQ(ClassifyTemperature(-15), TemperatureClass::kBelowMinus15);
  EXPECT_EQ(ClassifyTemperature(-10), TemperatureClass::kMinus15ToMinus5);
  EXPECT_EQ(ClassifyTemperature(-1), TemperatureClass::kMinus5To0);
  EXPECT_EQ(ClassifyTemperature(0), TemperatureClass::kMinus5To0);
  EXPECT_EQ(ClassifyTemperature(3), TemperatureClass::k0To5);
  EXPECT_EQ(ClassifyTemperature(10), TemperatureClass::k5To15);
  EXPECT_EQ(ClassifyTemperature(25), TemperatureClass::kAbove15);
}

TEST(TemperatureClassTest, LabelsDistinct) {
  std::set<std::string_view> labels;
  for (int c = 0; c < kNumTemperatureClasses; ++c) {
    labels.insert(TemperatureClassLabel(static_cast<TemperatureClass>(c)));
  }
  EXPECT_EQ(labels.size(), static_cast<size_t>(kNumTemperatureClasses));
}

// --- City map -----------------------------------------------------------------

TEST(CityMapTest, NetworkValidates) {
  EXPECT_TRUE(TestMap().network.Validate().ok());
}

TEST(CityMapTest, FeatureCensusMatchesPaper) {
  const roadnet::RoadNetwork& net = TestMap().network;
  EXPECT_EQ(net.CountFeatures(roadnet::FeatureType::kTrafficLight), 67);
  EXPECT_EQ(net.CountFeatures(roadnet::FeatureType::kBusStop), 48);
  EXPECT_EQ(net.CountFeatures(roadnet::FeatureType::kPedestrianCrossing),
            293);
  int junctions = 0;
  net.ForEachVertex([&](const roadnet::Vertex& v) {
    if (v.is_junction) ++junctions;
  });
  // Paper: 271 non-pedestrian crossings; tolerance for grid randomness.
  EXPECT_GT(junctions, 180);
  EXPECT_LT(junctions, 360);
}

TEST(CityMapTest, HasThreeNamedGates) {
  const CityMap& map = TestMap();
  ASSERT_EQ(map.gates.size(), 3u);
  EXPECT_EQ(map.gates[0].name, "T");
  EXPECT_EQ(map.gates[1].name, "S");
  EXPECT_EQ(map.gates[2].name, "L");
  EXPECT_TRUE(map.FindGate("S").ok());
  EXPECT_TRUE(map.FindGate("X").status().IsNotFound());
}

TEST(CityMapTest, GateTerminalsAreDeadEndsAtGeometryStart) {
  const CityMap& map = TestMap();
  for (const GateRoad& gate : map.gates) {
    const roadnet::Vertex& term =
        map.network.vertex(gate.terminal_vertex);
    EXPECT_FALSE(term.is_junction);
    EXPECT_EQ(map.network.IncidentEdges(term.id).size(), 1u);
    EXPECT_LT(geo::Distance(term.position, gate.geometry.front()), 5.0);
  }
}

TEST(CityMapTest, GatesPointAtTheExpectedCompassSides) {
  const CityMap& map = TestMap();
  EXPECT_GT(map.FindGate("T").value()->geometry.front().y, 900.0);
  EXPECT_LT(map.FindGate("S").value()->geometry.front().y, -900.0);
  EXPECT_GT(map.FindGate("L").value()->geometry.front().x, 900.0);
}

TEST(CityMapTest, GatesMutuallyReachable) {
  const CityMap& map = TestMap();
  const roadnet::Router router(&map.network);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      const auto path = router.ShortestPath(
          map.gates[static_cast<size_t>(a)].terminal_vertex,
          map.gates[static_cast<size_t>(b)].terminal_vertex);
      ASSERT_TRUE(path.ok()) << map.gates[static_cast<size_t>(a)].name
                             << "->"
                             << map.gates[static_cast<size_t>(b)].name;
      EXPECT_GT(path->length_m, 1500.0);
      EXPECT_LT(path->length_m, 4500.0);
    }
  }
}

TEST(CityMapTest, ContainsOneWayEdges) {
  int one_way = 0;
  TestMap().network.ForEachEdge([&](const roadnet::Edge& e) {
    if (e.direction != roadnet::TravelDirection::kBoth) ++one_way;
  });
  EXPECT_GT(one_way, 4);
}

TEST(CityMapTest, ContainsDeadEndAccessRoads) {
  int access = 0;
  TestMap().network.ForEachEdge([&](const roadnet::Edge& e) {
    if (e.functional_class == roadnet::FunctionalClass::kAccessRoad) {
      ++access;
    }
  });
  EXPECT_GE(access, 10);
}

TEST(CityMapTest, ContainsMultiElementEdges) {
  EXPECT_GT(TestMap().preparation_stats.num_multi_element_edges, 50);
}

TEST(CityMapTest, HotspotsInsideCentralArea) {
  const CityMap& map = TestMap();
  ASSERT_FALSE(map.hotspots.empty());
  for (const Hotspot& h : map.hotspots) {
    EXPECT_TRUE(map.central_area.Contains(h.center));
    EXPECT_GT(h.intensity, 0.0);
    EXPECT_LE(h.intensity, 1.0);
  }
}

TEST(CityMapTest, DeterministicInSeed) {
  CityMapOptions options;
  options.seed = 42;
  const CityMap a = GenerateCityMap(options).value();
  const CityMap b = GenerateCityMap(options).value();
  EXPECT_EQ(a.network.num_edges(), b.network.num_edges());
  EXPECT_EQ(a.network.num_vertices(), b.network.num_vertices());
  ASSERT_FALSE(a.network.num_edges() == 0);
  EXPECT_EQ(a.network.edge(a.network.EdgeIdAt(7)).element_ids,
            b.network.edge(b.network.EdgeIdAt(7)).element_ids);
}

TEST(CityMapTest, DifferentSeedsDiffer) {
  CityMapOptions a_options, b_options;
  a_options.seed = 1;
  b_options.seed = 2;
  const CityMap a = GenerateCityMap(a_options).value();
  const CityMap b = GenerateCityMap(b_options).value();
  EXPECT_NE(a.network.num_edges(), b.network.num_edges());
}

TEST(CityMapTest, RejectsBadOptions) {
  CityMapOptions options;
  options.extent_m = -5;
  EXPECT_FALSE(GenerateCityMap(options).ok());
  options = CityMapOptions();
  options.extent_m = 100;  // far too small for a grid
  EXPECT_FALSE(GenerateCityMap(options).ok());
}

TEST(CityMapTest, SpeedLimitsPlausible) {
  TestMap().network.ForEachEdge([&](const roadnet::Edge& e) {
    EXPECT_GE(e.speed_limit_kmh, 30.0);
    EXPECT_LE(e.speed_limit_kmh, 60.0);
  });
}


TEST(CityMapTest, RiverFunnelsThroughBridges) {
  // Count edges crossing the river band: only the bridges remain.
  const CityMapOptions opt;
  int crossings = 0;
  TestMap().network.ForEachEdge([&](const roadnet::Edge& e) {
    const double y0 = e.geometry.front().y;
    const double y1 = e.geometry.back().y;
    if ((y0 - opt.river_y_m) * (y1 - opt.river_y_m) < 0.0 &&
        std::abs(y1 - y0) > 50.0) {
      ++crossings;
    }
  });
  EXPECT_GE(crossings, 2);  // bridges exist (T corridor + others)
  EXPECT_LE(crossings, 6);  // but the bank is not a grid
  // Both banks stay mutually drivable.
  const roadnet::Router router(&TestMap().network);
  const auto north = TestMap().FindGate("T").value()->terminal_vertex;
  const auto south = TestMap().FindGate("S").value()->terminal_vertex;
  EXPECT_TRUE(router.ShortestPath(north, south).ok());
}

TEST(CityMapTest, RiverCanBeDisabled) {
  CityMapOptions options;
  options.include_river = false;
  options.seed = 5;
  const CityMap map = GenerateCityMap(options).value();
  int crossings = 0;
  map.network.ForEachEdge([&](const roadnet::Edge& e) {
    const double y0 = e.geometry.front().y;
    const double y1 = e.geometry.back().y;
    if ((y0 - options.river_y_m) * (y1 - options.river_y_m) < 0.0 &&
        std::abs(y1 - y0) > 50.0) {
      ++crossings;
    }
  });
  EXPECT_GT(crossings, 8);  // a full grid of crossings
}

// --- Driver model -----------------------------------------------------------

class DriverModelTest : public testing::Test {
 protected:
  DriverModelTest()
      : weather_(3, 365),
        driver_(&TestMap(), &weather_),
        router_(&TestMap().network) {}

  roadnet::Path GatePath(const std::string& from,
                         const std::string& to) const {
    return router_
        .ShortestPath(TestMap().FindGate(from).value()->terminal_vertex,
                      TestMap().FindGate(to).value()->terminal_vertex)
        .value();
  }

  WeatherModel weather_;
  DriverModel driver_;
  roadnet::Router router_;
};

TEST_F(DriverModelTest, ProducesMonotoneTimeline) {
  Rng rng(1);
  const auto samples =
      driver_.Drive(GatePath("S", "T"), 1000.0, 1.0, &rng);
  ASSERT_GT(samples.size(), 50u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].t_s, samples[i - 1].t_s);
  }
  EXPECT_GE(samples.front().t_s, 1000.0);
}

TEST_F(DriverModelTest, SpeedsWithinPhysicalBounds) {
  Rng rng(2);
  const auto samples =
      driver_.Drive(GatePath("T", "L"), 5000.0, 1.0, &rng);
  for (const DriveSample& s : samples) {
    EXPECT_GE(s.speed_kmh, 0.0);
    EXPECT_LE(s.speed_kmh, 75.0);
    EXPECT_GE(s.fuel_delta_ml, 0.0);
  }
}

TEST_F(DriverModelTest, ReachesTheDestination) {
  Rng rng(3);
  const roadnet::Path path = GatePath("S", "L");
  const auto samples = driver_.Drive(path, 0.0, 1.0, &rng);
  ASSERT_FALSE(samples.empty());
  EXPECT_LT(geo::Distance(samples.back().position, path.geometry.back()),
            10.0);
}

TEST_F(DriverModelTest, StopsOccurOnLitRoutes) {
  Rng rng(4);
  int stopped = 0;
  for (int trial = 0; trial < 5; ++trial) {
    for (const DriveSample& s :
         driver_.Drive(GatePath("S", "T"), trial * 7200.0, 1.0, &rng)) {
      if (s.speed_kmh < 1.0) ++stopped;
    }
  }
  EXPECT_GT(stopped, 20);  // red lights / crossings force waits
}

TEST_F(DriverModelTest, FuelScalesWithDistance) {
  Rng rng(5);
  double fuel = 0.0;
  const auto samples = driver_.Drive(GatePath("S", "T"), 0.0, 1.0, &rng);
  for (const DriveSample& s : samples) fuel += s.fuel_delta_ml;
  // A ~2.5 km urban trip burns on the order of 150-450 ml.
  EXPECT_GT(fuel, 100.0);
  EXPECT_LT(fuel, 600.0);
}

TEST_F(DriverModelTest, SeasonFactorOrdering) {
  // January < April < July < October (paper Section VI-A ordering).
  const double january = 100.0 * trace::kSecondsPerDay;   // Jan 2013
  const double april = 190.0 * trace::kSecondsPerDay;     // Apr 2013
  const double july = 280.0 * trace::kSecondsPerDay;      // Jul 2013
  const double october = 10.0 * trace::kSecondsPerDay;    // Oct 2012
  EXPECT_LT(DriverModel::SeasonFactor(january),
            DriverModel::SeasonFactor(april));
  EXPECT_LT(DriverModel::SeasonFactor(april),
            DriverModel::SeasonFactor(july));
  EXPECT_LT(DriverModel::SeasonFactor(july),
            DriverModel::SeasonFactor(october));
}

TEST_F(DriverModelTest, HotspotSlowsTraffic) {
  const Hotspot& h = TestMap().hotspots.front();
  EXPECT_LT(driver_.HotspotFactor(h.center), 1.0);
  EXPECT_DOUBLE_EQ(
      driver_.HotspotFactor(geo::EnPoint{h.center.x + h.radius_m + 50,
                                         h.center.y}),
      1.0);
  EXPECT_GT(driver_.HotspotIntensity(h.center), 0.5 * h.intensity);
}

TEST_F(DriverModelTest, IdleProducesStationarySamples) {
  const auto samples = driver_.Idle(geo::EnPoint{10, 20}, 500.0, 120.0);
  ASSERT_GE(samples.size(), 10u);
  for (const DriveSample& s : samples) {
    EXPECT_EQ(s.speed_kmh, 0.0);
    EXPECT_EQ(s.position, (geo::EnPoint{10, 20}));
    EXPECT_GT(s.fuel_delta_ml, 0.0);
  }
}

TEST_F(DriverModelTest, EmptyPathYieldsNoSamples) {
  Rng rng(6);
  EXPECT_TRUE(driver_.Drive(roadnet::Path{}, 0.0, 1.0, &rng).empty());
}

TEST_F(DriverModelTest, SlowerDriverFactorTakesLonger) {
  Rng rng_a(7), rng_b(7);  // identical randomness
  const roadnet::Path path = GatePath("T", "S");
  const auto fast = driver_.Drive(path, 0.0, 1.1, &rng_a);
  const auto slow = driver_.Drive(path, 0.0, 0.7, &rng_b);
  ASSERT_FALSE(fast.empty());
  ASSERT_FALSE(slow.empty());
  EXPECT_LT(fast.back().t_s, slow.back().t_s);
}

// --- Sensor model ------------------------------------------------------------

class SensorModelTest : public testing::Test {
 protected:
  SensorModelTest()
      : weather_(3, 365),
        driver_(&TestMap(), &weather_),
        router_(&TestMap().network) {}

  std::vector<DriveSample> Samples(uint64_t seed) {
    Rng rng(seed);
    const roadnet::Path path =
        router_
            .ShortestPath(TestMap().gates[0].terminal_vertex,
                          TestMap().gates[1].terminal_vertex)
            .value();
    return driver_.Drive(path, 0.0, 1.0, &rng);
  }

  WeatherModel weather_;
  DriverModel driver_;
  roadnet::Router router_;
};

TEST_F(SensorModelTest, EmitsEventDrivenPoints) {
  SensorOptions options;
  options.timestamp_glitch_prob = 0.0;
  options.id_glitch_prob = 0.0;
  options.drop_prob = 0.0;
  options.dup_prob = 0.0;
  options.outlier_prob = 0.0;
  const SensorModel sensor(options);
  Rng rng(1);
  int64_t next_id = 1;
  const auto samples = Samples(11);
  const auto points = sensor.Observe(samples, 7, &next_id,
                                     TestMap().network.projection(), &rng);
  ASSERT_GT(points.size(), 10u);
  EXPECT_LT(points.size(), samples.size());  // event-driven, not 1 Hz
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].point_id, points[i - 1].point_id);
    EXPECT_GE(points[i].timestamp_s, points[i - 1].timestamp_s);
  }
  for (const auto& p : points) EXPECT_EQ(p.trip_id, 7);
  EXPECT_EQ(next_id, static_cast<int64_t>(points.size()) + 1);
}

TEST_F(SensorModelTest, FuelIsConserved) {
  SensorOptions options;
  options.drop_prob = 0.0;
  options.dup_prob = 0.0;
  options.timestamp_glitch_prob = 0.0;
  options.id_glitch_prob = 0.0;
  const SensorModel sensor(options);
  Rng rng(2);
  int64_t next_id = 1;
  const auto samples = Samples(12);
  double drive_fuel = 0.0;
  for (const DriveSample& s : samples) drive_fuel += s.fuel_delta_ml;
  const auto points = sensor.Observe(samples, 1, &next_id,
                                     TestMap().network.projection(), &rng);
  double point_fuel = 0.0;
  for (const auto& p : points) point_fuel += p.fuel_delta_ml;
  EXPECT_NEAR(point_fuel, drive_fuel, 1e-6);
}

TEST_F(SensorModelTest, GlitchesScrambleExactlyOneField) {
  SensorOptions options;
  options.timestamp_glitch_prob = 1.0;  // force a timestamp glitch
  options.drop_prob = 0.0;
  options.dup_prob = 0.0;
  const SensorModel sensor(options);
  Rng rng(3);
  int64_t next_id = 1;
  const auto points = sensor.Observe(Samples(13), 1, &next_id,
                                     TestMap().network.projection(), &rng);
  bool id_monotone = true, ts_monotone = true;
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].point_id < points[i - 1].point_id) id_monotone = false;
    if (points[i].timestamp_s < points[i - 1].timestamp_s) {
      ts_monotone = false;
    }
  }
  EXPECT_TRUE(id_monotone);
  EXPECT_FALSE(ts_monotone);
}

TEST_F(SensorModelTest, DropsReduceAndDupsIncreasePoints) {
  SensorOptions heavy;
  heavy.drop_prob = 0.5;
  heavy.dup_prob = 0.0;
  heavy.timestamp_glitch_prob = 0.0;
  heavy.id_glitch_prob = 0.0;
  SensorOptions none = heavy;
  none.drop_prob = 0.0;
  Rng rng_a(4), rng_b(4);
  int64_t id_a = 1, id_b = 1;
  const auto samples = Samples(14);
  const auto dropped =
      SensorModel(heavy).Observe(samples, 1, &id_a,
                                 TestMap().network.projection(), &rng_a);
  const auto kept =
      SensorModel(none).Observe(samples, 1, &id_b,
                                TestMap().network.projection(), &rng_b);
  EXPECT_LT(dropped.size(), kept.size());
}

TEST_F(SensorModelTest, OrderRepairRecoversGlitchedTrips) {
  // End-to-end property: whatever the sensor scrambles, the cleaning
  // stage's length criterion restores a monotone sequence.
  SensorOptions options;
  options.timestamp_glitch_prob = 0.5;
  options.id_glitch_prob = 0.5;
  const SensorModel sensor(options);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    int64_t next_id = 1;
    std::vector<trace::RoutePoint> points =
        sensor.Observe(Samples(20 + static_cast<uint64_t>(trial)), 1,
                       &next_id, TestMap().network.projection(), &rng);
    clean::RepairPointOrder(&points);
    for (size_t i = 1; i < points.size(); ++i) {
      EXPECT_LE(points[i - 1].timestamp_s, points[i].timestamp_s);
      EXPECT_LE(points[i - 1].point_id, points[i].point_id);
    }
  }
}

// --- Fleet simulator -----------------------------------------------------------

TEST(FleetSimulatorTest, SmallRunProducesPlausibleTraces) {
  const WeatherModel weather(3, 7);
  FleetOptions options;
  options.num_cars = 2;
  options.num_days = 7;
  const FleetSimulator fleet(&TestMap(), &weather, options);
  const FleetResult result = fleet.Run().value();
  EXPECT_GT(result.store.NumTrips(), 20u);
  EXPECT_GT(result.num_customer_drives, 20);
  EXPECT_EQ(result.store.CarIds(), (std::vector<int>{1, 2}));
  for (const trace::Trip& trip : result.store.trips()) {
    EXPECT_GE(trip.points.size(), 2u);
    EXPECT_GT(trip.total_distance_m, 0.0);
  }
}

TEST(FleetSimulatorTest, Deterministic) {
  const WeatherModel weather(3, 3);
  FleetOptions options;
  options.num_cars = 1;
  options.num_days = 3;
  const FleetSimulator fleet(&TestMap(), &weather, options);
  const FleetResult a = fleet.Run().value();
  const FleetResult b = fleet.Run().value();
  ASSERT_EQ(a.store.NumTrips(), b.store.NumTrips());
  EXPECT_EQ(a.store.NumPoints(), b.store.NumPoints());
  EXPECT_EQ(a.store.trips()[0].points[1].timestamp_s,
            b.store.trips()[0].points[1].timestamp_s);
}

TEST(FleetSimulatorTest, RejectsBadOptions) {
  const WeatherModel weather(3, 3);
  FleetOptions options;
  options.num_cars = 0;
  EXPECT_FALSE(FleetSimulator(&TestMap(), &weather, options).Run().ok());
}

TEST(FleetSimulatorTest, TripIdsUniqueAndPointIdsPerCarMonotone) {
  const WeatherModel weather(3, 4);
  FleetOptions options;
  options.num_cars = 2;
  options.num_days = 4;
  // Disable transport glitches so device order survives verbatim.
  options.sensor.timestamp_glitch_prob = 0.0;
  options.sensor.id_glitch_prob = 0.0;
  options.sensor.dup_prob = 0.0;
  const FleetSimulator fleet(&TestMap(), &weather, options);
  const FleetResult result = fleet.Run().value();
  std::set<int64_t> trip_ids;
  std::map<int, int64_t> last_id_per_car;
  for (const trace::Trip& trip : result.store.trips()) {
    EXPECT_TRUE(trip_ids.insert(trip.trip_id).second);
    for (const trace::RoutePoint& p : trip.points) {
      EXPECT_GT(p.point_id, last_id_per_car[trip.car_id]);
      last_id_per_car[trip.car_id] = p.point_id;
    }
  }
}

// Regression: a (car, day) shard that simulates zero trips must still
// advance the streaming reorder buffer's release index. With a
// near-idle fleet most shards are empty; an 8-worker run has to drain
// every shard (not deadlock or stall on an empty one) and hand the
// sink exactly the serial trip sequence.
TEST(FleetSimulatorTest, EmptyShardsStillAdvanceStreamingReleaseOrder) {
  const WeatherModel weather(3, 10);
  FleetOptions options;
  options.num_cars = 3;
  options.num_days = 10;
  // Near-idle: with the activity floor off, most car-days draw zero
  // customers and their shards emit no trips at all.
  options.mean_customers_per_day = 0.15;
  options.min_customers_per_day = 0;
  const FleetSimulator fleet(&TestMap(), &weather, options);

  class CollectSink final : public trace::TripSink {
   public:
    Status Consume(trace::Trip trip) override {
      trips.push_back(std::move(trip));
      return Status::OK();
    }
    std::vector<trace::Trip> trips;
  };

  const Executor serial(0);
  CollectSink serial_sink;
  const auto serial_stats = fleet.Run(&serial, &serial_sink);
  ASSERT_TRUE(serial_stats.ok()) << serial_stats.status().ToString();

  // The premise of the regression: some shards really were empty.
  ASSERT_LT(serial_stats->trips_simulated,
            static_cast<int64_t>(options.num_cars) * options.num_days);
  ASSERT_GT(serial_stats->trips_simulated, 0);

  const Executor parallel(8);
  CollectSink parallel_sink;
  const auto parallel_stats = fleet.Run(&parallel, &parallel_sink);
  ASSERT_TRUE(parallel_stats.ok()) << parallel_stats.status().ToString();

  EXPECT_EQ(parallel_stats->trips_simulated, serial_stats->trips_simulated);
  EXPECT_EQ(parallel_stats->points_simulated, serial_stats->points_simulated);
  ASSERT_EQ(parallel_sink.trips.size(), serial_sink.trips.size());
  for (size_t i = 0; i < serial_sink.trips.size(); ++i) {
    EXPECT_EQ(parallel_sink.trips[i].trip_id, serial_sink.trips[i].trip_id);
    EXPECT_EQ(parallel_sink.trips[i].car_id, serial_sink.trips[i].car_id);
    EXPECT_EQ(parallel_sink.trips[i].points.size(),
              serial_sink.trips[i].points.size());
  }
}

}  // namespace
}  // namespace synth
}  // namespace taxitrace
