// The observability bundle a study run produces: the funnel ledger,
// the metrics snapshots and the stage-span trace, plus the study-level
// on/off switch.
//
// Determinism contract (enforced by parallel_determinism_test):
//   - `funnel` and `counters` are pure functions of the study config —
//     byte-identical at any worker count.
//   - `gauges`, `histograms` of timings, and `spans` describe the run
//     itself (wall times, worker load) and may vary freely.
// Disabled observability is a strict no-op: no registry, no funnel, no
// extra work on any hot path, so the golden digest and the benchmarked
// wall times are untouched.

#ifndef TAXITRACE_OBS_OBSERVABILITY_H_
#define TAXITRACE_OBS_OBSERVABILITY_H_

#include <string>
#include <vector>

#include "taxitrace/obs/funnel.h"
#include "taxitrace/obs/metrics.h"
#include "taxitrace/obs/stage_span.h"

namespace taxitrace {
namespace obs {

/// Study-level observability switch (StudyConfig::observability).
struct ObservabilityOptions {
  /// Collect the funnel ledger, metrics registry and span trace into
  /// StudyResults::observability. Off by default: the pipeline then
  /// records only the five stage spans it always kept (StageTimings).
  bool enabled = false;
};

/// Everything observability collected over one study run.
struct StudySnapshot {
  bool enabled = false;
  FunnelLedger funnel;
  std::vector<CounterSample> counters;      ///< Deterministic.
  std::vector<GaugeSample> gauges;          ///< Run-dependent.
  std::vector<HistogramSample> histograms;  ///< Value histograms.
  std::vector<SpanRecord> spans;            ///< Run-dependent timings.
};

/// One JSON document with funnel, counters, gauges, histograms and
/// spans (the --metrics-json / BENCH_metrics.json payload).
std::string SnapshotJson(const StudySnapshot& snapshot);

/// Human-readable rendering: funnel table plus span tree.
std::string SnapshotText(const StudySnapshot& snapshot);

}  // namespace obs
}  // namespace taxitrace

#endif  // TAXITRACE_OBS_OBSERVABILITY_H_
