// Ablation: the specialised one-way REML vs the generic Henderson
// mixed-model equations — identical estimates, different cost.

#include <cmath>

#include "bench_util.h"
#include "taxitrace/model/mixed_model.h"
#include "taxitrace/model/one_way_reml.h"

namespace taxitrace {
namespace {

struct ModelInputs {
  model::OneWayReml one_way;
  model::MixedModel mixed{1};
};

const ModelInputs& StudyInputs() {
  static const ModelInputs* inputs = [] {
    auto* in = new ModelInputs;
    const core::StudyResults& r = benchutil::FullResults();
    const geo::LocalProjection& proj = r.map.network.projection();
    const analysis::Grid grid(r.grid_cell_m);
    std::unordered_map<analysis::CellId, size_t, analysis::CellIdHash>
        groups;
    for (const core::MatchedTransition& mt : r.transitions) {
      for (const trace::RoutePoint& p : mt.transition.segment.points) {
        const analysis::CellId cell =
            grid.CellOf(proj.Forward(p.position));
        const auto [it, inserted] = groups.emplace(cell, groups.size());
        in->one_way.Add(it->second, p.speed_kmh);
        in->mixed.Add({1.0}, it->second, p.speed_kmh);
      }
    }
    return in;
  }();
  return *inputs;
}

void PrintAblation() {
  const ModelInputs& in = StudyInputs();
  const model::OneWayRemlFit a = in.one_way.Fit().value();
  const model::MixedModelFit b = in.mixed.Fit().value();
  std::printf(
      "ABLATION: one-way REML specialisation vs generic Henderson MME, "
      "%lld point speeds in %zu cells\n",
      static_cast<long long>(a.num_observations), in.one_way.num_groups());
  std::printf("  estimate            one-way      generic\n");
  std::printf("  intercept (km/h)   %8.3f     %8.3f\n", a.mu,
              b.fixed_effects[0]);
  std::printf("  sigma2 residual    %8.2f     %8.2f\n", a.sigma2_residual,
              b.sigma2_residual);
  std::printf("  sigma2 cell        %8.2f     %8.2f\n", a.sigma2_group,
              b.sigma2_group);
  std::printf("  lambda             %8.4f     %8.4f\n", a.lambda,
              b.lambda);
  double max_blup_diff = 0.0;
  for (size_t g = 0; g < a.blup.size(); ++g) {
    max_blup_diff =
        std::max(max_blup_diff, std::abs(a.blup[g] - b.blup[g]));
  }
  std::printf("  max |BLUP diff|    %8.5f km/h\n", max_blup_diff);
  std::printf("Check: the two solvers agree -> %s\n\n",
              (std::abs(a.lambda - b.lambda) < 0.02 * (1 + a.lambda) &&
               max_blup_diff < 0.05)
                  ? "HOLDS"
                  : "VIOLATED");
}

void BM_OneWaySpecialised(benchmark::State& state) {
  const ModelInputs& in = StudyInputs();
  for (auto _ : state) {
    auto fit = in.one_way.Fit();
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_OneWaySpecialised)->Unit(benchmark::kMicrosecond);

void BM_GenericHenderson(benchmark::State& state) {
  const ModelInputs& in = StudyInputs();
  for (auto _ : state) {
    auto fit = in.mixed.Fit();
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_GenericHenderson)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintAblation)
