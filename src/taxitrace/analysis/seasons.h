// Meteorological seasons for the seasonal analyses (Fig. 5 and the
// seasonal mean-speed deltas of Section VI-A).

#ifndef TAXITRACE_ANALYSIS_SEASONS_H_
#define TAXITRACE_ANALYSIS_SEASONS_H_

#include <string_view>

namespace taxitrace {
namespace analysis {

/// Meteorological seasons (winter = Dec-Feb, etc.).
enum class Season : unsigned char { kWinter, kSpring, kSummer, kAutumn };

/// Number of seasons.
inline constexpr int kNumSeasons = 4;

/// Season of a study timestamp.
Season SeasonOfTimestamp(double timestamp_s);

/// Season of a calendar month (1..12).
Season SeasonOfMonth(int month);

/// "winter" / "spring" / "summer" / "autumn".
std::string_view SeasonName(Season season);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_SEASONS_H_
