
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/trace/route_point.cc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/route_point.cc.o" "gcc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/route_point.cc.o.d"
  "/root/repo/src/taxitrace/trace/time_util.cc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/time_util.cc.o" "gcc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/time_util.cc.o.d"
  "/root/repo/src/taxitrace/trace/trace_io.cc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_io.cc.o.d"
  "/root/repo/src/taxitrace/trace/trace_query.cc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_query.cc.o" "gcc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_query.cc.o.d"
  "/root/repo/src/taxitrace/trace/trace_store.cc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_store.cc.o" "gcc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trace_store.cc.o.d"
  "/root/repo/src/taxitrace/trace/trip.cc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trip.cc.o" "gcc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trip.cc.o.d"
  "/root/repo/src/taxitrace/trace/trip_stats.cc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trip_stats.cc.o" "gcc" "src/CMakeFiles/taxitrace_trace.dir/taxitrace/trace/trip_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
