file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/convex_hull.cc.o"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/convex_hull.cc.o.d"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/coordinates.cc.o"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/coordinates.cc.o.d"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/geometry.cc.o"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/geometry.cc.o.d"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/polygon.cc.o"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/polygon.cc.o.d"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/polyline.cc.o"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/polyline.cc.o.d"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/simplify.cc.o"
  "CMakeFiles/taxitrace_geo.dir/taxitrace/geo/simplify.cc.o.d"
  "libtaxitrace_geo.a"
  "libtaxitrace_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
