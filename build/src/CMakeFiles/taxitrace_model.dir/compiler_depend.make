# Empty compiler generated dependencies file for taxitrace_model.
# This may be replaced when dependencies are built.
