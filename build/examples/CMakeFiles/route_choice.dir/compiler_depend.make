# Empty compiler generated dependencies file for route_choice.
# This may be replaced when dependencies are built.
