# Empty dependencies file for bench_table2_segmentation.
# This may be replaced when dependencies are built.
