// Known-bad: accumulation through reference-captured shared state in
// ParallelFor lambdas merges in completion order.

#include "taxitrace/core/fake.h"

namespace taxitrace {

Status BadSharedAccumulate(const Executor& ex, std::vector<int>& out) {
  int total = 0;
  Status st = ex.ParallelFor(0, 100, [&](int64_t i) -> Status {
    total += static_cast<int>(i);         // expect(parallel-accumulation)
    out.push_back(static_cast<int>(i));   // expect(parallel-accumulation)
    return Status::OK();
  });
  (void)total;
  return st;
}

Status BadSharedCounter(const Executor& ex) {
  long hits = 0;
  Status st = ex.ParallelFor(0, 10, [&](int64_t i) -> Status {
    if (i % 2 == 0) ++hits;               // expect(parallel-accumulation)
    return Status::OK();
  });
  (void)hits;
  return st;
}

}  // namespace taxitrace
