// Known-bad shapes for unordered-iteration: hash-order loops feeding
// order-sensitive sinks. Never compiled; linted by tt_lint_selftest.

#include "taxitrace/core/fake.h"

namespace taxitrace {

void BadAppend(std::vector<int>& out) {
  std::unordered_map<int, int> counts;
  for (const auto& [key, value] : counts) {  // expect(unordered-iteration)
    out.push_back(value);
  }
}

void BadMutator(GraphBuilder& builder) {
  std::unordered_set<int> ids;
  for (int id : ids) {  // expect(unordered-iteration)
    builder.AddVertex(id);
  }
}

void BadIteratorFor(std::vector<int>& out) {
  std::unordered_map<int, int> counts;
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // expect(unordered-iteration)
    out.push_back(it->second);
  }
}

void BadAccumulate(double& total) {
  std::unordered_map<int, double> weights;
  for (const auto& [k, w] : weights) {  // expect(unordered-iteration)
    total += w;
  }
}

void BadDiscardedCall(std::unordered_map<int, int>& pending) {
  for (const auto& [k, v] : pending) {  // expect(unordered-iteration)
    flush_entry(k, v);
  }
}

}  // namespace taxitrace
