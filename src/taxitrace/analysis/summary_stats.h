// Six-number summaries (min / 1st quartile / median / mean / 3rd
// quartile / max) — the statistic layout of Table 4.

#ifndef TAXITRACE_ANALYSIS_SUMMARY_STATS_H_
#define TAXITRACE_ANALYSIS_SUMMARY_STATS_H_

#include <cstdint>
#include <vector>

namespace taxitrace {
namespace analysis {

/// A six-number summary of a sample.
struct Summary {
  int64_t n = 0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double mean = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

/// Summarises a sample (copies and sorts; empty input yields zeros).
/// Quartiles use linear interpolation between order statistics (R-7).
Summary Summarize(std::vector<double> values);

/// Sample mean (0 for empty input).
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (0 for n < 2).
double Variance(const std::vector<double>& values);

/// Interpolated quantile of a sorted sample, q in [0, 1].
double SortedQuantile(const std::vector<double>& sorted, double q);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_SUMMARY_STATS_H_
