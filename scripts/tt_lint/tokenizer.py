"""C++ tokenizer for tt_lint.

Produces a flat token stream with source positions, stripping comments
and collapsing string/char literals so rules never fire on prose. The
tokenizer is deliberately lossy where lint rules do not care (it does
not distinguish keywords from identifiers, and numbers are one kind),
but it is exact about the things regex cannot be:

  * // and /* */ comments, including comment text capture so the
    engine can parse `tt-lint: allow(...)` suppressions,
  * string literals with escapes, raw strings R"delim(...)delim",
    char literals, and encoding prefixes (u8, L, ...),
  * preprocessor directives (one `pp` token per logical line,
    backslash continuations folded in),
  * maximal-munch punctuators (`::`, `->`, `+=`, `<<`, ...).

Unterminated constructs are tolerated (consumed to end of input): lint
must degrade gracefully on in-progress edits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

# Token kinds.
ID = "id"
NUM = "num"
STR = "str"
CHAR = "char"
PUNCT = "punct"
PP = "pp"

_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
           "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")

_ID_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")

_STR_PREFIXES = frozenset({"u8", "u", "U", "L"})
_RAW_PREFIXES = frozenset({"R", "u8R", "uR", "UR", "LR"})


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int  # 1-based
    col: int   # 1-based


@dataclass(frozen=True)
class Comment:
    text: str
    line: int  # line the comment starts on


class _Scanner:
    """Cursor over the source text with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.n = len(text)
        self.i = 0
        self.line = 1
        self.col = 1

    def eof(self) -> bool:
        return self.i >= self.n

    def peek(self, offset: int = 0) -> str:
        j = self.i + offset
        return self.text[j] if j < self.n else ""

    def advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.i < self.n and self.text[self.i] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.i += 1
            if self.i > self.n:
                self.i = self.n
                return

    def advance_to(self, target: int) -> None:
        while self.i < target and self.i < self.n:
            self.advance(1)

    def at_line_start(self) -> bool:
        j = self.i - 1
        while j >= 0 and self.text[j] in " \t":
            j -= 1
        return j < 0 or self.text[j] == "\n"


def tokenize(text: str) -> tuple[list[Token], list[Comment]]:
    """Tokenize C++ source. Returns (tokens, comments)."""
    s = _Scanner(text)
    tokens: list[Token] = []
    comments: list[Comment] = []

    while not s.eof():
        c = s.peek()
        if c in " \t\r\n\v\f":
            s.advance()
            continue

        # Comments.
        if c == "/" and s.peek(1) == "/":
            start, start_line = s.i, s.line
            while not s.eof() and s.peek() != "\n":
                s.advance()
            comments.append(Comment(text[start:s.i], start_line))
            continue
        if c == "/" and s.peek(1) == "*":
            start, start_line = s.i, s.line
            s.advance(2)
            while not s.eof() and not (s.peek() == "*"
                                       and s.peek(1) == "/"):
                s.advance()
            s.advance(2)
            comments.append(Comment(text[start:min(s.i, s.n)], start_line))
            continue

        # Preprocessor directive: whole logical line as one token.
        if c == "#" and s.at_line_start():
            start, start_line, start_col = s.i, s.line, s.col
            while not s.eof():
                if s.peek() == "\\" and s.peek(1) == "\n":
                    s.advance(2)
                    continue
                if s.peek() == "\n":
                    break
                if s.peek() == "/" and s.peek(1) == "/":
                    break
                s.advance()
            tokens.append(Token(PP, text[start:s.i], start_line, start_col))
            continue

        # Identifier (or string/char-literal prefix).
        if c in _ID_START:
            start, start_line, start_col = s.i, s.line, s.col
            while not s.eof() and s.peek() in _ID_CONT:
                s.advance()
            word = text[start:s.i]
            if s.peek() == '"' and word in _RAW_PREFIXES:
                _consume_raw_string(s)
                tokens.append(Token(STR, '""', start_line, start_col))
                continue
            if s.peek() == '"' and word in _STR_PREFIXES:
                _consume_quoted(s, '"')
                tokens.append(Token(STR, '""', start_line, start_col))
                continue
            if s.peek() == "'" and word in _STR_PREFIXES:
                _consume_quoted(s, "'")
                tokens.append(Token(CHAR, "''", start_line, start_col))
                continue
            tokens.append(Token(ID, word, start_line, start_col))
            continue

        # String / char literals.
        if c == '"':
            start_line, start_col = s.line, s.col
            _consume_quoted(s, '"')
            tokens.append(Token(STR, '""', start_line, start_col))
            continue
        if c == "'":
            start_line, start_col = s.line, s.col
            _consume_quoted(s, "'")
            tokens.append(Token(CHAR, "''", start_line, start_col))
            continue

        # Number (pp-number: hex, digit separators, exponents).
        if c in _DIGITS or (c == "." and s.peek(1) in _DIGITS):
            start, start_line, start_col = s.i, s.line, s.col
            s.advance()
            while not s.eof():
                ch = s.peek()
                if ch in _ID_CONT or ch == "." or ch == "'":
                    s.advance()
                elif ch in "+-" and text[s.i - 1] in "eEpP":
                    s.advance()
                else:
                    break
            tokens.append(Token(NUM, text[start:s.i],
                                start_line, start_col))
            continue

        # Punctuators, maximal munch.
        start_line, start_col = s.line, s.col
        three = text[s.i:s.i + 3]
        two = text[s.i:s.i + 2]
        if three in _PUNCT3:
            tokens.append(Token(PUNCT, three, start_line, start_col))
            s.advance(3)
        elif two in _PUNCT2:
            tokens.append(Token(PUNCT, two, start_line, start_col))
            s.advance(2)
        else:
            tokens.append(Token(PUNCT, c, start_line, start_col))
            s.advance()

    return tokens, comments


def _consume_quoted(s: _Scanner, quote: str) -> None:
    """Consume a quoted literal; the cursor sits on the opening quote."""
    s.advance()
    while not s.eof():
        ch = s.peek()
        if ch == "\\":
            s.advance(2)
        elif ch == quote:
            s.advance()
            return
        elif ch == "\n":
            return  # unterminated on this line; keep going
        else:
            s.advance()


def _consume_raw_string(s: _Scanner) -> None:
    """Consume R"delim( ... )delim"; the cursor sits on the quote."""
    j = s.i + 1
    while j < s.n and s.text[j] not in "(\n" and j - s.i <= 17:
        j += 1
    delim = s.text[s.i + 1:j]
    terminator = ")" + delim + '"'
    end = s.text.find(terminator, j)
    if end < 0:
        s.advance_to(s.n)
    else:
        s.advance_to(end + len(terminator))


def iter_lines(tokens: list[Token]) -> Iterator[tuple[int, list[Token]]]:
    """Group tokens by source line (for line-oriented rules)."""
    by_line: dict[int, list[Token]] = {}
    for t in tokens:
        by_line.setdefault(t.line, []).append(t)
    for ln in sorted(by_line):
        yield ln, by_line[ln]
