#include "taxitrace/synth/metro_map_generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "taxitrace/common/check.h"
#include "taxitrace/common/random.h"
#include "taxitrace/geo/polyline.h"

namespace taxitrace {
namespace synth {
namespace {

using geo::EnPoint;
using roadnet::Edge;
using roadnet::FunctionalClass;
using roadnet::RoadNetwork;
using roadnet::TravelDirection;
using roadnet::VertexId;

// Union-find over vertex ordinals for the connectivity repair pass.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

// A street segment waiting to be added to the network.
struct PendingEdge {
  VertexId a = roadnet::kInvalidVertex;
  VertexId b = roadnet::kInvalidVertex;
  double speed_kmh = 40.0;
  FunctionalClass fclass = FunctionalClass::kLocalStreet;
  TravelDirection direction = TravelDirection::kBoth;
};

Edge MakeStreet(const RoadNetwork& net, const PendingEdge& p) {
  Edge e;
  e.from = p.a;
  e.to = p.b;
  e.geometry = geo::Polyline(
      {net.vertex(p.a).position, net.vertex(p.b).position});
  e.length_m = e.geometry.Length();
  e.speed_limit_kmh = p.speed_kmh;
  e.functional_class = p.fclass;
  e.direction = p.direction;
  return e;
}

}  // namespace

Result<MetroMap> GenerateMetroMap(const MetroMapOptions& options) {
  if (options.districts_x < 1 || options.districts_y < 1) {
    return Status::InvalidArgument("metro needs at least one district");
  }
  if (options.district_nodes_x < 2 || options.district_nodes_y < 2) {
    return Status::InvalidArgument("district grid needs >= 2x2 nodes");
  }
  if (options.node_spacing_m <= 0.0 || options.district_gap_m <= 0.0) {
    return Status::InvalidArgument("spacings must be positive");
  }

  const int nx = options.district_nodes_x;
  const int ny = options.district_nodes_y;
  const double span_x = (nx - 1) * options.node_spacing_m;
  const double span_y = (ny - 1) * options.node_spacing_m;
  const double pitch_x = span_x + options.district_gap_m;
  const double pitch_y = span_y + options.district_gap_m;
  // Centre the metro on the local origin so negative coordinates (and
  // negative tile coordinates) are part of every generated map.
  const double x0 =
      -(options.districts_x * pitch_x - options.district_gap_m) / 2.0;
  const double y0 =
      -(options.districts_y * pitch_y - options.district_gap_m) / 2.0;

  MetroMap out{RoadNetwork(options.origin, options.tiling)};
  RoadNetwork& net = out.network;
  out.num_districts = options.districts_x * options.districts_y;

  // --- District street grids --------------------------------------------
  // vid[r][c] holds the district's node ids in j-major order.
  std::vector<std::vector<std::vector<VertexId>>> vid(
      static_cast<size_t>(options.districts_y));
  for (int r = 0; r < options.districts_y; ++r) {
    vid[static_cast<size_t>(r)].resize(static_cast<size_t>(options.districts_x));
    for (int c = 0; c < options.districts_x; ++c) {
      auto& ids = vid[static_cast<size_t>(r)][static_cast<size_t>(c)];
      ids.resize(static_cast<size_t>(nx) * static_cast<size_t>(ny));
      const double dx0 = x0 + c * pitch_x;
      const double dy0 = y0 + r * pitch_y;
      for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
          const EnPoint p{dx0 + i * options.node_spacing_m,
                          dy0 + j * options.node_spacing_m};
          // Grid nodes with three or more lattice neighbours are
          // junctions; only the four district corners have two.
          const bool corner = (i == 0 || i == nx - 1) && (j == 0 || j == ny - 1);
          ids[static_cast<size_t>(j) * static_cast<size_t>(nx) +
              static_cast<size_t>(i)] = net.AddVertex(p, !corner);
        }
      }
    }
  }

  // Segments removed for irregularity, kept aside for the repair pass.
  std::vector<PendingEdge> removed;
  std::vector<PendingEdge> kept;

  for (int r = 0; r < options.districts_y; ++r) {
    for (int c = 0; c < options.districts_x; ++c) {
      // Each district draws from its own stream: maps stay reproducible
      // and districts are independent of generation order.
      Rng rng(MixSeed(options.seed, static_cast<uint64_t>(r),
                      static_cast<uint64_t>(c)));
      const auto& ids = vid[static_cast<size_t>(r)][static_cast<size_t>(c)];
      const auto at = [&](int i, int j) {
        return ids[static_cast<size_t>(j) * static_cast<size_t>(nx) +
                   static_cast<size_t>(i)];
      };
      for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
          // Horizontal segment (i,j)-(i+1,j), then vertical (i,j)-(i,j+1).
          for (int axis = 0; axis < 2; ++axis) {
            const bool horizontal = axis == 0;
            if (horizontal && i + 1 >= nx) continue;
            if (!horizontal && j + 1 >= ny) continue;
            PendingEdge p;
            p.a = at(i, j);
            p.b = horizontal ? at(i + 1, j) : at(i, j + 1);
            const bool arterial = horizontal ? (j == 0 || j == ny - 1)
                                             : (i == 0 || i == nx - 1);
            if (arterial) {
              // The district perimeter is the arterial frame: faster,
              // never removed, never one-way (connectors land on it).
              p.speed_kmh = 60.0;
              p.fclass = FunctionalClass::kConnectingRoad;
              kept.push_back(p);
              continue;
            }
            const double remove_draw = rng.NextDouble();
            const double one_way_draw = rng.NextDouble();
            const double flip_draw = rng.NextDouble();
            if (remove_draw < options.street_removal_fraction) {
              removed.push_back(p);
              continue;
            }
            if (one_way_draw < options.one_way_fraction) {
              p.direction = flip_draw < 0.5 ? TravelDirection::kForward
                                            : TravelDirection::kBackward;
            }
            kept.push_back(p);
          }
        }
      }
    }
  }

  // --- Inter-district connectors ----------------------------------------
  // Rivers occupy the gaps after chosen district rows; a vertical
  // connector crossing a river survives only as a bridge.
  std::vector<int> river_rows;
  if (options.num_rivers > 0 && options.districts_y > 1) {
    const int gaps = options.districts_y - 1;
    const int rivers = std::min(options.num_rivers, gaps);
    for (int m = 0; m < rivers; ++m) {
      const int row = ((m + 1) * options.districts_y) / (rivers + 1);
      river_rows.push_back(std::clamp(row - 1, 0, gaps - 1));
    }
    std::sort(river_rows.begin(), river_rows.end());
    river_rows.erase(std::unique(river_rows.begin(), river_rows.end()),
                     river_rows.end());
  }
  const auto is_river_gap = [&](int row) {
    return std::binary_search(river_rows.begin(), river_rows.end(), row);
  };

  const int kconn = std::max(1, options.connectors_per_side);
  // Horizontal connectors: (c, r) east side -> (c+1, r) west side.
  for (int r = 0; r < options.districts_y; ++r) {
    for (int c = 0; c + 1 < options.districts_x; ++c) {
      for (int k = 0; k < kconn; ++k) {
        const int j = std::clamp(((k + 1) * ny) / (kconn + 1), 0, ny - 1);
        PendingEdge p;
        p.a = vid[static_cast<size_t>(r)][static_cast<size_t>(c)]
                 [static_cast<size_t>(j) * static_cast<size_t>(nx) +
                  static_cast<size_t>(nx - 1)];
        p.b = vid[static_cast<size_t>(r)][static_cast<size_t>(c + 1)]
                 [static_cast<size_t>(j) * static_cast<size_t>(nx)];
        p.speed_kmh = 70.0;
        p.fclass = FunctionalClass::kRegionalRoad;
        kept.push_back(p);
      }
    }
  }
  // Vertical connectors: (c, r) north side -> (c, r+1) south side. On
  // river gaps only one connector per `bridge_every_m` of width
  // survives — the bridge choke points.
  for (int r = 0; r + 1 < options.districts_y; ++r) {
    const bool river = is_river_gap(r);
    double last_bridge_band = -1.0;
    for (int c = 0; c < options.districts_x; ++c) {
      for (int k = 0; k < kconn; ++k) {
        const int i = std::clamp(((k + 1) * nx) / (kconn + 1), 0, nx - 1);
        PendingEdge p;
        p.a = vid[static_cast<size_t>(r)][static_cast<size_t>(c)]
                 [static_cast<size_t>(ny - 1) * static_cast<size_t>(nx) +
                  static_cast<size_t>(i)];
        p.b = vid[static_cast<size_t>(r + 1)][static_cast<size_t>(c)]
                 [static_cast<size_t>(i)];
        p.speed_kmh = 70.0;
        p.fclass = FunctionalClass::kRegionalRoad;
        if (river) {
          const double x = net.vertex(p.a).position.x;
          const double band = std::floor((x - x0) / options.bridge_every_m);
          if (band == last_bridge_band) continue;  // river, no bridge
          last_bridge_band = band;
          ++out.num_bridges;
        }
        kept.push_back(p);
      }
    }
  }

  // --- Ring roads --------------------------------------------------------
  const double metro_min_x = x0;
  const double metro_max_x = x0 + options.districts_x * pitch_x -
                             options.district_gap_m;
  const double metro_min_y = y0;
  const double metro_max_y = y0 + options.districts_y * pitch_y -
                             options.district_gap_m;
  for (int ring = 0; ring < options.num_ring_roads; ++ring) {
    const double off = options.ring_offset_m * (ring + 1);
    const double lo_x = metro_min_x - off, hi_x = metro_max_x + off;
    const double lo_y = metro_min_y - off, hi_y = metro_max_y + off;
    const double step = std::max(options.node_spacing_m * 4.0, 480.0);
    // Walk the rectangle clockwise from the south-west corner, placing
    // ring vertices every `step` metres.
    std::vector<EnPoint> loop;
    const auto walk = [&](EnPoint from, EnPoint to) {
      const double len = geo::Distance(from, to);
      const int steps = std::max(1, static_cast<int>(len / step));
      for (int s = 0; s < steps; ++s) {
        const double t = static_cast<double>(s) / steps;
        loop.push_back(EnPoint{from.x + (to.x - from.x) * t,
                               from.y + (to.y - from.y) * t});
      }
    };
    walk({lo_x, lo_y}, {hi_x, lo_y});
    walk({hi_x, lo_y}, {hi_x, hi_y});
    walk({hi_x, hi_y}, {lo_x, hi_y});
    walk({lo_x, hi_y}, {lo_x, lo_y});
    std::vector<VertexId> ring_ids;
    ring_ids.reserve(loop.size());
    for (const EnPoint& p : loop) ring_ids.push_back(net.AddVertex(p, false));
    out.num_ring_vertices += static_cast<int>(ring_ids.size());
    for (size_t s = 0; s < ring_ids.size(); ++s) {
      PendingEdge p;
      p.a = ring_ids[s];
      p.b = ring_ids[(s + 1) % ring_ids.size()];
      p.speed_kmh = 80.0;
      p.fclass = FunctionalClass::kRegionalRoad;
      kept.push_back(p);
    }
    // Ramps: one per side, from the ring vertex nearest the side's
    // midpoint down to the matching outermost district corner.
    const EnPoint anchors[4] = {
        {(metro_min_x + metro_max_x) / 2.0, metro_min_y},   // south
        {metro_max_x, (metro_min_y + metro_max_y) / 2.0},   // east
        {(metro_min_x + metro_max_x) / 2.0, metro_max_y},   // north
        {metro_min_x, (metro_min_y + metro_max_y) / 2.0}};  // west
    for (const EnPoint& anchor : anchors) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t s = 0; s < ring_ids.size(); ++s) {
        const double d = geo::Distance(loop[s], anchor);
        if (d < best_d) {
          best_d = d;
          best = s;
        }
      }
      // Nearest district grid node to the anchor.
      VertexId gate = roadnet::kInvalidVertex;
      double gate_d = std::numeric_limits<double>::infinity();
      for (const auto& row : vid) {
        for (const auto& district : row) {
          for (const VertexId v : district) {
            const double d = geo::Distance(net.vertex(v).position, anchor);
            if (d < gate_d) {
              gate_d = d;
              gate = v;
            }
          }
        }
      }
      PendingEdge ramp;
      ramp.a = ring_ids[best];
      ramp.b = gate;
      ramp.speed_kmh = 70.0;
      ramp.fclass = FunctionalClass::kRegionalRoad;
      kept.push_back(ramp);
    }
  }

  // --- Materialise + connectivity repair --------------------------------
  UnionFind uf(net.num_vertices());
  for (const PendingEdge& p : kept) {
    net.AddEdge(MakeStreet(net, p));
    uf.Union(net.VertexOrdinal(p.a), net.VertexOrdinal(p.b));
  }
  // Re-add removed segments whose endpoints fell into different
  // components, in generation order: the result is as connected as the
  // full lattice, with the irregularity kept everywhere it is safe.
  for (const PendingEdge& p : removed) {
    if (!uf.Union(net.VertexOrdinal(p.a), net.VertexOrdinal(p.b))) continue;
    net.AddEdge(MakeStreet(net, p));
    ++out.num_repair_edges;
  }

  net.WarmAdjacency();
  const Status valid = net.Validate();
  if (!valid.ok()) return valid;
  return out;
}

MetroMapOptions MetroPreset(int level) {
  TT_CHECK(level >= 0);
  MetroMapOptions opt;
  switch (level) {
    case 0:  // ~1k vertices: 2x2 districts of 16x16.
      break;
    case 1:  // ~10k vertices.
      opt.districts_x = opt.districts_y = 6;
      opt.district_nodes_x = opt.district_nodes_y = 17;
      opt.num_rivers = 2;
      break;
    case 2:  // ~26k vertices.
      opt.districts_x = opt.districts_y = 10;
      opt.district_nodes_x = opt.district_nodes_y = 16;
      opt.num_rivers = 2;
      opt.num_ring_roads = 2;
      break;
    default:  // level 3: >= 100k vertices; beyond: keep growing.
      opt.districts_x = opt.districts_y = 16 + 4 * (level - 3);
      opt.district_nodes_x = opt.district_nodes_y = 20;
      opt.num_rivers = 3;
      opt.num_ring_roads = 2;
      break;
  }
  return opt;
}

}  // namespace synth
}  // namespace taxitrace
