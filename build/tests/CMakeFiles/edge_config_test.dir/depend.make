# Empty dependencies file for edge_config_test.
# This may be replaced when dependencies are built.
