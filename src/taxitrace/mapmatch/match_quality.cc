#include "taxitrace/mapmatch/match_quality.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace taxitrace {
namespace mapmatch {

double EdgeJaccard(const std::vector<roadnet::EdgeId>& matched,
                   const std::vector<roadnet::EdgeId>& truth) {
  const std::set<roadnet::EdgeId> a(matched.begin(), matched.end());
  const std::set<roadnet::EdgeId> b(truth.begin(), truth.end());
  if (a.empty() && b.empty()) return 1.0;
  size_t intersection = 0;
  for (roadnet::EdgeId e : a) {
    if (b.contains(e)) ++intersection;
  }
  const size_t uni = a.size() + b.size() - intersection;
  return uni == 0 ? 1.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

double MeanGeometryDeviation(const geo::Polyline& matched,
                             const geo::Polyline& truth,
                             double sample_spacing_m) {
  if (matched.size() < 2 || truth.size() < 2) {
    return std::numeric_limits<double>::infinity();
  }
  const double total = matched.Length();
  const int samples = std::max(
      2, static_cast<int>(std::ceil(total / sample_spacing_m)) + 1);
  double sum = 0.0;
  for (int k = 0; k < samples; ++k) {
    const double arc = total * k / (samples - 1);
    sum += truth.Project(matched.Interpolate(arc)).distance;
  }
  return sum / samples;
}

double RouteLengthError(double matched_length_m, double truth_length_m) {
  if (truth_length_m <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::abs(matched_length_m - truth_length_m) / truth_length_m;
}

}  // namespace mapmatch
}  // namespace taxitrace
