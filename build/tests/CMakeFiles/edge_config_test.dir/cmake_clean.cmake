file(REMOVE_RECURSE
  "CMakeFiles/edge_config_test.dir/edge_config_test.cc.o"
  "CMakeFiles/edge_config_test.dir/edge_config_test.cc.o.d"
  "edge_config_test"
  "edge_config_test.pdb"
  "edge_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
