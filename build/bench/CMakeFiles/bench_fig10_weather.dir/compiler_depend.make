# Empty compiler generated dependencies file for bench_fig10_weather.
# This may be replaced when dependencies are built.
