#include "taxitrace/analysis/summary_stats.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace analysis {

double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double h = q * (static_cast<double>(sorted.size()) - 1.0);
  const size_t lo = static_cast<size_t>(std::floor(h));
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary Summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.n = static_cast<int64_t>(values.size());
  s.min = values.front();
  s.max = values.back();
  s.q1 = SortedQuantile(values, 0.25);
  s.median = SortedQuantile(values, 0.5);
  s.q3 = SortedQuantile(values, 0.75);
  s.mean = Mean(values);
  return s;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double m2 = 0.0;
  for (double v : values) m2 += (v - mean) * (v - mean);
  return m2 / (static_cast<double>(values.size()) - 1.0);
}

}  // namespace analysis
}  // namespace taxitrace
