#include "taxitrace/clean/interpolation.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace clean {

void RestoreLostPoints(std::vector<trace::RoutePoint>* points,
                       const InterpolationOptions& options,
                       InterpolationStats* stats) {
  std::vector<trace::RoutePoint>& pts = *points;
  if (pts.size() < 2) return;
  InterpolationStats local;

  std::vector<trace::RoutePoint> out;
  out.reserve(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i > 0) {
      const trace::RoutePoint& a = pts[i - 1];
      const trace::RoutePoint& b = pts[i];
      const double dt = b.timestamp_s - a.timestamp_s;
      const double d = geo::HaversineMeters(a.position, b.position);
      if (dt > options.min_gap_s && d > options.min_gap_distance_m) {
        const int pieces = std::min(
            options.max_points_per_gap + 1,
            static_cast<int>(std::floor(dt / options.restored_interval_s)));
        for (int k = 1; k < pieces; ++k) {
          const double t = static_cast<double>(k) / pieces;
          trace::RoutePoint restored = a;
          restored.timestamp_s = a.timestamp_s + t * dt;
          restored.position.lat_deg =
              a.position.lat_deg +
              t * (b.position.lat_deg - a.position.lat_deg);
          restored.position.lon_deg =
              a.position.lon_deg +
              t * (b.position.lon_deg - a.position.lon_deg);
          restored.speed_kmh =
              a.speed_kmh + t * (b.speed_kmh - a.speed_kmh);
          restored.fuel_delta_ml = 0.0;
          out.push_back(restored);
          ++local.points_inserted;
        }
        if (pieces > 1) ++local.gaps_restored;
      }
    }
    out.push_back(pts[i]);
  }
  pts = std::move(out);
  if (stats != nullptr) {
    stats->gaps_restored += local.gaps_restored;
    stats->points_inserted += local.points_inserted;
  }
}

void RestoreTripLostPoints(trace::Trip* trip,
                           const InterpolationOptions& options,
                           InterpolationStats* stats) {
  RestoreLostPoints(&trip->points, options, stats);
  trip->RecomputeTotals();
}

}  // namespace clean
}  // namespace taxitrace
