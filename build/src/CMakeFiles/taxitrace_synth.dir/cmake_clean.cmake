file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/city_map_generator.cc.o"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/city_map_generator.cc.o.d"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/driver_model.cc.o"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/driver_model.cc.o.d"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/fleet_simulator.cc.o"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/fleet_simulator.cc.o.d"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/pedestrian_model.cc.o"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/pedestrian_model.cc.o.d"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/sensor_model.cc.o"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/sensor_model.cc.o.d"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/weather_model.cc.o"
  "CMakeFiles/taxitrace_synth.dir/taxitrace/synth/weather_model.cc.o.d"
  "libtaxitrace_synth.a"
  "libtaxitrace_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
