#include "taxitrace/fault/fault_injector.h"

#include <cmath>
#include <limits>
#include <utility>

#include "taxitrace/common/random.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace fault {
namespace {

// Salts naming the injector's RNG substreams. Distinct salts keep the
// per-trip and per-row streams independent even for equal ids.
constexpr uint64_t kTripSalt = 0x11;
constexpr uint64_t kRowSalt = 0x22;

constexpr double kClockJumpSeconds = 12.0 * 3600.0;

}  // namespace

void FaultInjector::CorruptTrips(std::vector<trace::Trip>* trips,
                                 FaultReport* report) const {
  std::vector<trace::Trip> duplicates;
  for (size_t i = 0; i < trips->size(); ++i) {
    trace::Trip& trip = (*trips)[i];
    Rng rng(MixSeed(plan_.seed, static_cast<uint64_t>(trip.trip_id),
                    kTripSalt));
    // Fixed draw order: trip-level fates first, then one block of
    // draws per point. Changing this order changes which faults fire,
    // so it is part of the determinism contract.
    const bool duplicate = rng.Bernoulli(plan_.duplicate_trip_prob);
    const bool empty = rng.Bernoulli(plan_.empty_trip_prob);
    const bool single = rng.Bernoulli(plan_.single_point_trip_prob);
    const bool interleave = rng.Bernoulli(plan_.interleave_trip_prob);

    for (trace::RoutePoint& p : trip.points) {
      if (rng.Bernoulli(plan_.nan_coord_prob)) {
        switch (rng.UniformInt(0, 2)) {
          case 0:
            p.position.lat_deg = std::numeric_limits<double>::quiet_NaN();
            break;
          case 1:
            p.position.lon_deg = std::numeric_limits<double>::quiet_NaN();
            break;
          default:
            p.position.lat_deg = std::numeric_limits<double>::infinity();
            break;
        }
        ++report->injected_nan_coords;
      }
      if (rng.Bernoulli(plan_.clock_jump_prob)) {
        p.timestamp_s +=
            rng.Bernoulli(0.5) ? kClockJumpSeconds : -kClockJumpSeconds;
        ++report->injected_clock_jumps;
      }
      if (rng.Bernoulli(plan_.negative_speed_prob)) {
        p.speed_kmh = -std::fabs(p.speed_kmh) - 1.0;
        ++report->injected_negative_speeds;
      }
      if (rng.Bernoulli(plan_.swap_coord_prob)) {
        std::swap(p.position.lat_deg, p.position.lon_deg);
        ++report->injected_swapped_coords;
      }
    }

    // Trip-level mutations. At most one structural fate per trip so
    // the classes stay distinguishable in the report.
    if (empty && !trip.points.empty()) {
      trip.points.clear();
      trip.RecomputeTotals();
      ++report->injected_emptied_trips;
    } else if (single && trip.points.size() > 1) {
      trip.points.resize(1);
      trip.RecomputeTotals();
      ++report->injected_single_point_trips;
    } else if (interleave && i > 0 && trip.points.size() >= 2) {
      // Splice the leading half of this trip into the previous trip's
      // stream. The moved points keep their original trip_id, which is
      // how real interleaved car streams look after a device mixes up
      // its upload buffers.
      trace::Trip& prev = (*trips)[i - 1];
      const auto mid =
          trip.points.begin() +
          static_cast<ptrdiff_t>(trip.points.size() / 2);
      prev.points.insert(prev.points.end(), trip.points.begin(), mid);
      trip.points.erase(trip.points.begin(), mid);
      prev.RecomputeTotals();
      trip.RecomputeTotals();
      ++report->injected_interleaved_trips;
    }

    if (duplicate) {
      duplicates.push_back(trip);
      ++report->injected_duplicated_trips;
    }
  }
  for (trace::Trip& d : duplicates) trips->push_back(std::move(d));
}

std::string FaultInjector::CorruptCsv(const std::string& csv,
                                      FaultReport* report) const {
  const std::vector<std::string> lines = Split(csv, '\n');
  std::string out;
  out.reserve(csv.size() + csv.size() / 16);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    // Row 0 is the header; the final Split piece after a trailing
    // newline is empty. Neither is a corruption target.
    if (i > 0 && !line.empty()) {
      Rng rng(MixSeed(plan_.seed, i, kRowSalt));
      if (rng.Bernoulli(plan_.truncate_row_prob)) {
        line.resize(line.size() / 2);
        ++report->injected_truncated_rows;
      } else if (rng.Bernoulli(plan_.wrong_columns_prob)) {
        if (rng.Bernoulli(0.5)) {
          line += ",999";
        } else {
          const size_t comma = line.rfind(',');
          if (comma != std::string::npos) line.resize(comma);
        }
        ++report->injected_wrong_column_rows;
      } else if (rng.Bernoulli(plan_.junk_bytes_prob)) {
        // Overwrite a few bytes with UTF-8 continuation bytes (invalid
        // on their own). Commas are left alone so the row keeps its
        // width and the fault stays distinct from wrong_columns.
        size_t replaced = 0;
        for (size_t k = line.size() / 3;
             k < line.size() && replaced < 3; ++k) {
          if (line[k] == ',') continue;
          line[k] = static_cast<char>(0x80 + (replaced * 7));
          ++replaced;
        }
        ++report->injected_junk_rows;
      }
    }
    out += line;
    if (i + 1 < lines.size()) out += '\n';
  }
  return out;
}

Result<trace::TraceStore> RebuildStoreDroppingDuplicates(
    std::vector<trace::Trip> trips, FaultReport* report) {
  trace::TraceStore store;
  for (trace::Trip& trip : trips) {
    Status status = store.AddTrip(std::move(trip));
    if (status.ok()) continue;
    if (status.code() == StatusCode::kAlreadyExists) {
      ++report->trips_dropped_duplicate_id;
      continue;
    }
    return status;
  }
  return store;
}

}  // namespace fault
}  // namespace taxitrace
