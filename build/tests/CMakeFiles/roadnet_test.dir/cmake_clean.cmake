file(REMOVE_RECURSE
  "CMakeFiles/roadnet_test.dir/roadnet_test.cc.o"
  "CMakeFiles/roadnet_test.dir/roadnet_test.cc.o.d"
  "roadnet_test"
  "roadnet_test.pdb"
  "roadnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
