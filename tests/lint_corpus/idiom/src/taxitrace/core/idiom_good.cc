// Known-good shapes the idiom rules must not flag: propagated or
// consumed Status, a valued Result, and scratch-owned search state.

#include "taxitrace/core/fake_api.h"

namespace taxitrace {

Status GoodPropagated() {
  TAXITRACE_RETURN_IF_ERROR(WriteThing(1));
  Status st = ReadThing(2);
  return st;
}

Result<int> GoodResult() {
  return Result<int>(42);
}

void GoodScratchReset(SearchScratch& scratch) {
  scratch.dist.assign(scratch.dist.size(), 1e18);
}

void GoodScratchRefill(SearchScratch& scratch, Rng& rng) {
  for (double& m : scratch.multipliers) m = rng.Uniform(0.75, 1.25);
}

double GoodReadOnlySweep(const std::vector<double>& multipliers) {
  double total = 0.0;
  for (const double m : multipliers) total += m;
  return total;
}

}  // namespace taxitrace
