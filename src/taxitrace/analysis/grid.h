// The 200 m x 200 m analysis grid (Section V): even-sized cells, chosen
// to hold enough measurement points per cell while capturing the effect
// of multiple map features.

#ifndef TAXITRACE_ANALYSIS_GRID_H_
#define TAXITRACE_ANALYSIS_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "taxitrace/common/hash.h"
#include "taxitrace/geo/geometry.h"
#include "taxitrace/roadnet/road_network.h"

namespace taxitrace {
namespace analysis {

/// Integer cell coordinates.
struct CellId {
  int32_t cx = 0;
  int32_t cy = 0;
  friend bool operator==(const CellId&, const CellId&) = default;
};

// Packs both signed coordinates into one word and runs the shared
// splitmix64 finaliser. The previous ad-hoc `cx * phi32 ^ (cy << 16)`
// mix left the low 16 output bits a function of cx alone, so every
// power-of-two bucket count collapsed whole grid columns into one
// bucket on real (structured, signed) grids.
struct CellIdHash {
  size_t operator()(const CellId& c) const {
    return static_cast<size_t>(HashCell2D(c.cx, c.cy));
  }
};

/// A uniform grid anchored at the local-frame origin.
class Grid {
 public:
  explicit Grid(double cell_size_m = 200.0);

  [[nodiscard]] double cell_size_m() const { return cell_size_m_; }

  /// Cell containing a point.
  [[nodiscard]] CellId CellOf(const geo::EnPoint& p) const;

  /// Centre point of a cell.
  [[nodiscard]] geo::EnPoint CellCenter(const CellId& c) const;

  /// Bounds of a cell.
  [[nodiscard]] geo::Bbox CellBounds(const CellId& c) const;

 private:
  double cell_size_m_;
};

/// Streaming per-cell mean/variance of point speeds (Welford).
class CellSpeedAccumulator {
 public:
  explicit CellSpeedAccumulator(const Grid& grid) : grid_(grid) {}

  /// Adds one measured point speed at a position.
  void Add(const geo::EnPoint& position, double speed_kmh);

  /// Folds another accumulator (over the same grid) into this one with
  /// the Chan et al. pairwise moment combination. Each cell's combined
  /// moments depend only on the two inputs, never on traversal order,
  /// but floating-point combination is not associative across *merge
  /// trees*: callers that want byte-identical results at any worker
  /// count must build the same fixed shards and fold them in the same
  /// canonical order regardless of how many threads computed them.
  void Merge(const CellSpeedAccumulator& other);

  /// Accumulated moments of one cell.
  struct Moments {
    int64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;  ///< Sum of squared deviations.

    [[nodiscard]] double Variance() const { return n > 1 ? m2 / (n - 1) : 0.0; }
  };

  [[nodiscard]]
  const std::unordered_map<CellId, Moments, CellIdHash>& cells() const {
    return cells_;
  }
  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] int64_t total_points() const { return total_points_; }

 private:
  Grid grid_;
  std::unordered_map<CellId, Moments, CellIdHash> cells_;
  int64_t total_points_ = 0;
};

/// Static feature counts of one cell.
struct CellFeatureCounts {
  int traffic_lights = 0;
  int bus_stops = 0;
  int pedestrian_crossings = 0;
  int junctions = 0;  ///< Graph junction vertices in the cell.
};

/// Feature counts for every cell touched by the network's features or
/// junction vertices.
std::unordered_map<CellId, CellFeatureCounts, CellIdHash>
ComputeCellFeatures(const roadnet::RoadNetwork& network, const Grid& grid);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_GRID_H_
