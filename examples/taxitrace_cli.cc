// taxitrace_cli: a file-based command-line front end to the library,
// composing the pipeline stages over CSV/GeoJSON artefacts so each step
// can be inspected or swapped:
//
//   taxitrace_cli generate-map <elements.csv> <features.csv> [seed]
//   taxitrace_cli simulate <elements.csv> <features.csv> <trips.csv>
//                 [cars] [days] [seed]
//   taxitrace_cli clean <trips.csv> <segments.csv>
//   taxitrace_cli match <elements.csv> <features.csv> <segments.csv>
//                 <routes.geojson> [max_trips]
//   taxitrace_cli analyze <segments.csv>
//   taxitrace_cli study [--metrics-json <out.json>] [--stream-ingest]
//                 [--ingest-lag <slots>] [--ingest-shuffle <slots>]
//                 [cars] [days]
//   taxitrace_cli serve [--bench] [--queries <n>] [--full]
//                 [--bench-json <out.json>] [cars] [days]
//
// `study` runs the end-to-end synthetic study (SmallStudy scale unless
// cars/days are given) with observability enabled and prints the stage
// funnel and span tree; --metrics-json additionally writes the full
// metrics snapshot (funnel, counters, gauges, histograms, spans).
// --stream-ingest replays every car's trace through the online
// ingestion path (bounded-lag order repair, per-window clean + match)
// instead of the batch stages and prints the ingest latency summary;
// --ingest-lag and --ingest-shuffle set the watermark lag and the
// adversarial arrival shuffle, both in arrival slots.
//
// `serve` runs a study, freezes it into a taxitrace-snapshot/1 buffer,
// and answers demonstration point/bbox/scenario-slice queries over it.
// --bench replays a hot-cell Zipf workload (1M queries unless
// --queries overrides it) through the executor and writes QPS and
// latency percentiles to BENCH_serve.json (--full benches the
// paper-scale study; TAXITRACE_BENCH_SMOKE=1 tags the JSON so smoke
// runs never pass for full numbers).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "taxitrace/analysis/grid.h"
#include "taxitrace/analysis/od_matrix.h"
#include "taxitrace/analysis/temporal.h"
#include "taxitrace/clean/cleaning_pipeline.h"
#include "taxitrace/common/histogram.h"
#include "taxitrace/common/strings.h"
#include "taxitrace/core/figures.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/reports.h"
#include "taxitrace/obs/observability.h"
#include "taxitrace/geo/simplify.h"
#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/model/significance.h"
#include "taxitrace/roadnet/map_io.h"
#include "taxitrace/serve/query_engine.h"
#include "taxitrace/serve/replay.h"
#include "taxitrace/serve/snapshot.h"
#include "taxitrace/stream/ingest_session.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/fleet_simulator.h"
#include "taxitrace/trace/trace_io.h"

namespace {

using namespace taxitrace;

const geo::LatLon kOrigin{65.0121, 25.4682};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int GenerateMap(int argc, char** argv) {
  if (argc < 4) return 2;
  synth::CityMapOptions options;
  if (argc > 4) options.seed = std::strtoull(argv[4], nullptr, 10);
  const Result<synth::CityMap> map = synth::GenerateCityMap(options);
  if (!map.ok()) return Fail(map.status());
  Status st = roadnet::WriteElementsFile(argv[2], map->source_elements);
  if (!st.ok()) return Fail(st);
  st = roadnet::WriteFeaturesFile(argv[3], map->source_features);
  if (!st.ok()) return Fail(st);
  std::printf("map: %zu traffic elements, %zu features -> %s, %s\n",
              map->source_elements.size(), map->source_features.size(),
              argv[2], argv[3]);
  return 0;
}

Result<synth::CityMap> LoadMap(const char* elements_path,
                               const char* features_path) {
  TAXITRACE_ASSIGN_OR_RETURN(const auto elements,
                             roadnet::ReadElementsFile(elements_path));
  TAXITRACE_ASSIGN_OR_RETURN(const auto features,
                             roadnet::ReadFeaturesFile(features_path));
  // Rebuild a CityMap-shaped world around the loaded inputs. Gates and
  // hotspots are generator artefacts; for CLI matching/analysis only the
  // network matters, so regenerate them from the default seed.
  TAXITRACE_ASSIGN_OR_RETURN(synth::CityMap map, synth::GenerateCityMap());
  TAXITRACE_ASSIGN_OR_RETURN(
      map.network,
      roadnet::PrepareRoadNetwork(elements, features, kOrigin));
  map.source_elements = elements;
  map.source_features = features;
  return map;
}

int Simulate(int argc, char** argv) {
  if (argc < 5) return 2;
  const Result<synth::CityMap> map = LoadMap(argv[2], argv[3]);
  if (!map.ok()) return Fail(map.status());
  synth::FleetOptions options;
  if (argc > 5) options.num_cars = std::atoi(argv[5]);
  if (argc > 6) options.num_days = std::atoi(argv[6]);
  if (argc > 7) options.seed = std::strtoull(argv[7], nullptr, 10);
  const synth::WeatherModel weather(options.seed + 1, options.num_days);
  const synth::FleetSimulator fleet(&*map, &weather, options);
  const Result<synth::FleetResult> result = fleet.Run();
  if (!result.ok()) return Fail(result.status());
  const Status st =
      trace::WriteTripsFile(argv[4], result->store.trips());
  if (!st.ok()) return Fail(st);
  std::printf("simulated %zu raw trips (%zu points) -> %s\n",
              result->store.NumTrips(), result->store.NumPoints(),
              argv[4]);
  return 0;
}

int Clean(int argc, char** argv) {
  if (argc < 4) return 2;
  const Result<std::vector<trace::Trip>> trips =
      trace::ReadTripsFile(argv[2]);
  if (!trips.ok()) return Fail(trips.status());
  trace::TraceStore store;
  for (const trace::Trip& t : *trips) {
    const Status st = store.AddTrip(t);
    if (!st.ok()) return Fail(st);
  }
  clean::CleaningReport report;
  const Result<std::vector<trace::Trip>> cleaned =
      clean::CleanTrips(store, {}, &report);
  if (!cleaned.ok()) return Fail(cleaned.status());
  const std::vector<trace::Trip>& segments = *cleaned;
  const Status st = trace::WriteTripsFile(argv[3], segments);
  if (!st.ok()) return Fail(st);
  std::printf("%s", core::FormatTable2Report(report).c_str());
  std::printf("cleaned segments -> %s\n", argv[3]);
  return 0;
}

int Match(int argc, char** argv) {
  if (argc < 6) return 2;
  const Result<synth::CityMap> map = LoadMap(argv[2], argv[3]);
  if (!map.ok()) return Fail(map.status());
  const Result<std::vector<trace::Trip>> segments =
      trace::ReadTripsFile(argv[4]);
  if (!segments.ok()) return Fail(segments.status());
  const size_t max_trips =
      argc > 6 ? static_cast<size_t>(std::atoll(argv[6])) : 200;

  const roadnet::SpatialIndex index(&map->network);
  const mapmatch::IncrementalMatcher matcher(&map->network, &index);
  const geo::LocalProjection& proj = map->network.projection();
  std::string json = "{\"type\":\"FeatureCollection\",\"features\":[";
  size_t matched_count = 0;
  for (const trace::Trip& segment : *segments) {
    if (matched_count >= max_trips) break;
    const Result<mapmatch::MatchedRoute> matched = matcher.Match(segment);
    if (!matched.ok()) continue;
    const geo::Polyline line = geo::Simplify(matched->geometry, 3.0);
    if (matched_count > 0) json += ",";
    json +=
        "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
        "\"coordinates\":[";
    for (size_t i = 0; i < line.points().size(); ++i) {
      if (i > 0) json += ",";
      const geo::LatLon ll = proj.Inverse(line.points()[i]);
      json += StrFormat("[%.6f,%.6f]", ll.lon_deg, ll.lat_deg);
    }
    json += StrFormat(
        "]},\"properties\":{\"trip_id\":%lld,\"length_m\":%.0f,"
        "\"gaps\":%d}}",
        static_cast<long long>(segment.trip_id), matched->length_m,
        matched->gaps_filled);
    ++matched_count;
  }
  json += "]}";
  const Status st = core::WriteTextFile(argv[5], json);
  if (!st.ok()) return Fail(st);
  std::printf("matched %zu segments -> %s\n", matched_count, argv[5]);
  return 0;
}

int Analyze(int argc, char** argv) {
  if (argc < 3) return 2;
  const Result<std::vector<trace::Trip>> segments =
      trace::ReadTripsFile(argv[2]);
  if (!segments.ok()) return Fail(segments.status());

  const geo::LocalProjection proj(kOrigin);
  const analysis::Grid grid(200.0);
  model::OneWayReml reml;
  std::unordered_map<analysis::CellId, size_t, analysis::CellIdHash>
      groups;
  Histogram speeds(0.0, 80.0, 16);
  std::vector<const trace::Trip*> trip_ptrs;
  for (const trace::Trip& t : *segments) trip_ptrs.push_back(&t);
  for (const trace::Trip& t : *segments) {
    for (const trace::RoutePoint& p : t.points) {
      const analysis::CellId cell =
          grid.CellOf(proj.Forward(p.position));
      const auto [it, inserted] = groups.emplace(cell, groups.size());
      reml.Add(it->second, p.speed_kmh);
      speeds.Add(p.speed_kmh);
    }
  }
  std::printf("%zu segments, %lld point speeds in %zu cells\n\n",
              segments->size(),
              static_cast<long long>(reml.num_observations()),
              groups.size());
  std::printf("Point speed distribution (km/h):\n%s\n",
              speeds.Render(40).c_str());

  const auto hourly = analysis::HourlySpeedSeries(trip_ptrs);
  std::printf("Rush-hour slowdown vs off-peak: %.1f km/h\n",
              analysis::RushHourSlowdownKmh(hourly));

  const auto flows = analysis::BuildOdMatrix(trip_ptrs, proj);
  std::printf("\nTop origin-destination flows (600 m zones):\n");
  for (size_t i = 0; i < flows.size() && i < 5; ++i) {
    std::printf(
        "  (%2d,%2d) -> (%2d,%2d): %lld trips, %.1f km, %.1f min mean\n",
        flows[i].origin.cx, flows[i].origin.cy, flows[i].destination.cx,
        flows[i].destination.cy, static_cast<long long>(flows[i].trips),
        flows[i].mean_distance_km, flows[i].mean_duration_min);
  }
  std::printf("  intra-zone share: %.0f%% of %lld trips\n",
              100.0 * analysis::IntraZoneShare(flows),
              static_cast<long long>(analysis::TotalFlows(flows)));

  const Result<model::OneWayRemlFit> fit = reml.Fit();
  if (fit.ok()) {
    const Result<model::RandomEffectLrt> lrt =
        model::TestRandomEffect(reml);
    std::printf(
        "Mixed model: mu %.1f km/h, cell sd %.1f, residual sd %.1f",
        fit->mu, std::sqrt(fit->sigma2_group),
        std::sqrt(fit->sigma2_residual));
    if (lrt.ok()) {
      std::printf(", geography LRT %.1f (p %s)", lrt->statistic,
                  lrt->p_value < 1e-12 ? "< 1e-12" : "small");
    }
    std::printf("\n");
  }
  return 0;
}

int Study(int argc, char** argv) {
  const char* metrics_path = nullptr;
  bool stream_ingest = false;
  int64_t ingest_lag = -1;
  int64_t ingest_shuffle = -1;
  std::vector<const char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0) {
      if (i + 1 >= argc) return 2;
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stream-ingest") == 0) {
      stream_ingest = true;
    } else if (std::strcmp(argv[i], "--ingest-lag") == 0) {
      if (i + 1 >= argc) return 2;
      ingest_lag = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--ingest-shuffle") == 0) {
      if (i + 1 >= argc) return 2;
      ingest_shuffle = std::atoll(argv[++i]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.observability.enabled = true;
  config.stream_ingestion = stream_ingest;
  if (ingest_lag >= 0) config.ingest.reorder_lag = ingest_lag;
  if (ingest_shuffle >= 0) {
    config.ingest.arrival_shuffle_window = ingest_shuffle;
  }
  if (!positional.empty()) config.fleet.num_cars = std::atoi(positional[0]);
  if (positional.size() > 1) {
    config.fleet.num_days = std::atoi(positional[1]);
  }
  if (config.fleet.num_cars <= 0 || config.fleet.num_days <= 0) return 2;

  const core::Pipeline pipeline(config);
  const Result<core::StudyResults> results = pipeline.Run();
  if (!results.ok()) return Fail(results.status());

  std::printf("study: %d cars x %d days, %lld raw trips, "
              "%zu matched transitions, mean speed %.1f km/h\n\n",
              config.fleet.num_cars, config.fleet.num_days,
              static_cast<long long>(results->raw_trips),
              results->transitions.size(),
              results->overall_mean_speed_kmh);
  if (stream_ingest) {
    const stream::IngestStats& ing = results->ingest_stats;
    std::printf(
        "online ingestion: lag %lld slots, shuffle window %lld, "
        "%lld points released / %lld offered (%lld late), "
        "%lld windows closed, latency p50/p90/p99/max = "
        "%lld/%lld/%lld/%lld slots, peak buffer %lld\n\n",
        static_cast<long long>(config.ingest.reorder_lag),
        static_cast<long long>(config.ingest.arrival_shuffle_window),
        static_cast<long long>(ing.points_released),
        static_cast<long long>(ing.points_offered),
        static_cast<long long>(ing.points_dropped_late),
        static_cast<long long>(ing.windows_closed),
        static_cast<long long>(stream::IngestLatencyQuantile(ing, 0.5)),
        static_cast<long long>(stream::IngestLatencyQuantile(ing, 0.9)),
        static_cast<long long>(stream::IngestLatencyQuantile(ing, 0.99)),
        static_cast<long long>(stream::IngestLatencyMax(ing)),
        static_cast<long long>(ing.peak_buffered_records));
  }
  std::printf("%s", obs::SnapshotText(results->observability).c_str());
  if (metrics_path != nullptr) {
    const Status st = core::WriteTextFile(
        metrics_path, obs::SnapshotJson(results->observability));
    if (!st.ok()) return Fail(st);
    std::printf("metrics snapshot -> %s\n", metrics_path);
  }
  return 0;
}

int Serve(int argc, char** argv) {
  bool bench = false;
  bool full = false;
  int64_t queries = 1'000'000;
  const char* bench_json = "BENCH_serve.json";
  std::vector<const char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench") == 0) {
      bench = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      if (i + 1 >= argc) return 2;
      queries = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--bench-json") == 0) {
      if (i + 1 >= argc) return 2;
      bench_json = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  core::StudyConfig config = full ? core::StudyConfig::FullStudy()
                                  : core::StudyConfig::SmallStudy();
  if (!positional.empty()) config.fleet.num_cars = std::atoi(positional[0]);
  if (positional.size() > 1) {
    config.fleet.num_days = std::atoi(positional[1]);
  }
  if (config.fleet.num_cars <= 0 || config.fleet.num_days <= 0 ||
      queries <= 0) {
    return 2;
  }
  const char* smoke_env = std::getenv("TAXITRACE_BENCH_SMOKE");
  const bool smoke =
      smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0';

  const core::Pipeline pipeline(config);
  const Result<core::StudyResults> results = pipeline.Run();
  if (!results.ok()) return Fail(results.status());

  const Executor executor(Executor::ResolveThreadCount(config.num_threads));
  using Clock = std::chrono::steady_clock;
  const Clock::time_point build_begin = Clock::now();
  const Result<std::string> bytes =
      serve::SnapshotBuilder().Build(*results, &executor);
  if (!bytes.ok()) return Fail(bytes.status());
  const double build_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - build_begin)
          .count();
  const Result<serve::Snapshot> snapshot = serve::Snapshot::FromBytes(*bytes);
  if (!snapshot.ok()) return Fail(snapshot.status());
  const serve::SnapshotMeta& meta = snapshot->meta();
  std::printf(
      "serve: %d cars x %d days -> taxitrace-snapshot/1, %zu bytes\n"
      "  %lld cells in [%d,%d]x[%d,%d], %lld slices, %lld points, "
      "built in %.1f ms\n\n",
      config.fleet.num_cars, config.fleet.num_days, snapshot->bytes().size(),
      static_cast<long long>(meta.num_cells), meta.min_cx, meta.max_cx,
      meta.min_cy, meta.max_cy, static_cast<long long>(meta.num_slices),
      static_cast<long long>(meta.total_points), build_ms);

  // Demonstration queries: the busiest cell as a point lookup, its
  // weekend slice, and a 3x3 bbox around it.
  int64_t hottest = -1;
  int64_t hottest_n = 0;
  for (int64_t i = 0; i < snapshot->num_cells(); ++i) {
    const int64_t n = snapshot->moments(0, i).n;
    if (n > hottest_n) {
      hottest_n = n;
      hottest = i;
    }
  }
  if (hottest >= 0) {
    serve::QueryEngine engine(&*snapshot);
    const analysis::Grid grid(meta.cell_size_m);
    const analysis::CellId cell = snapshot->cell(hottest);
    const geo::EnPoint center = grid.CellCenter(cell);
    serve::CellStats stats;
    if (engine.PointQuery(center, 0, &stats) ==
        serve::QueryOutcome::kAnswered) {
      std::printf(
          "  point (%.0f, %.0f) -> cell (%d,%d): n %lld, "
          "%.1f +/- %.1f km/h, blup %+.2f (model n %lld)\n",
          center.x, center.y, stats.cell.cx, stats.cell.cy,
          static_cast<long long>(stats.n), stats.mean_speed_kmh,
          std::sqrt(stats.speed_variance), stats.model.blup,
          static_cast<long long>(stats.model.n));
    }
    if (engine.SliceQuery(center, serve::SliceKind::kDayType, 1, &stats) ==
        serve::QueryOutcome::kAnswered) {
      std::printf("  weekend slice          -> n %lld, %.1f km/h\n",
                  static_cast<long long>(stats.n), stats.mean_speed_kmh);
    }
    const geo::Bbox cell_bounds = grid.CellBounds(cell);
    const geo::Bbox box{cell_bounds.min_x - meta.cell_size_m,
                        cell_bounds.min_y - meta.cell_size_m,
                        cell_bounds.max_x + meta.cell_size_m,
                        cell_bounds.max_y + meta.cell_size_m};
    std::vector<serve::CellStats> box_stats;
    if (engine.BboxQuery(box, 0, &box_stats) ==
        serve::QueryOutcome::kAnswered) {
      int64_t box_n = 0;
      for (const serve::CellStats& s : box_stats) box_n += s.n;
      std::printf("  3x3 bbox               -> %zu cells, %lld points\n\n",
                  box_stats.size(), static_cast<long long>(box_n));
    }
  }
  if (!bench) return 0;

  serve::WorkloadOptions workload;
  workload.num_queries = queries;
  obs::MetricsRegistry metrics;
  obs::FunnelLedger funnel;
  const Result<serve::ReplayResult> replay = serve::ReplayWorkload(
      *snapshot, workload, &executor, &metrics, &funnel);
  if (!replay.ok()) return Fail(replay.status());
  std::printf("%s\n", funnel.Table().c_str());
  std::printf(
      "replay: %lld queries (%d workers), %.1f ms wall -> %.0f qps\n"
      "  latency p50/p90/p99/max = %.2f/%.2f/%.2f/%.2f us, "
      "digest 0x%016llx\n",
      static_cast<long long>(replay->num_queries), executor.num_threads(),
      replay->wall_ms, replay->qps, replay->p50_us, replay->p90_us,
      replay->p99_us, replay->max_us,
      static_cast<unsigned long long>(replay->digest));

  std::string json;
  char line[512];
  json += "{\n";
  json += "  \"schema\": \"taxitrace-bench-serve/1\",\n";
  std::snprintf(line, sizeof line, "  \"smoke\": %s,\n",
                smoke ? "true" : "false");
  json += line;
  std::snprintf(line, sizeof line,
                "  \"study\": {\"cars\": %d, \"days\": %d},\n",
                config.fleet.num_cars, config.fleet.num_days);
  json += line;
  std::snprintf(line, sizeof line,
                "  \"snapshot\": {\"bytes\": %zu, \"cells\": %lld, "
                "\"slices\": %lld, \"build_ms\": %.2f},\n",
                snapshot->bytes().size(),
                static_cast<long long>(meta.num_cells),
                static_cast<long long>(meta.num_slices), build_ms);
  json += line;
  std::snprintf(
      line, sizeof line,
      "  \"workload\": {\"queries\": %lld, \"zipf_exponent\": %.2f,\n"
      "    \"point_share\": %.2f, \"bbox_share\": %.2f, "
      "\"slice_share\": %.2f, \"shards\": %d},\n",
      static_cast<long long>(workload.num_queries), workload.zipf_exponent,
      workload.point_share, workload.bbox_share, workload.slice_share,
      workload.num_shards);
  json += line;
  std::snprintf(
      line, sizeof line,
      "  \"funnel\": {\"offered\": %lld, \"answered\": %lld,\n"
      "    \"out_of_bounds\": %lld, \"empty_cell\": %lld},\n",
      static_cast<long long>(replay->stats.offered),
      static_cast<long long>(replay->stats.answered),
      static_cast<long long>(replay->stats.out_of_bounds),
      static_cast<long long>(replay->stats.empty_cell));
  json += line;
  std::snprintf(line, sizeof line,
                "  \"latency_us\": {\"p50\": %.2f, \"p90\": %.2f, "
                "\"p99\": %.2f, \"max\": %.2f},\n",
                replay->p50_us, replay->p90_us, replay->p99_us,
                replay->max_us);
  json += line;
  std::snprintf(line, sizeof line,
                "  \"throughput\": {\"wall_ms\": %.2f, \"qps\": %.0f, "
                "\"workers\": %d},\n",
                replay->wall_ms, replay->qps, executor.num_threads());
  json += line;
  std::snprintf(line, sizeof line, "  \"digest\": \"0x%016llx\"\n",
                static_cast<unsigned long long>(replay->digest));
  json += line;
  json += "}\n";
  const Status st = core::WriteTextFile(bench_json, json);
  if (!st.ok()) return Fail(st);
  std::printf("bench data -> %s\n", bench_json);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: taxitrace_cli "
        "generate-map|simulate|clean|match|analyze|study|serve ...\n");
    return 2;
  }
  int rc = 2;
  if (std::strcmp(argv[1], "generate-map") == 0) {
    rc = GenerateMap(argc, argv);
  } else if (std::strcmp(argv[1], "simulate") == 0) {
    rc = Simulate(argc, argv);
  } else if (std::strcmp(argv[1], "clean") == 0) {
    rc = Clean(argc, argv);
  } else if (std::strcmp(argv[1], "match") == 0) {
    rc = Match(argc, argv);
  } else if (std::strcmp(argv[1], "analyze") == 0) {
    rc = Analyze(argc, argv);
  } else if (std::strcmp(argv[1], "study") == 0) {
    rc = Study(argc, argv);
  } else if (std::strcmp(argv[1], "serve") == 0) {
    rc = Serve(argc, argv);
  }
  if (rc == 2) {
    std::fprintf(stderr, "bad arguments; see the header comment\n");
  }
  return rc;
}
