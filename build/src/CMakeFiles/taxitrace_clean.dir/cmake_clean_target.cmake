file(REMOVE_RECURSE
  "libtaxitrace_clean.a"
)
