file(REMOVE_RECURSE
  "CMakeFiles/flows_robustness_test.dir/flows_robustness_test.cc.o"
  "CMakeFiles/flows_robustness_test.dir/flows_robustness_test.cc.o.d"
  "flows_robustness_test"
  "flows_robustness_test.pdb"
  "flows_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flows_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
