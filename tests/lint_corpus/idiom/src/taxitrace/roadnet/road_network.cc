// The tiled accessor layer itself: the ONLY place allowed to
// subscript the per-tile storage vectors. No expect markers — if
// flat-graph-index ever fires here, the self-test fails.

#include "taxitrace/core/fake_api.h"

namespace taxitrace {
namespace roadnet {

const Vertex& RoadNetwork::vertex(VertexId id) const {
  return tiles_[TileIndexOf(id)].vertices[LocalIdOf(id)];
}

const Edge& RoadNetwork::edge(EdgeId id) const {
  return tiles_[TileIndexOf(id)].edges[LocalIdOf(id)];
}

}  // namespace roadnet
}  // namespace taxitrace
