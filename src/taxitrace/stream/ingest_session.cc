#include "taxitrace/stream/ingest_session.h"

#include <algorithm>
#include <utility>

#include "taxitrace/common/check.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace stream {

void IngestStats::Add(const IngestStats& other) {
  points_offered += other.points_offered;
  trip_markers_offered += other.trip_markers_offered;
  points_released += other.points_released;
  trip_markers_released += other.trip_markers_released;
  points_dropped_late += other.points_dropped_late;
  trip_markers_dropped_late += other.trip_markers_dropped_late;
  slots_declared_lost += other.slots_declared_lost;
  windows_opened += other.windows_opened;
  windows_opened_implicit += other.windows_opened_implicit;
  windows_closed += other.windows_closed;
  peak_buffered_records =
      std::max(peak_buffered_records, other.peak_buffered_records);
  if (latency_hist.size() < other.latency_hist.size()) {
    latency_hist.resize(other.latency_hist.size(), 0);
  }
  for (size_t i = 0; i < other.latency_hist.size(); ++i) {
    latency_hist[i] += other.latency_hist[i];
  }
}

int64_t IngestLatencyQuantile(const IngestStats& stats, double q) {
  int64_t total = 0;
  for (const int64_t n : stats.latency_hist) total += n;
  if (total == 0) return 0;
  const double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t b = 0; b < stats.latency_hist.size(); ++b) {
    cumulative += stats.latency_hist[b];
    if (static_cast<double>(cumulative) >= rank) {
      return static_cast<int64_t>(b);
    }
  }
  return static_cast<int64_t>(stats.latency_hist.size()) - 1;
}

int64_t IngestLatencyMax(const IngestStats& stats) {
  for (size_t b = stats.latency_hist.size(); b > 0; --b) {
    if (stats.latency_hist[b - 1] > 0) return static_cast<int64_t>(b - 1);
  }
  return 0;
}

IngestSession::IngestSession(int car_id, const IngestOptions& options,
                             trace::TripSink* sink)
    : car_id_(car_id), options_(options), sink_(sink) {
  TT_CHECK(options_.reorder_lag >= 0);
  // One bucket per latency value the lossless contract allows, plus an
  // overflow bucket for anything beyond the lag (late floods can stall
  // a buffered record past the bound; the overflow keeps that visible).
  stats_.latency_hist.assign(static_cast<size_t>(options_.reorder_lag) + 2,
                             0);
}

void IngestSession::RecordLatency(int64_t latency_slots) {
  const auto last = stats_.latency_hist.size() - 1;
  const size_t bucket =
      std::min(static_cast<size_t>(std::max<int64_t>(latency_slots, 0)),
               last);
  ++stats_.latency_hist[bucket];
}

Status IngestSession::CloseWindow() {
  if (!window_open_) return Status::OK();
  window_open_ = false;
  ++stats_.windows_closed;
  trace::Trip finished = std::move(window_);
  window_ = trace::Trip{};
  if (sink_ != nullptr) {
    return sink_->Consume(std::move(finished));
  }
  return Status::OK();
}

Status IngestSession::Release(const BufferedRecord& buffered) {
  RecordLatency(arrivals_ - buffered.arrived_at);
  const StreamRecord& rec = buffered.record;
  if (rec.kind == StreamRecord::Kind::kTripBegin) {
    ++stats_.trip_markers_released;
    TAXITRACE_RETURN_IF_ERROR(CloseWindow());
    window_open_ = true;
    ++stats_.windows_opened;
    window_.trip_id = rec.trip_id;
    window_.car_id = rec.car_id;
    window_.total_time_s = rec.total_time_s;
    window_.total_distance_m = rec.total_distance_m;
    window_.total_fuel_ml = rec.total_fuel_ml;
    return Status::OK();
  }
  ++stats_.points_released;
  if (!window_open_ || window_.trip_id != rec.trip_id) {
    // The container's marker was lost or is still late: open the window
    // implicitly so its points survive (with zeroed device totals — the
    // marker carried them and it is gone).
    TAXITRACE_RETURN_IF_ERROR(CloseWindow());
    window_open_ = true;
    ++stats_.windows_opened;
    ++stats_.windows_opened_implicit;
    window_.trip_id = rec.trip_id;
    window_.car_id = rec.car_id;
  }
  window_.points.push_back(rec.point);
  return Status::OK();
}

Status IngestSession::DrainReady() {
  while (true) {
    if (!buffer_.empty() && buffer_.begin()->first == next_expected_) {
      const BufferedRecord ready = std::move(buffer_.begin()->second);
      buffer_.erase(buffer_.begin());
      ++next_expected_;
      TAXITRACE_RETURN_IF_ERROR(Release(ready));
      continue;
    }
    // Watermark close: the head of the stream has run `reorder_lag`
    // slots past the oldest gap — stop waiting for it.
    if (max_seq_ - next_expected_ > options_.reorder_lag) {
      ++stats_.slots_declared_lost;
      ++next_expected_;
      continue;
    }
    break;
  }
  stats_.peak_buffered_records =
      std::max(stats_.peak_buffered_records,
               static_cast<int64_t>(buffer_.size()));
  return Status::OK();
}

Status IngestSession::Ingest(const StreamRecord& record) {
  if (finished_) {
    return Status::FailedPrecondition(
        "IngestSession::Ingest after FinishStream");
  }
  if (record.car_id != car_id_) {
    return Status::InvalidArgument(
        StrFormat("record for car %d ingested into session of car %d",
                  record.car_id, car_id_));
  }
  ++arrivals_;
  const bool is_point = record.kind == StreamRecord::Kind::kPoint;
  if (is_point) {
    ++stats_.points_offered;
  } else {
    ++stats_.trip_markers_offered;
  }
  // Behind the watermark (slot already released or declared lost), or a
  // duplicate of a buffered slot: an explicit, counted drop.
  if (record.seq < next_expected_ ||
      buffer_.find(record.seq) != buffer_.end()) {
    if (is_point) {
      ++stats_.points_dropped_late;
    } else {
      ++stats_.trip_markers_dropped_late;
    }
    return Status::OK();
  }
  buffer_.emplace(record.seq, BufferedRecord{record, arrivals_});
  max_seq_ = std::max(max_seq_, record.seq);
  return DrainReady();
}

Status IngestSession::FinishStream() {
  if (finished_) return Status::OK();
  finished_ = true;
  // End of stream: every remaining gap is a loss, everything buffered
  // beyond it is released in seq order.
  while (!buffer_.empty()) {
    if (buffer_.begin()->first != next_expected_) {
      ++stats_.slots_declared_lost;
      ++next_expected_;
      continue;
    }
    const BufferedRecord ready = std::move(buffer_.begin()->second);
    buffer_.erase(buffer_.begin());
    ++next_expected_;
    TAXITRACE_RETURN_IF_ERROR(Release(ready));
  }
  return CloseWindow();
}

}  // namespace stream
}  // namespace taxitrace
