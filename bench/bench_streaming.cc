// Online ingestion bench: per-point release latency percentiles and
// window-flush throughput of the stream_ingestion path, plus the
// batch-vs-online wall-clock comparison on the same study. Emits
// BENCH_streaming.json (schema taxitrace-bench-streaming/1); smoke
// mode shrinks the study and tags the file so the JSON of record is
// only rewritten by full runs.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/stream/ingest_session.h"
#include "taxitrace/stream/stream_source.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/fleet_simulator.h"

namespace taxitrace {
namespace {

constexpr int64_t kLag = 64;
constexpr int64_t kShuffle = kLag / 2;  // The lossless bound.

core::StudyConfig StreamingConfig(bool smoke) {
  core::StudyConfig config =
      smoke ? core::StudyConfig::SmallStudy() : core::StudyConfig::FullStudy();
  config.stream_ingestion = true;
  config.ingest.reorder_lag = kLag;
  config.ingest.arrival_shuffle_window = kShuffle;
  return config;
}

void PrintStreaming() {
  const char* smoke_env = std::getenv("TAXITRACE_BENCH_SMOKE");
  const bool smoke =
      smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0';

  // Online run: every point arrives up to kShuffle slots out of order
  // and the ingester repairs, cleans and matches per closed window.
  const core::StudyConfig config = StreamingConfig(smoke);
  const core::StudyResults online = benchutil::RunStudyOrExit(
      config, smoke ? "streamed small study" : "streamed full study");
  const stream::IngestStats& s = online.ingest_stats;

  // The batch run over the identical trace, for the wall-clock
  // comparison (results are byte-identical by the equivalence tests).
  core::StudyConfig batch_config = config;
  batch_config.stream_ingestion = false;
  const core::StudyResults batch =
      benchutil::RunStudyOrExit(batch_config, "batch comparison study");

  const int64_t p50 = stream::IngestLatencyQuantile(s, 0.50);
  const int64_t p90 = stream::IngestLatencyQuantile(s, 0.90);
  const int64_t p99 = stream::IngestLatencyQuantile(s, 0.99);
  const int64_t max = stream::IngestLatencyMax(s);
  const double ingest_ms = online.timings.stream_ingest_ms;
  const double batch_ms =
      batch.timings.cleaning_ms + batch.timings.selection_matching_ms;
  const double points_per_ms =
      ingest_ms > 0.0 ? static_cast<double>(s.points_released) / ingest_ms
                      : 0.0;
  const double windows_per_s =
      ingest_ms > 0.0
          ? static_cast<double>(s.windows_closed) * 1000.0 / ingest_ms
          : 0.0;

  std::string json;
  char line[512];
  json += "{\n";
  json += "  \"schema\": \"taxitrace-bench-streaming/1\",\n";
  std::snprintf(line, sizeof line, "  \"smoke\": %s,\n",
                smoke ? "true" : "false");
  json += line;
  std::snprintf(line, sizeof line,
                "  \"study\": {\"cars\": %d, \"days\": %d},\n",
                config.fleet.num_cars, config.fleet.num_days);
  json += line;
  std::snprintf(
      line, sizeof line,
      "  \"ingest\": {\"reorder_lag\": %lld, \"shuffle_window\": %lld,\n"
      "    \"points_offered\": %lld, \"points_released\": %lld, "
      "\"points_dropped_late\": %lld,\n"
      "    \"windows_closed\": %lld, \"peak_buffered_records\": %lld},\n",
      static_cast<long long>(kLag), static_cast<long long>(kShuffle),
      static_cast<long long>(s.points_offered),
      static_cast<long long>(s.points_released),
      static_cast<long long>(s.points_dropped_late),
      static_cast<long long>(s.windows_closed),
      static_cast<long long>(s.peak_buffered_records));
  json += line;
  std::snprintf(
      line, sizeof line,
      "  \"latency_slots\": {\"p50\": %lld, \"p90\": %lld, \"p99\": %lld, "
      "\"max\": %lld,\n    \"within_configured_lag\": %s},\n",
      static_cast<long long>(p50), static_cast<long long>(p90),
      static_cast<long long>(p99), static_cast<long long>(max),
      p99 <= kLag ? "true" : "false");
  json += line;
  std::snprintf(
      line, sizeof line,
      "  \"throughput\": {\"stream_ingest_ms\": %.2f, "
      "\"points_per_ms\": %.1f, \"window_flushes_per_s\": %.1f},\n",
      ingest_ms, points_per_ms, windows_per_s);
  json += line;
  std::snprintf(
      line, sizeof line,
      "  \"batch_comparison\": {\"cleaning_ms\": %.2f, "
      "\"selection_matching_ms\": %.2f, \"batch_total_ms\": %.2f,\n"
      "    \"online_vs_batch\": %.2f}\n",
      batch.timings.cleaning_ms, batch.timings.selection_matching_ms,
      batch_ms, batch_ms > 0.0 ? ingest_ms / batch_ms : 0.0);
  json += line;
  json += "}\n";
  benchutil::EmitFigureFile("BENCH_streaming.json", json);

  std::printf(
      "STREAMING INGESTION (%s, lag %lld, shuffle %lld):\n"
      "  %lld points in %lld windows, ingest %.1f ms "
      "(%.0f points/ms, %.0f window flushes/s)\n"
      "  latency p50/p90/p99/max = %lld/%lld/%lld/%lld slots "
      "(p99 within lag: %s), peak buffer %lld\n"
      "  batch clean+match on the same trace: %.1f ms\n\n",
      smoke ? "smoke" : "full", static_cast<long long>(kLag),
      static_cast<long long>(kShuffle),
      static_cast<long long>(s.points_released),
      static_cast<long long>(s.windows_closed), ingest_ms, points_per_ms,
      windows_per_s, static_cast<long long>(p50),
      static_cast<long long>(p90), static_cast<long long>(p99),
      static_cast<long long>(max), p99 <= kLag ? "yes" : "NO",
      static_cast<long long>(s.peak_buffered_records), batch_ms);
}

// The raw session in isolation: one car's shuffled arrival stream
// ingested count-only (null sink), so the number is the reorder
// machinery itself — buffer churn, watermark advance, latency
// accounting — without cleaning or matching behind it.
void BM_IngestSessionByShuffle(benchmark::State& state) {
  static const std::vector<stream::CarStream>* streams = [] {
    const synth::CityMap map = synth::GenerateCityMap().value();
    const synth::WeatherModel weather(19121, 7);
    synth::FleetOptions options;
    options.num_cars = 1;
    options.num_days = 7;
    const synth::FleetSimulator fleet(&map, &weather, options);
    const synth::FleetResult result = fleet.Run().value();
    return new std::vector<stream::CarStream>(
        stream::BuildCarStreams(result.store));
  }();
  std::vector<stream::StreamRecord> records = (*streams)[0].records;
  stream::ShuffleArrivals(&records, /*seed=*/7, state.range(0));
  stream::IngestOptions options;
  options.reorder_lag = 2 * state.range(0) > 0 ? 2 * state.range(0) : kLag;
  int64_t released = 0;
  for (auto _ : state) {
    stream::IngestSession session((*streams)[0].car_id, options,
                                  /*sink=*/nullptr);
    for (const stream::StreamRecord& rec : records) {
      benchmark::DoNotOptimize(session.Ingest(rec));
    }
    benchmark::DoNotOptimize(session.FinishStream());
    released = session.stats().points_released;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
  state.counters["points_released"] = static_cast<double>(released);
}
BENCHMARK(BM_IngestSessionByShuffle)
    ->Arg(0)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

// The full online path end to end, by worker count: the number that
// shows ingestion scaling like the batch stages it replaces.
void BM_StreamIngestStudyByThreads(benchmark::State& state) {
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.stream_ingestion = true;
  config.ingest.reorder_lag = kLag;
  config.ingest.arrival_shuffle_window = kShuffle;
  config.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::Pipeline pipeline(config);
    auto results = pipeline.Run();
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_StreamIngestStudyByThreads)
    ->Arg(0)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintStreaming)
