#include "taxitrace/clean/trip_filter.h"

namespace taxitrace {
namespace clean {

bool PassesTripFilter(const trace::Trip& trip,
                      const TripFilterOptions& options) {
  return trip.points.size() >= options.min_points &&
         trace::PathLengthMeters(trip.points) <= options.max_length_m;
}

std::vector<trace::Trip> FilterTrips(std::vector<trace::Trip> trips,
                                     const TripFilterOptions& options,
                                     TripFilterStats* stats) {
  std::vector<trace::Trip> out;
  out.reserve(trips.size());
  for (trace::Trip& trip : trips) {
    if (trip.points.size() < options.min_points) {
      if (stats != nullptr) ++stats->removed_too_few_points;
      continue;
    }
    if (trace::PathLengthMeters(trip.points) > options.max_length_m) {
      if (stats != nullptr) ++stats->removed_too_long;
      continue;
    }
    if (stats != nullptr) ++stats->kept;
    out.push_back(std::move(trip));
  }
  return out;
}

}  // namespace clean
}  // namespace taxitrace
