#include "taxitrace/analysis/bootstrap.h"

#include <algorithm>

#include "taxitrace/analysis/summary_stats.h"

namespace taxitrace {
namespace analysis {

BootstrapInterval BootstrapTransitions(
    const std::vector<TransitionRecord>& records,
    const std::function<double(const std::vector<TransitionRecord>&)>&
        statistic,
    const BootstrapOptions& options) {
  BootstrapInterval out;
  if (records.empty() || options.replicates <= 0) return out;
  out.estimate = statistic(records);
  out.replicates = options.replicates;

  Rng rng(options.seed);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(options.replicates));
  std::vector<TransitionRecord> resampled(records.size());
  for (int r = 0; r < options.replicates; ++r) {
    for (size_t i = 0; i < records.size(); ++i) {
      resampled[i] = records[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(records.size()) - 1))];
    }
    values.push_back(statistic(resampled));
  }
  std::sort(values.begin(), values.end());
  const double alpha = (1.0 - options.confidence) / 2.0;
  out.lo = SortedQuantile(values, alpha);
  out.hi = SortedQuantile(values, 1.0 - alpha);
  return out;
}

double MeanLowSpeedPct(const std::vector<TransitionRecord>& records,
                       const std::string& direction) {
  double sum = 0.0;
  int64_t n = 0;
  for (const TransitionRecord& r : records) {
    if (r.direction != direction) continue;
    sum += 100.0 * r.low_speed_share;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace analysis
}  // namespace taxitrace
