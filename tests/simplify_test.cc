#include <gtest/gtest.h>

#include "taxitrace/common/random.h"
#include "taxitrace/geo/simplify.h"

namespace taxitrace {
namespace geo {
namespace {

TEST(SimplifyTest, CollinearPointsCollapse) {
  const Polyline line({{0, 0}, {10, 0}, {20, 0}, {30, 0}});
  const Polyline simplified = Simplify(line, 1.0);
  EXPECT_EQ(simplified.size(), 2u);
  EXPECT_EQ(simplified.front(), (EnPoint{0, 0}));
  EXPECT_EQ(simplified.back(), (EnPoint{30, 0}));
}

TEST(SimplifyTest, SignificantCornerKept) {
  const Polyline line({{0, 0}, {50, 0}, {50, 50}});
  const Polyline simplified = Simplify(line, 5.0);
  EXPECT_EQ(simplified.size(), 3u);
}

TEST(SimplifyTest, SmallWiggleRemoved) {
  const Polyline line({{0, 0}, {25, 2}, {50, 0}});
  EXPECT_EQ(Simplify(line, 5.0).size(), 2u);
  EXPECT_EQ(Simplify(line, 1.0).size(), 3u);
}

TEST(SimplifyTest, EndpointsAlwaysKept) {
  Rng rng(3);
  std::vector<EnPoint> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back(EnPoint{i * 10.0, rng.Uniform(-3.0, 3.0)});
  }
  const Polyline line(pts);
  const Polyline simplified = Simplify(line, 8.0);
  EXPECT_EQ(simplified.front(), line.front());
  EXPECT_EQ(simplified.back(), line.back());
  EXPECT_LT(simplified.size(), line.size());
}

TEST(SimplifyTest, DegenerateInputsUnchanged) {
  EXPECT_EQ(Simplify(Polyline(), 5.0).size(), 0u);
  EXPECT_EQ(Simplify(Polyline({{1, 1}}), 5.0).size(), 1u);
  EXPECT_EQ(Simplify(Polyline({{0, 0}, {1, 1}}), 5.0).size(), 2u);
  const Polyline line({{0, 0}, {10, 5}, {20, 0}});
  EXPECT_EQ(Simplify(line, 0.0).size(), 3u);  // zero tolerance: no-op
}

// Property: every original vertex stays within tolerance of the
// simplified line.
class SimplifyToleranceTest : public testing::TestWithParam<double> {};

TEST_P(SimplifyToleranceTest, ErrorBounded) {
  Rng rng(static_cast<uint64_t>(GetParam() * 100.0));
  std::vector<EnPoint> pts{{0, 0}};
  for (int i = 0; i < 60; ++i) {
    pts.push_back(pts.back() +
                  EnPoint{rng.Uniform(5, 25), rng.Uniform(-15, 15)});
  }
  const Polyline line(pts);
  const Polyline simplified = Simplify(line, GetParam());
  for (const EnPoint& p : line.points()) {
    EXPECT_LE(simplified.Project(p).distance, GetParam() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Tolerances, SimplifyToleranceTest,
                         testing::Values(2.0, 5.0, 10.0, 30.0));

}  // namespace
}  // namespace geo
}  // namespace taxitrace
