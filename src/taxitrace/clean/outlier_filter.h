// Removal of the most obvious measurement errors: duplicated records and
// gross GPS position spikes.

#ifndef TAXITRACE_CLEAN_OUTLIER_FILTER_H_
#define TAXITRACE_CLEAN_OUTLIER_FILTER_H_

#include <vector>

#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace clean {

/// Thresholds for the error filters.
struct OutlierFilterOptions {
  /// Maximum physically plausible speed implied by consecutive fixes,
  /// m/s (45 m/s = 162 km/h, far above anything drivable downtown).
  double max_implied_speed_ms = 45.0;
  /// A point is a spike when it sits farther than this from both
  /// neighbours while the neighbours are close to each other, metres.
  double spike_distance_m = 250.0;
  /// Neighbour closeness for the spike test, fraction of the detour.
  double spike_closeness_ratio = 0.5;
};

/// Aggregate counts over a filter run.
struct OutlierFilterStats {
  int64_t duplicates_removed = 0;
  int64_t spikes_removed = 0;
  int64_t implied_speed_removed = 0;
};

/// Removes duplicated records (same point id and timestamp) and GPS
/// spikes from a point sequence ordered in time. Endpoints are kept
/// unless they fail the implied-speed test.
void FilterOutliers(std::vector<trace::RoutePoint>* points,
                    const OutlierFilterOptions& options = {},
                    OutlierFilterStats* stats = nullptr);

/// Trip-level convenience wrapper (recomputes totals).
void FilterTripOutliers(trace::Trip* trip,
                        const OutlierFilterOptions& options = {},
                        OutlierFilterStats* stats = nullptr);

}  // namespace clean
}  // namespace taxitrace

#endif  // TAXITRACE_CLEAN_OUTLIER_FILTER_H_
