#include "taxitrace/geo/coordinates.h"

#include <cmath>

#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace geo {
namespace {

constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

double HaversineMeters(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double sdlat = std::sin(dlat / 2.0);
  const double sdlon = std::sin(dlon / 2.0);
  const double h =
      sdlat * sdlat + std::cos(lat1) * std::cos(lat2) * sdlon * sdlon;
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(std::min(1.0, h)));
}

LocalProjection::LocalProjection(const LatLon& origin) : origin_(origin) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kDegToRad;
  meters_per_deg_lon_ =
      kEarthRadiusMeters * kDegToRad * std::cos(origin.lat_deg * kDegToRad);
}

EnPoint LocalProjection::Forward(const LatLon& p) const {
  return EnPoint{(p.lon_deg - origin_.lon_deg) * meters_per_deg_lon_,
                 (p.lat_deg - origin_.lat_deg) * meters_per_deg_lat_};
}

LatLon LocalProjection::Inverse(const EnPoint& p) const {
  return LatLon{origin_.lat_deg + p.y / meters_per_deg_lat_,
                origin_.lon_deg + p.x / meters_per_deg_lon_};
}

std::string ToWktPoint(const LatLon& p, int decimals) {
  return StrFormat("POINT(%.*f, %.*f)", decimals, p.lon_deg, decimals,
                   p.lat_deg);
}

}  // namespace geo
}  // namespace taxitrace
