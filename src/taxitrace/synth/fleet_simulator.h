// Fleet simulator: generates a year of raw taxi traces for a fleet of
// cars over a generated city — the stand-in for the seven Driveco-
// equipped taxis that collected the paper's data in Oulu during
// 1.10.2012-31.9.2013.
//
// The simulation reproduces the taxi-specific behaviours the paper's
// methods target: day-long engine-on runs covering many customers (so
// time-based segmentation is required), stand waits between customers,
// short repositioning hops, and free route choice between origins and
// destinations.

#ifndef TAXITRACE_SYNTH_FLEET_SIMULATOR_H_
#define TAXITRACE_SYNTH_FLEET_SIMULATOR_H_

#include "taxitrace/common/executor.h"
#include "taxitrace/common/result.h"
#include "taxitrace/synth/driver_model.h"
#include "taxitrace/synth/pedestrian_model.h"
#include "taxitrace/synth/sensor_model.h"
#include "taxitrace/synth/weather_model.h"
#include "taxitrace/trace/trace_store.h"
#include "taxitrace/trace/trip_sink.h"

namespace taxitrace {
namespace synth {

/// Fleet-level knobs. Defaults approximate the paper's collection
/// campaign (7 taxis, one year, ~30 000 trips).
struct FleetOptions {
  int num_cars = 7;
  int num_days = 365;
  uint64_t seed = 20121001;
  /// Mean customer drives per car-day (scaled per car by an activity
  /// factor in [0.6, 1.45]).
  double mean_customers_per_day = 11.0;
  /// Floor on the per-day customer draw. The default keeps every
  /// car-day active (the study model); 0 lets a near-idle fleet
  /// produce genuinely empty (car, day) shards, which the streaming
  /// reorder merge must release past without stalling.
  int min_customers_per_day = 1;
  /// Probability the engine is switched off after a drop-off (ends the
  /// raw trip); otherwise the engine keeps running through the wait.
  double engine_off_prob = 0.72;
  /// Probability that a customer trip starts / ends at one of the T, S,
  /// L gate roads (entering or leaving the downtown area).
  double gate_origin_prob = 0.12;
  double gate_dest_prob = 0.12;
  /// Probability of a short repositioning hop after a drop-off.
  double reposition_prob = 0.30;
  /// Route-choice preference noise: per-trip edge cost multipliers are
  /// drawn from [1 - noise, 1 + noise].
  double route_weight_noise = 0.25;
  DriverOptions driver;
  SensorOptions sensor;
};

/// Relative taxi demand at an hour of day (mean ~1 over a day): morning
/// and afternoon peaks on weekdays, an evening/night peak on weekends.
/// Waits between customers scale inversely with demand.
double TaxiDemandWeight(double hour_of_day, bool weekend);

/// Outcome of a simulation run.
struct FleetResult {
  trace::TraceStore store;        ///< Raw (uncleaned) trips.
  int64_t num_customer_drives = 0;
  int64_t num_reposition_drives = 0;
};

/// Counters from a streaming simulation run. The drive and trip/point
/// totals are deterministic in the seed; `peak_buffered_shards` is the
/// reorder buffer's high-water mark — the only simulation state that
/// scales with parallelism rather than with one shard, and the number
/// the bounded-memory benchmark reports.
struct FleetRunStats {
  int64_t num_customer_drives = 0;
  int64_t num_reposition_drives = 0;
  int64_t trips_simulated = 0;   ///< Trips delivered to the sink.
  int64_t points_simulated = 0;  ///< Raw points across those trips.
  /// Most (car, day) shard outputs ever held back waiting for an
  /// earlier shard to finish (1 on a serial run).
  int64_t peak_buffered_shards = 0;
};

/// Simulates the fleet. Holds pointers to the map and weather model,
/// which must outlive it.
class FleetSimulator {
 public:
  /// `pedestrians` (optional) supplies time-varying crowd activity; when
  /// null the simulator builds its own from `options.seed + 17`.
  FleetSimulator(const CityMap* map, const WeatherModel* weather,
                 FleetOptions options = {},
                 const PedestrianModel* pedestrians = nullptr);

  /// Runs the full simulation. Deterministic in options.seed.
  ///
  /// The work is sharded into one unit per (car, day); every shard's
  /// randomness comes from the stream `MixSeed(seed, car, day + 1)`
  /// (car-level traits from `MixSeed(seed, car, 0)`), and shard outputs
  /// are merged in (car, day) order, so the stored trips are
  /// bit-identical at any thread count. `executor == nullptr` (or a
  /// 0-thread executor) runs the shards serially, in shard order.
  ///
  /// Trip ids and point ids are allocated per shard from disjoint,
  /// (car, day)-ascending ranges: trip ids are unique fleet-wide and
  /// point ids stay strictly increasing per car across the whole
  /// campaign, as the real device counters would be.
  ///
  /// Accumulates every trip into the returned store — a thin wrapper
  /// over the streaming overload below with a StoreTripSink.
  Result<FleetResult> Run(const Executor* executor = nullptr) const;

  /// Streaming form: finished trips are handed to `sink` one at a time,
  /// in strict (car, day, trip) order regardless of worker count, and
  /// never accumulate inside the simulator. Out-of-order shard
  /// completions wait in a reorder buffer whose high-water mark is
  /// reported in the returned stats; with W workers it stays around W,
  /// so peak memory is bounded by per-shard state — the property that
  /// makes 1000-car × multi-day runs feasible. Sink calls happen under
  /// the simulator's merge lock: they are serialised and need no
  /// synchronisation in the sink, but long sink work throttles the
  /// pipeline. A sink error aborts the run and is returned.
  Result<FleetRunStats> Run(const Executor* executor,
                            trace::TripSink* sink) const;

  [[nodiscard]] const FleetOptions& options() const { return options_; }

 private:
  const CityMap* map_;
  const WeatherModel* weather_;
  const PedestrianModel* pedestrians_;
  FleetOptions options_;
};

}  // namespace synth
}  // namespace taxitrace

#endif  // TAXITRACE_SYNTH_FLEET_SIMULATOR_H_
