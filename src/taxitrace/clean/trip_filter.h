// Final segment filters (Section IV-C): segments with fewer than five
// route points give poor information; segments longer than 30 km are
// implausible in the local region.

#ifndef TAXITRACE_CLEAN_TRIP_FILTER_H_
#define TAXITRACE_CLEAN_TRIP_FILTER_H_

#include <vector>

#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace clean {

/// Filter thresholds.
struct TripFilterOptions {
  size_t min_points = 5;
  double max_length_m = 30000.0;
};

/// Aggregate counts over a filter run.
struct TripFilterStats {
  int64_t removed_too_few_points = 0;
  int64_t removed_too_long = 0;
  int64_t kept = 0;
};

/// True when a trip survives the filters.
bool PassesTripFilter(const trace::Trip& trip,
                      const TripFilterOptions& options = {});

/// Keeps only the trips that pass.
std::vector<trace::Trip> FilterTrips(std::vector<trace::Trip> trips,
                                     const TripFilterOptions& options = {},
                                     TripFilterStats* stats = nullptr);

}  // namespace clean
}  // namespace taxitrace

#endif  // TAXITRACE_CLEAN_TRIP_FILTER_H_
