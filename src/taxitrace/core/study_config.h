// Study configuration: every stage's options bundled, with presets for
// the paper-scale study and a fast reduced study for tests and examples.

#ifndef TAXITRACE_CORE_STUDY_CONFIG_H_
#define TAXITRACE_CORE_STUDY_CONFIG_H_

#include "taxitrace/analysis/speed_categories.h"
#include "taxitrace/clean/cleaning_pipeline.h"
#include "taxitrace/fault/fault_plan.h"
#include "taxitrace/mapattr/attribute_fetcher.h"
#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/obs/observability.h"
#include "taxitrace/odselect/od_gate.h"
#include "taxitrace/odselect/transition_filter.h"
#include "taxitrace/stream/ingest_session.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/fleet_simulator.h"

namespace taxitrace {
namespace core {

/// All knobs of the end-to-end study.
struct StudyConfig {
  synth::CityMapOptions map;
  uint64_t weather_seed = 19121;
  synth::FleetOptions fleet;
  clean::CleaningOptions cleaning;
  odselect::OdGateOptions gate;
  odselect::TransitionFilterOptions transition_filter;
  mapmatch::MatcherOptions matcher;
  mapattr::AttributeFetcherOptions attributes;
  analysis::SpeedCategoryOptions speed;
  /// Analysis grid cell size (the paper's 200 m).
  double grid_cell_m = 200.0;

  /// Fault-injection plan applied to the raw traces between simulation
  /// and cleaning. All probabilities default to zero (no injection, no
  /// extra work); any nonzero probability also enables the cleaning
  /// sanitiser so the corrupted study still runs end to end.
  fault::FaultPlan faults;

  /// Metrics / tracing / funnel collection. Off by default: a disabled
  /// run takes the exact pre-observability code paths (no registry, no
  /// funnel, empty StudyResults::observability).
  obs::ObservabilityOptions observability;

  /// Chain simulation -> cleaning per raw trip instead of materialising
  /// the whole raw trace store first. Each finished trip is cleaned as
  /// it leaves the simulator's ordered merge and only its surviving
  /// segments are kept, so peak memory is bounded by per-(car, day)
  /// state rather than the campaign's full point count — what makes
  /// 1000-car studies fit. StudyResults are byte-identical to the
  /// in-memory path at any worker count; only StageTimings shift
  /// (cleaning work lands inside the simulation span). When a
  /// FaultPlan is active the pipeline falls back to the in-memory path:
  /// file-level faults corrupt one CSV view of the whole store, which
  /// has no per-trip equivalent.
  bool stream_simulation = false;

  /// Online ingestion: rebuild each car's raw trace as an arrival
  /// stream (stream/stream_source.h), undo bounded reordering with a
  /// watermark that trails the stream head by `ingest.reorder_lag`
  /// slots, and run cleaning + matching per window as it closes —
  /// point-in, matched-segment-out with bounded latency instead of
  /// per-trip batches. StudyResults are byte-identical to the batch
  /// path at any worker count whenever every arrival displacement fits
  /// the lossless bound (reorder_lag / 2); records beyond it become
  /// counted funnel drops (`points.ingested`), never silent losses.
  /// Takes precedence over stream_simulation: ingestion consumes the
  /// materialised (and possibly fault-corrupted) store, exactly what
  /// batch cleaning would have seen.
  bool stream_ingestion = false;
  stream::IngestOptions ingest;

  /// Worker threads for the parallel stages (simulation, cleaning,
  /// selection + matching): 0 = serial, -1 = resolve from the
  /// TAXITRACE_THREADS environment variable (else all hardware
  /// threads). Results are byte-identical at any value.
  int num_threads = -1;

  /// The paper-scale study: 7 taxis, 365 days.
  static StudyConfig FullStudy();

  /// A reduced study (fewer cars/days) that runs in seconds; same code
  /// paths, smaller counts.
  static StudyConfig SmallStudy();
};

}  // namespace core
}  // namespace taxitrace

#endif  // TAXITRACE_CORE_STUDY_CONFIG_H_
