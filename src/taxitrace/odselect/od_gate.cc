#include "taxitrace/odselect/od_gate.h"

#include <cmath>

namespace taxitrace {
namespace odselect {

OdGate::OdGate(std::string name, geo::Polyline inbound_geometry,
               const OdGateOptions& options)
    : name_(std::move(name)),
      geometry_(std::move(inbound_geometry)),
      polygon_(geo::BufferPolyline(geometry_, options.half_width_m)),
      options_(options) {}

OdGate::Crossing OdGate::Classify(const geo::EnPoint& a,
                                  const geo::EnPoint& b) const {
  const geo::Segment move{a, b};
  if (move.Length() < 1e-6) return Crossing::kNone;
  if (!polygon_.IntersectsSegment(move)) return Crossing::kNone;

  // Road axis at the point of passage: heading of the gate geometry
  // nearest to the movement's midpoint.
  const geo::EnPoint mid = a + 0.5 * (b - a);
  const geo::PolylineProjection proj = geometry_.Project(mid);
  const double road_heading = geometry_.SegmentHeading(proj.segment_index);
  const double angle =
      geo::AngleBetweenHeadings(move.Heading(), road_heading);
  const double window = options_.max_angle_deg * M_PI / 180.0;
  if (angle <= window) return Crossing::kInbound;
  if (angle >= M_PI - window) return Crossing::kOutbound;
  return Crossing::kNone;
}

double OdGate::DistanceToRoad(const geo::EnPoint& p) const {
  return geometry_.Project(p).distance;
}

}  // namespace odselect
}  // namespace taxitrace
