// Tile-local id packing for the road graph (the valhalla
// midgard/tiles + baldr/graphtile idiom): every VertexId / EdgeId is a
// 31-bit payload split into a dense tile index (high bits) and a
// tile-local ordinal (low bits). The sign bit is never set, so
// kInvalidVertex / kInvalidEdge (-1) survive unchanged and ids stay
// ordinary int32_t at every call site.
//
// Layout (bit 31 = sign, always 0 for valid ids):
//
//   31 30........20 19..............0
//   [0][ tile index ][ local ordinal ]
//
// A tile index is NOT a spatial coordinate: tiles are numbered densely
// in first-touch order by the builder, and a separate directory maps
// the spatial TileCoord of each tile to its index. Single-tile maps
// (tile_size_m == 0, the default) put everything in tile 0, so packed
// ids equal the historical dense ids bit-for-bit — golden digests and
// id-seeded RNG streams are unaffected unless tiling is requested.

#ifndef TAXITRACE_ROADNET_TILE_H_
#define TAXITRACE_ROADNET_TILE_H_

#include <cmath>
#include <cstdint>

#include "taxitrace/common/check.h"
#include "taxitrace/common/hash.h"
#include "taxitrace/geo/coordinates.h"

namespace taxitrace {
namespace roadnet {

/// Dense index of a tile within a RoadNetwork (assignment order).
using TileIndex = int32_t;

/// Bits reserved for the tile-local ordinal: up to 2^20 (~1M) vertices
/// or edges per tile, and 2^11 = 2048 tiles per network.
inline constexpr int kTileLocalBits = 20;
inline constexpr int32_t kMaxLocalId = (INT32_C(1) << kTileLocalBits) - 1;
inline constexpr TileIndex kMaxTiles = INT32_C(1)
                                       << (31 - kTileLocalBits);  // 2048

static_assert(kTileLocalBits > 0 && kTileLocalBits < 31,
              "local ordinal and tile index must both fit below the sign bit");

/// Packs a (tile, local) pair into a 31-bit id. Both components must be
/// in range; the result is always non-negative.
[[nodiscard]] inline constexpr int32_t PackTiledId(TileIndex tile,
                                                   int32_t local) {
  return (tile << kTileLocalBits) | local;
}

/// Tile index of a packed id (id must be valid, i.e. >= 0).
[[nodiscard]] inline constexpr TileIndex TileIndexOf(int32_t id) {
  return id >> kTileLocalBits;
}

/// Tile-local ordinal of a packed id (id must be valid, i.e. >= 0).
[[nodiscard]] inline constexpr int32_t LocalIdOf(int32_t id) {
  return id & kMaxLocalId;
}

/// Spatial coordinate of a tile on the fixed-size tile lattice: floor
/// division of the local east/north frame by the tile edge length.
/// Negative coordinates are legal (the frame origin is mid-map).
struct TileCoord {
  int32_t tx = 0;
  int32_t ty = 0;

  friend bool operator==(const TileCoord& a, const TileCoord& b) {
    return a.tx == b.tx && a.ty == b.ty;
  }
  friend bool operator!=(const TileCoord& a, const TileCoord& b) {
    return !(a == b);
  }
};

/// Hasher for TileCoord-keyed directories (shared splitmix64 mix, so
/// lattice structure never survives power-of-two bucket masking).
struct TileCoordHash {
  size_t operator()(const TileCoord& c) const {
    return static_cast<size_t>(HashCell2D(c.tx, c.ty));
  }
};

/// The tile containing `p` on a lattice of `tile_size_m`-sized squares.
/// `tile_size_m` must be positive; single-tile networks never call this.
[[nodiscard]] inline TileCoord TileCoordOfPoint(const geo::EnPoint& p,
                                                double tile_size_m) {
  TT_DCHECK(tile_size_m > 0.0);
  return TileCoord{static_cast<int32_t>(std::floor(p.x / tile_size_m)),
                   static_cast<int32_t>(std::floor(p.y / tile_size_m))};
}

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_TILE_H_
