# Empty compiler generated dependencies file for bench_ablation_order_repair.
# This may be replaced when dependencies are built.
