// Ordinary least squares, the baseline of the paper's Eq. (1):
// Y = X b + e, e ~ N(0, sigma^2 I).

#ifndef TAXITRACE_MODEL_OLS_H_
#define TAXITRACE_MODEL_OLS_H_

#include "taxitrace/common/result.h"
#include "taxitrace/model/matrix.h"

namespace taxitrace {
namespace model {

/// A fitted linear model.
struct OlsFit {
  Vector coefficients;
  Vector standard_errors;
  double sigma2 = 0.0;       ///< Residual variance estimate.
  double r_squared = 0.0;
  int64_t n = 0;
};

/// Streaming OLS over sufficient statistics (X'X, X'y, y'y).
class OlsAccumulator {
 public:
  /// `num_predictors` includes the intercept column if the caller adds
  /// one to each row.
  explicit OlsAccumulator(size_t num_predictors);

  /// Adds one observation. `x.size()` must equal num_predictors.
  void Add(const Vector& x, double y);

  /// Fits the model. Fails when X'X is singular or n <= p.
  Result<OlsFit> Fit() const;

  [[nodiscard]] int64_t n() const { return n_; }

 private:
  size_t p_;
  Matrix xtx_;
  Vector xty_;
  double yty_ = 0.0;
  double y_sum_ = 0.0;
  int64_t n_ = 0;
};

}  // namespace model
}  // namespace taxitrace

#endif  // TAXITRACE_MODEL_OLS_H_
