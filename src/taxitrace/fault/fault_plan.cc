#include "taxitrace/fault/fault_plan.h"

namespace taxitrace {
namespace fault {

FaultPlan FaultPlan::Uniform(double rate) {
  FaultPlan plan;
  plan.nan_coord_prob = rate;
  plan.clock_jump_prob = rate;
  plan.negative_speed_prob = rate;
  plan.swap_coord_prob = rate;
  plan.duplicate_trip_prob = rate;
  plan.empty_trip_prob = rate;
  plan.single_point_trip_prob = rate;
  plan.interleave_trip_prob = rate;
  plan.truncate_row_prob = rate;
  plan.wrong_columns_prob = rate;
  plan.junk_bytes_prob = rate;
  return plan;
}

bool FaultPlan::Any() const { return AnyTraceFaults() || AnyFileFaults(); }

bool FaultPlan::AnyTraceFaults() const {
  return nan_coord_prob > 0.0 || clock_jump_prob > 0.0 ||
         negative_speed_prob > 0.0 || swap_coord_prob > 0.0 ||
         duplicate_trip_prob > 0.0 || empty_trip_prob > 0.0 ||
         single_point_trip_prob > 0.0 || interleave_trip_prob > 0.0;
}

bool FaultPlan::AnyFileFaults() const {
  return truncate_row_prob > 0.0 || wrong_columns_prob > 0.0 ||
         junk_bytes_prob > 0.0;
}

}  // namespace fault
}  // namespace taxitrace
