// Minimal RFC-4180-flavoured CSV reading and writing.
//
// Used for trace persistence and for emitting the table/figure data series
// of the reproduction. Supports quoted fields containing separators,
// quotes and newlines.

#ifndef TAXITRACE_COMMON_CSV_H_
#define TAXITRACE_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "taxitrace/common/result.h"

namespace taxitrace {

/// One parsed CSV record.
using CsvRow = std::vector<std::string>;

/// Parses a full CSV document. Handles quoted fields ("a,b" stays one
/// field, "" is an escaped quote) and both \n and \r\n line endings.
/// A trailing newline does not produce an empty final row.
Result<std::vector<CsvRow>> ParseCsv(std::string_view text);

/// ParseCsv plus width validation: every row (header included) must
/// have exactly `expected_columns` fields, otherwise the parse fails
/// with the offending row number and its field count. Use this instead
/// of ParseCsv whenever the document has a fixed schema — a short row
/// otherwise surfaces much later as a confusing empty-field error.
Result<std::vector<CsvRow>> ParseCsvChecked(std::string_view text,
                                            size_t expected_columns);

/// Line-oriented, never-failing parse for corrupted input: each input
/// line becomes one row (quoting is honoured within a line; a quote
/// left open at the end of a line only poisons that line, not the
/// document). Callers are expected to validate each row themselves and
/// drop the bad ones — see trace::TripsFromCsvLenient.
std::vector<CsvRow> ParseCsvLenient(std::string_view text);

/// Serialises rows to CSV text, quoting fields only when needed.
std::string WriteCsv(const std::vector<CsvRow>& rows);

/// Reads and parses a CSV file from disk.
Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path);

/// Writes rows to a CSV file, replacing any existing contents.
Status WriteCsvFile(const std::string& path,
                    const std::vector<CsvRow>& rows);

}  // namespace taxitrace

#endif  // TAXITRACE_COMMON_CSV_H_
