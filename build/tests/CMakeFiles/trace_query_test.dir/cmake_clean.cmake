file(REMOVE_RECURSE
  "CMakeFiles/trace_query_test.dir/trace_query_test.cc.o"
  "CMakeFiles/trace_query_test.dir/trace_query_test.cc.o.d"
  "trace_query_test"
  "trace_query_test.pdb"
  "trace_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
