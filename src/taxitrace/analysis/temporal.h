// Temporal analysis: mean point speed by hour of day and by day of
// week, exposing the rush-hour and weekday/weekend structure in the
// traces (the traffic-dynamics line of the paper's related work).

#ifndef TAXITRACE_ANALYSIS_TEMPORAL_H_
#define TAXITRACE_ANALYSIS_TEMPORAL_H_

#include <vector>

#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace analysis {

/// One hour-of-day bucket.
struct HourlySpeed {
  int hour = 0;  ///< 0..23
  int64_t n = 0;
  double mean_kmh = 0.0;
};

/// One day-of-week bucket (0 = Monday .. 6 = Sunday).
struct DailySpeed {
  int day_of_week = 0;
  int64_t n = 0;
  double mean_kmh = 0.0;
};

/// Mean point speed per hour of day over trips' route points. Always
/// returns 24 buckets (empty ones with n = 0).
std::vector<HourlySpeed> HourlySpeedSeries(
    const std::vector<const trace::Trip*>& trips);

/// Mean point speed per ISO day of week. Always returns 7 buckets.
std::vector<DailySpeed> DailySpeedSeries(
    const std::vector<const trace::Trip*>& trips);

/// Difference between the off-peak mean (10:00-14:00) and the rush-hour
/// mean (07:00-09:00 and 15:00-17:00), km/h; positive when rush hours
/// are slower. 0 when either window has no data.
double RushHourSlowdownKmh(const std::vector<HourlySpeed>& series);

}  // namespace analysis
}  // namespace taxitrace

#endif  // TAXITRACE_ANALYSIS_TEMPORAL_H_
