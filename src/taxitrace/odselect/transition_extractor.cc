#include "taxitrace/odselect/transition_extractor.h"

#include <algorithm>
#include <set>

namespace taxitrace {
namespace odselect {

TransitionExtractor::TransitionExtractor(
    std::vector<OdGate> gates, const geo::LocalProjection& projection)
    : gates_(std::move(gates)), projection_(projection) {
  gate_bounds_.reserve(gates_.size());
  for (const OdGate& g : gates_) gate_bounds_.push_back(g.polygon().Bounds());
}

std::vector<GateCrossing> TransitionExtractor::FindCrossings(
    const trace::Trip& trip) const {
  std::vector<GateCrossing> crossings;
  if (trip.points.size() < 2) return crossings;

  // Trajectory bounds, computed in lat/lon before paying to project
  // every point: Forward() is affine with positive scales, so min/max
  // commute with it exactly and projecting the two corners yields the
  // same box as projecting every point first.
  geo::LatLon lo = trip.points.front().position;
  geo::LatLon hi = lo;
  for (const trace::RoutePoint& rp : trip.points) {
    lo.lat_deg = std::min(lo.lat_deg, rp.position.lat_deg);
    lo.lon_deg = std::min(lo.lon_deg, rp.position.lon_deg);
    hi.lat_deg = std::max(hi.lat_deg, rp.position.lat_deg);
    hi.lon_deg = std::max(hi.lon_deg, rp.position.lon_deg);
  }
  geo::Bbox trip_box = geo::Bbox::Empty();
  trip_box.Extend(projection_.Forward(lo));
  trip_box.Extend(projection_.Forward(hi));
  // Gates the trip can reach at all: a gate whose polygon bounds miss
  // the whole trajectory's bounds can never classify any of its steps.
  std::vector<size_t> reachable;
  for (size_t g = 0; g < gates_.size(); ++g) {
    if (gate_bounds_[g].Intersects(trip_box)) reachable.push_back(g);
  }
  if (reachable.empty()) return crossings;

  std::vector<geo::EnPoint> local(trip.points.size());
  for (size_t i = 0; i < trip.points.size(); ++i) {
    local[i] = projection_.Forward(trip.points[i].position);
  }

  for (size_t i = 0; i + 1 < local.size(); ++i) {
    // Movement bbox, built once per step: almost every step is far from
    // every gate, and the bbox-vs-bbox reject below answers those steps
    // without touching gate geometry.
    geo::Bbox move_box = geo::Bbox::Empty();
    move_box.Extend(local[i]);
    move_box.Extend(local[i + 1]);
    for (const size_t g : reachable) {
      if (!gate_bounds_[g].Intersects(move_box)) continue;
      const OdGate::Crossing c = gates_[g].Classify(local[i], local[i + 1]);
      if (c == OdGate::Crossing::kNone) continue;
      // Collapse consecutive detections of the same traversal (several
      // successive movement segments can lie inside the thick polygon).
      if (!crossings.empty() && crossings.back().gate_index == g &&
          crossings.back().direction == c &&
          i - crossings.back().last_point_index <= 3) {
        crossings.back().last_point_index = i;
        continue;
      }
      crossings.push_back(
          GateCrossing{g, i, i, c, trip.points[i].timestamp_s});
    }
  }
  return crossings;
}

TripGateAnalysis TransitionExtractor::Analyze(
    const trace::Trip& trip) const {
  TripGateAnalysis analysis;
  const std::vector<GateCrossing> crossings = FindCrossings(trip);
  analysis.crosses_gate_at_angle = !crossings.empty();
  {
    std::set<size_t> distinct;
    for (const GateCrossing& c : crossings) distinct.insert(c.gate_index);
    analysis.distinct_gates_crossed = static_cast<int>(distinct.size());
  }

  // Pair each inbound crossing with the next outbound crossing of a
  // different gate; a newer inbound crossing supersedes a pending one.
  const GateCrossing* pending_inbound = nullptr;
  for (const GateCrossing& c : crossings) {
    if (c.direction == OdGate::Crossing::kInbound) {
      pending_inbound = &c;
      continue;
    }
    if (pending_inbound == nullptr ||
        pending_inbound->gate_index == c.gate_index) {
      continue;
    }
    Transition t;
    t.origin = gates_[pending_inbound->gate_index].name();
    t.destination = gates_[c.gate_index].name();
    // The transition runs from the first contact with the origin road to
    // the end of the traversal of the destination road.
    const size_t first = pending_inbound->point_index;
    const size_t last =
        std::min(c.last_point_index + 1, trip.points.size() - 1);
    t.segment.trip_id = trip.trip_id;
    t.segment.car_id = trip.car_id;
    t.segment.points.assign(
        trip.points.begin() + static_cast<ptrdiff_t>(first),
        trip.points.begin() + static_cast<ptrdiff_t>(last) + 1);
    t.segment.RecomputeTotals();
    analysis.transitions.push_back(std::move(t));
    pending_inbound = nullptr;
  }
  return analysis;
}

}  // namespace odselect
}  // namespace taxitrace
