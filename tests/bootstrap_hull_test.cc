#include <gtest/gtest.h>

#include "taxitrace/analysis/bootstrap.h"
#include "taxitrace/common/random.h"
#include "taxitrace/core/figures.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/geo/convex_hull.h"

namespace taxitrace {
namespace {

// --- Convex hull ---------------------------------------------------------------

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  const geo::Polygon hull = geo::ConvexHull(
      {{0, 0}, {10, 0}, {10, 10}, {0, 10}, {5, 5}, {3, 7}, {2, 2}});
  ASSERT_EQ(hull.ring().size(), 4u);
  EXPECT_NEAR(hull.SignedArea(), 100.0, 1e-9);  // CCW
  EXPECT_TRUE(hull.Contains(geo::EnPoint{5, 5}));
  EXPECT_FALSE(hull.Contains(geo::EnPoint{11, 5}));
}

TEST(ConvexHullTest, CollinearPointsCollapse) {
  EXPECT_TRUE(geo::ConvexHull({{0, 0}, {5, 5}, {10, 10}}).empty());
  EXPECT_TRUE(geo::ConvexHull({{0, 0}, {1, 1}}).empty());
  EXPECT_TRUE(geo::ConvexHull({}).empty());
  EXPECT_TRUE(geo::ConvexHull({{1, 1}, {1, 1}, {1, 1}}).empty());
}

TEST(ConvexHullTest, HullContainsAllInputs) {
  Rng rng(5);
  std::vector<geo::EnPoint> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back(
        geo::EnPoint{rng.Gaussian(0, 100), rng.Gaussian(0, 100)});
  }
  const geo::Polygon hull = geo::ConvexHull(points);
  ASSERT_FALSE(hull.empty());
  EXPECT_GT(hull.SignedArea(), 0.0);  // counterclockwise
  for (const geo::EnPoint& p : points) {
    EXPECT_TRUE(hull.Contains(p));
  }
  // The hull is minimal: every hull vertex is an input point.
  for (const geo::EnPoint& v : hull.ring()) {
    bool found = false;
    for (const geo::EnPoint& p : points) {
      if (p == v) found = true;
    }
    EXPECT_TRUE(found);
  }
}

// --- Bootstrap ------------------------------------------------------------------

std::vector<analysis::TransitionRecord> FakeRecords(int n, double mean,
                                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<analysis::TransitionRecord> out;
  for (int i = 0; i < n; ++i) {
    analysis::TransitionRecord r;
    r.direction = "S-T";
    r.low_speed_share =
        std::clamp(mean + rng.Gaussian(0.0, 0.08), 0.0, 1.0);
    out.push_back(r);
  }
  return out;
}

TEST(BootstrapTest, IntervalCoversEstimate) {
  const auto records = FakeRecords(60, 0.3, 7);
  const auto stat = [](const std::vector<analysis::TransitionRecord>& r) {
    return analysis::MeanLowSpeedPct(r, "S-T");
  };
  const analysis::BootstrapInterval ci =
      analysis::BootstrapTransitions(records, stat);
  EXPECT_EQ(ci.replicates, 1000);
  EXPECT_TRUE(ci.Contains(ci.estimate));
  EXPECT_NEAR(ci.estimate, 30.0, 4.0);
  EXPECT_GT(ci.Width(), 0.0);
  EXPECT_LT(ci.Width(), 10.0);
}

TEST(BootstrapTest, WidthShrinksWithSampleSize) {
  const auto stat = [](const std::vector<analysis::TransitionRecord>& r) {
    return analysis::MeanLowSpeedPct(r, "S-T");
  };
  const analysis::BootstrapInterval small =
      analysis::BootstrapTransitions(FakeRecords(20, 0.3, 11), stat);
  const analysis::BootstrapInterval large =
      analysis::BootstrapTransitions(FakeRecords(500, 0.3, 11), stat);
  EXPECT_LT(large.Width(), small.Width());
}

TEST(BootstrapTest, Deterministic) {
  const auto records = FakeRecords(40, 0.25, 13);
  const auto stat = [](const std::vector<analysis::TransitionRecord>& r) {
    return analysis::MeanLowSpeedPct(r, "S-T");
  };
  const auto a = analysis::BootstrapTransitions(records, stat);
  const auto b = analysis::BootstrapTransitions(records, stat);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapTest, EmptyInput) {
  const auto stat = [](const std::vector<analysis::TransitionRecord>&) {
    return 1.0;
  };
  const analysis::BootstrapInterval ci =
      analysis::BootstrapTransitions({}, stat);
  EXPECT_EQ(ci.replicates, 0);
  EXPECT_DOUBLE_EQ(ci.Width(), 0.0);
}

TEST(BootstrapTest, MeanLowSpeedPctHandlesMissingDirection) {
  EXPECT_DOUBLE_EQ(
      analysis::MeanLowSpeedPct(FakeRecords(5, 0.2, 3), "T-L"), 0.0);
}

// --- Fig. 2 gates layer --------------------------------------------------------

TEST(GatesGeoJsonTest, ContainsGatesAndCentralArea) {
  core::Pipeline pipeline(core::StudyConfig::SmallStudy());
  const core::StudyResults results = pipeline.Run().value();
  const std::string json = core::GatesGeoJson(results);
  EXPECT_NE(json.find("\"gate\":\"T\""), std::string::npos);
  EXPECT_NE(json.find("\"gate\":\"S\""), std::string::npos);
  EXPECT_NE(json.find("\"gate\":\"L\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"thick_geometry\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"central_area\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace taxitrace
