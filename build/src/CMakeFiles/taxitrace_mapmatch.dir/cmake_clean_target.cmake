file(REMOVE_RECURSE
  "libtaxitrace_mapmatch.a"
)
