#include "taxitrace/analysis/od_matrix.h"

#include <algorithm>
#include <unordered_map>

namespace taxitrace {
namespace analysis {
namespace {

struct OdKey {
  CellId origin;
  CellId destination;
  friend bool operator==(const OdKey&, const OdKey&) = default;
};

struct OdKeyHash {
  size_t operator()(const OdKey& k) const {
    const CellIdHash h;
    return h(k.origin) * 0x9E3779B97F4A7C15ULL ^ h(k.destination);
  }
};

}  // namespace

std::vector<OdFlow> BuildOdMatrix(
    const std::vector<const trace::Trip*>& trips,
    const geo::LocalProjection& projection,
    const OdMatrixOptions& options) {
  const Grid zones(options.zone_size_m);
  struct Accumulator {
    OdFlow flow;
    double dist_sum = 0.0;
    double time_sum = 0.0;
  };
  std::unordered_map<OdKey, Accumulator, OdKeyHash> flows;
  for (const trace::Trip* trip : trips) {
    if (trip == nullptr || trip->points.size() < 2) continue;
    const CellId origin =
        zones.CellOf(projection.Forward(trip->points.front().position));
    const CellId destination =
        zones.CellOf(projection.Forward(trip->points.back().position));
    Accumulator& acc = flows[OdKey{origin, destination}];
    acc.flow.origin = origin;
    acc.flow.destination = destination;
    ++acc.flow.trips;
    acc.dist_sum += trace::PathLengthMeters(trip->points) / 1000.0;
    acc.time_sum += trace::TimeSpanSeconds(trip->points) / 60.0;
  }
  std::vector<OdFlow> out;
  out.reserve(flows.size());
  for (auto& [key, acc] : flows) {
    const double n = static_cast<double>(acc.flow.trips);
    acc.flow.mean_distance_km = acc.dist_sum / n;
    acc.flow.mean_duration_min = acc.time_sum / n;
    out.push_back(acc.flow);
  }
  // Tie-break on the cell coordinates themselves: comparing hashes is
  // not a total order (same-origin flows and hash collisions compare
  // equal both ways) and ties the row order to the hash function.
  std::sort(out.begin(), out.end(), [](const OdFlow& a, const OdFlow& b) {
    if (a.trips != b.trips) return a.trips > b.trips;
    if (a.origin.cx != b.origin.cx) return a.origin.cx < b.origin.cx;
    if (a.origin.cy != b.origin.cy) return a.origin.cy < b.origin.cy;
    if (a.destination.cx != b.destination.cx) {
      return a.destination.cx < b.destination.cx;
    }
    return a.destination.cy < b.destination.cy;
  });
  return out;
}

int64_t TotalFlows(const std::vector<OdFlow>& flows) {
  int64_t total = 0;
  for (const OdFlow& f : flows) total += f.trips;
  return total;
}

double IntraZoneShare(const std::vector<OdFlow>& flows) {
  const int64_t total = TotalFlows(flows);
  if (total == 0) return 0.0;
  int64_t intra = 0;
  for (const OdFlow& f : flows) {
    if (f.origin == f.destination) intra += f.trips;
  }
  return static_cast<double>(intra) / static_cast<double>(total);
}

}  // namespace analysis
}  // namespace taxitrace
