// Transition filters: direction-set selection, the central-area
// containment check, and the post-map-matching endpoint check — the last
// three columns of Table 3.

#ifndef TAXITRACE_ODSELECT_TRANSITION_FILTER_H_
#define TAXITRACE_ODSELECT_TRANSITION_FILTER_H_

#include <string>
#include <vector>

#include "taxitrace/odselect/transition_extractor.h"

namespace taxitrace {
namespace odselect {

/// Filter thresholds.
struct TransitionFilterOptions {
  /// Directions of interest (Fig. 2 red arrows).
  std::vector<std::string> directions = {"T-L", "L-T", "T-S", "S-T"};
  /// Minimum fraction of the transition's route points that must lie
  /// inside the central-area polygon.
  double central_fraction = 0.65;
  /// Maximum distance of a transition's matched endpoints from the
  /// origin/destination roads, metres (post-filter).
  double endpoint_max_distance_m = 45.0;
};

/// True when the transition's direction label is in the selected set.
bool IsSelectedDirection(const Transition& transition,
                         const TransitionFilterOptions& options);

/// True when the transition happens within the central area: every point
/// stays inside `region` (the study area with margin) and at least
/// `central_fraction` of the points lie inside `central_area`.
bool IsWithinCentralArea(const Transition& transition,
                         const geo::Polygon& central_area,
                         const geo::Bbox& region,
                         const geo::LocalProjection& projection,
                         const TransitionFilterOptions& options);

/// Post-filter applied after map matching: the matched route geometry
/// must start close to the origin road and end close to the destination
/// road.
bool PassesEndpointPostFilter(const geo::Polyline& matched_geometry,
                              const OdGate& origin, const OdGate& destination,
                              const TransitionFilterOptions& options);

/// Per-car funnel counts — one row of Table 3.
struct Table3Row {
  int car_id = 0;
  int64_t segments_total = 0;      ///< Cleaned trip segments.
  int64_t filtered_cleaned = 0;    ///< Angle-valid crossing of >= 2 roads.
  int64_t transitions_total = 0;   ///< O-D pairs in the direction set.
  int64_t transitions_central = 0; ///< ... within the central area.
  int64_t post_filtered = 0;       ///< ... surviving the endpoint check.
};

}  // namespace odselect
}  // namespace taxitrace

#endif  // TAXITRACE_ODSELECT_TRANSITION_FILTER_H_
