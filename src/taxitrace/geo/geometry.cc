#include "taxitrace/geo/geometry.h"

#include <algorithm>
#include <cmath>

namespace taxitrace {
namespace geo {

std::optional<EnPoint> SegmentIntersection(const Segment& s1,
                                           const Segment& s2) {
  const EnPoint r = s1.b - s1.a;
  const EnPoint s = s2.b - s2.a;
  const EnPoint qp = s2.a - s1.a;
  const double rxs = Cross(r, s);
  const double qpxr = Cross(qp, r);
  constexpr double kEps = 1e-12;

  if (std::abs(rxs) < kEps) {
    if (std::abs(qpxr) >= kEps) return std::nullopt;  // parallel, disjoint
    // Collinear: check 1-D overlap along r.
    const double rr = Dot(r, r);
    if (rr < kEps) {
      // s1 degenerates to a point; test it against s2.
      const PointProjection proj = ProjectOntoSegment(s1.a, s2);
      if (proj.distance < 1e-9) return s1.a;
      return std::nullopt;
    }
    double t0 = Dot(qp, r) / rr;
    double t1 = t0 + Dot(s, r) / rr;
    if (t0 > t1) std::swap(t0, t1);
    const double lo = std::max(t0, 0.0);
    const double hi = std::min(t1, 1.0);
    if (lo > hi) return std::nullopt;
    return s1.a + lo * r;
  }
  const double t = Cross(qp, s) / rxs;
  const double u = qpxr / rxs;
  constexpr double kTol = 1e-9;
  if (t < -kTol || t > 1.0 + kTol || u < -kTol || u > 1.0 + kTol) {
    return std::nullopt;
  }
  return s1.a + std::clamp(t, 0.0, 1.0) * r;
}

}  // namespace geo
}  // namespace taxitrace
