#include "taxitrace/clean/segmentation.h"

#include <cmath>

namespace taxitrace {
namespace clean {
namespace {

// Returns the Table 2 rule (2..4) classifying the gap between two
// consecutive route points as a stop, or 0 for ordinary driving. Rule 1
// (and its rule 5 variant) is window-based and handled by the splitter.
int PairStopRule(const trace::RoutePoint& a, const trace::RoutePoint& b,
                 const SegmentationOptions& opt) {
  const double dt = b.timestamp_s - a.timestamp_s;
  if (dt <= 0.0) return 0;
  const double d = geo::HaversineMeters(a.position, b.position);
  const double implied_speed = d / dt;

  // Rule 3: crawling below 0.002 m/s across a long silent gap.
  if (implied_speed < opt.rule3_speed_ms && dt >= opt.rule1_window_s) {
    return 3;
  }
  // Rule 2: less than 3 km in more than 7 minutes.
  if (dt > opt.rule2_window_s && d < opt.rule2_max_move_m) return 2;
  // Rule 4: less than 3 km in more than 15 minutes while "moving".
  if (dt > opt.rule4_window_s && d < opt.rule4_max_move_m &&
      implied_speed > opt.rule3_speed_ms) {
    return 4;
  }
  return 0;
}

// Splits a point sequence at stops: rule 1 fires when the position has
// not changed (within GPS tolerance) for `window_s`; rules 2-4 fire on
// single long silent gaps. Stationary points beyond the rule-1 window
// belong to the stop itself and are dropped. `rule_offset` selects which
// stats bucket the window splits land in (rule 1 vs rule 5).
std::vector<std::vector<trace::RoutePoint>> SplitAtStops(
    const std::vector<trace::RoutePoint>& points, double window_s,
    const SegmentationOptions& opt, SegmentationStats* stats,
    int window_rule_index) {
  std::vector<std::vector<trace::RoutePoint>> segments;
  std::vector<trace::RoutePoint> current;
  // Stationary-run tracking: the anchor is the first point of the
  // current no-movement run.
  geo::LatLon anchor_pos{};
  double anchor_time = 0.0;
  bool in_stop = false;  // consuming stationary points inside a stop

  const auto close_current = [&]() {
    if (!current.empty()) segments.push_back(std::move(current));
    current.clear();
  };

  for (const trace::RoutePoint& p : points) {
    if (in_stop) {
      if (geo::HaversineMeters(anchor_pos, p.position) <=
          opt.no_change_tolerance_m) {
        continue;  // still parked: the point belongs to the stop
      }
      in_stop = false;  // movement resumed; fall through to start fresh
      current.clear();
      anchor_pos = p.position;
      anchor_time = p.timestamp_s;
      current.push_back(p);
      continue;
    }
    if (current.empty()) {
      anchor_pos = p.position;
      anchor_time = p.timestamp_s;
      current.push_back(p);
      continue;
    }
    const int pair_rule = PairStopRule(current.back(), p, opt);
    if (pair_rule != 0) {
      ++stats->splits_by_rule[pair_rule - 1];
      close_current();
      anchor_pos = p.position;
      anchor_time = p.timestamp_s;
      current.push_back(p);
      continue;
    }
    if (geo::HaversineMeters(anchor_pos, p.position) >
        opt.no_change_tolerance_m) {
      // Moving: restart the stationary run at this point.
      anchor_pos = p.position;
      anchor_time = p.timestamp_s;
      current.push_back(p);
      continue;
    }
    // Within the stationary run.
    if (p.timestamp_s - anchor_time >= window_s) {
      ++stats->splits_by_rule[window_rule_index];
      close_current();
      in_stop = true;
      continue;
    }
    current.push_back(p);
  }
  close_current();
  return segments;
}

}  // namespace

std::vector<trace::Trip> SegmentTrip(const trace::Trip& trip,
                                     const SegmentationOptions& opt,
                                     SegmentationStats* stats) {
  SegmentationStats local;
  local.trips_in = 1;

  // First round: rules 1-4.
  std::vector<std::vector<trace::RoutePoint>> segments =
      SplitAtStops(trip.points, opt.rule1_window_s, opt, &local, 0);

  // Rule 5: re-split overlong segments with the tighter 1.5-minute
  // window.
  std::vector<std::vector<trace::RoutePoint>> final_segments;
  for (std::vector<trace::RoutePoint>& seg : segments) {
    if (trace::PathLengthMeters(seg) <= opt.rule5_length_m) {
      final_segments.push_back(std::move(seg));
      continue;
    }
    std::vector<std::vector<trace::RoutePoint>> parts =
        SplitAtStops(seg, opt.rule5_window_s, opt, &local, 4);
    for (auto& part : parts) final_segments.push_back(std::move(part));
  }

  std::vector<trace::Trip> out;
  out.reserve(final_segments.size());
  for (size_t k = 0; k < final_segments.size(); ++k) {
    trace::Trip seg;
    seg.trip_id = trip.trip_id * 1000 + static_cast<int64_t>(k);
    seg.car_id = trip.car_id;
    seg.points = std::move(final_segments[k]);
    seg.RecomputeTotals();
    out.push_back(std::move(seg));
  }
  local.segments_out = static_cast<int64_t>(out.size());
  if (stats != nullptr) {
    for (int r = 0; r < 5; ++r) {
      stats->splits_by_rule[r] += local.splits_by_rule[r];
    }
    stats->trips_in += local.trips_in;
    stats->segments_out += local.segments_out;
  }
  return out;
}

std::vector<trace::Trip> SegmentTrips(const std::vector<trace::Trip>& trips,
                                      const SegmentationOptions& options,
                                      SegmentationStats* stats) {
  std::vector<trace::Trip> out;
  for (const trace::Trip& trip : trips) {
    std::vector<trace::Trip> segments = SegmentTrip(trip, options, stats);
    for (trace::Trip& seg : segments) out.push_back(std::move(seg));
  }
  return out;
}

}  // namespace clean
}  // namespace taxitrace
