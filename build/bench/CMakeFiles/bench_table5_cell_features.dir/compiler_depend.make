# Empty compiler generated dependencies file for bench_table5_cell_features.
# This may be replaced when dependencies are built.
