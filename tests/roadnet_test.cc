#include <gtest/gtest.h>

#include <cmath>

#include "taxitrace/roadnet/map_preparation.h"
#include "taxitrace/roadnet/road_network.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/roadnet/spatial_index.h"

namespace taxitrace {
namespace roadnet {
namespace {

using geo::EnPoint;

const geo::LatLon kOrigin{65.0121, 25.4682};

TrafficElement MakeElement(ElementId id, std::vector<EnPoint> pts,
                           TravelDirection dir = TravelDirection::kBoth,
                           double limit = 40.0) {
  TrafficElement el;
  el.id = id;
  el.geometry = geo::Polyline(std::move(pts));
  el.direction = dir;
  el.speed_limit_kmh = limit;
  return el;
}

// A plus-shaped network: four arms meeting at the origin.
std::vector<TrafficElement> PlusElements() {
  return {
      MakeElement(1, {{0, 0}, {100, 0}}),
      MakeElement(2, {{0, 0}, {-100, 0}}),
      MakeElement(3, {{0, 0}, {0, 100}}),
      MakeElement(4, {{0, 0}, {0, -100}}),
  };
}

TEST(TravelDirectionTest, ReverseDirection) {
  EXPECT_EQ(ReverseDirection(TravelDirection::kForward),
            TravelDirection::kBackward);
  EXPECT_EQ(ReverseDirection(TravelDirection::kBackward),
            TravelDirection::kForward);
  EXPECT_EQ(ReverseDirection(TravelDirection::kBoth),
            TravelDirection::kBoth);
}

TEST(TravelDirectionTest, Names) {
  EXPECT_EQ(TravelDirectionName(TravelDirection::kBoth), "both");
  EXPECT_EQ(TravelDirectionName(TravelDirection::kForward), "forward");
  EXPECT_EQ(FeatureTypeName(FeatureType::kBusStop), "bus_stop");
}

// --- Map preparation ----------------------------------------------------------

TEST(MapPreparationTest, PlusMakesOneJunctionFourEdges) {
  MapPreparationStats stats;
  const RoadNetwork net =
      PrepareRoadNetwork(PlusElements(), {}, kOrigin, {}, &stats).value();
  EXPECT_EQ(stats.num_junctions, 1);
  EXPECT_EQ(stats.num_terminals, 4);
  EXPECT_EQ(stats.num_edges, 4);
  EXPECT_EQ(net.num_vertices(), 5u);
  EXPECT_EQ(net.num_edges(), 4u);
  int junctions = 0;
  net.ForEachVertex(
      [&](const Vertex& v) { junctions += v.is_junction ? 1 : 0; });
  EXPECT_EQ(junctions, 1);
}

TEST(MapPreparationTest, ChainOfElementsMergesIntoOneEdge) {
  // Three collinear elements between two junction-free terminals.
  const std::vector<TrafficElement> elements = {
      MakeElement(10, {{0, 0}, {50, 0}}),
      MakeElement(11, {{50, 0}, {100, 0}}),
      MakeElement(12, {{100, 0}, {150, 0}}),
  };
  MapPreparationStats stats;
  const RoadNetwork net =
      PrepareRoadNetwork(elements, {}, kOrigin, {}, &stats).value();
  EXPECT_EQ(stats.num_intermediate_points, 2);
  ASSERT_EQ(net.num_edges(), 1u);
  const Edge& e = net.edge(0);
  EXPECT_EQ(e.element_ids.size(), 3u);
  EXPECT_NEAR(e.length_m, 150.0, 1e-6);
  // Element ids appear in chain order (either direction).
  const bool fwd = e.element_ids == std::vector<ElementId>({10, 11, 12});
  const bool bwd = e.element_ids == std::vector<ElementId>({12, 11, 10});
  EXPECT_TRUE(fwd || bwd);
}

TEST(MapPreparationTest, ReversedDigitisationStillMerges) {
  // Middle element digitised against the chain.
  const std::vector<TrafficElement> elements = {
      MakeElement(10, {{0, 0}, {50, 0}}),
      MakeElement(11, {{100, 0}, {50, 0}}),  // reversed
      MakeElement(12, {{100, 0}, {150, 0}}),
  };
  const RoadNetwork net =
      PrepareRoadNetwork(elements, {}, kOrigin).value();
  ASSERT_EQ(net.num_edges(), 1u);
  EXPECT_NEAR(net.edge(0).length_m, 150.0, 1e-6);
}

TEST(MapPreparationTest, OneWayChainOrientation) {
  // Two one-way elements; the second is digitised backwards, so its
  // constraint must be flipped when merged.
  const std::vector<TrafficElement> elements = {
      MakeElement(1, {{0, 0}, {50, 0}}, TravelDirection::kForward),
      MakeElement(2, {{100, 0}, {50, 0}}, TravelDirection::kBackward),
  };
  const RoadNetwork net =
      PrepareRoadNetwork(elements, {}, kOrigin).value();
  ASSERT_EQ(net.num_edges(), 1u);
  const Edge& e = net.edge(0);
  // The merged edge is one-way from the (0,0) end to the (100,0) end.
  EXPECT_NE(e.direction, TravelDirection::kBoth);
  const EnPoint start = net.vertex(e.from).position;
  if (e.direction == TravelDirection::kForward) {
    EXPECT_NEAR(start.x, 0.0, 1.0);
  } else {
    EXPECT_NEAR(start.x, 100.0, 1.0);
  }
}

TEST(MapPreparationTest, ConflictingOneWaysFallBackToTwoWay) {
  const std::vector<TrafficElement> elements = {
      MakeElement(1, {{0, 0}, {50, 0}}, TravelDirection::kForward),
      MakeElement(2, {{50, 0}, {100, 0}}, TravelDirection::kBackward),
  };
  MapPreparationStats stats;
  const RoadNetwork net =
      PrepareRoadNetwork(elements, {}, kOrigin, {}, &stats).value();
  EXPECT_EQ(stats.num_direction_conflicts, 1);
  EXPECT_EQ(net.edge(0).direction, TravelDirection::kBoth);
}

TEST(MapPreparationTest, MergedEdgeTakesMinSpeedLimit) {
  const std::vector<TrafficElement> elements = {
      MakeElement(1, {{0, 0}, {50, 0}}, TravelDirection::kBoth, 60.0),
      MakeElement(2, {{50, 0}, {100, 0}}, TravelDirection::kBoth, 40.0),
  };
  const RoadNetwork net =
      PrepareRoadNetwork(elements, {}, kOrigin).value();
  EXPECT_DOUBLE_EQ(net.edge(0).speed_limit_kmh, 40.0);
}

TEST(MapPreparationTest, PureCycleIsHandled) {
  // A triangle of elements with no junction (all endpoints degree 2).
  const std::vector<TrafficElement> elements = {
      MakeElement(1, {{0, 0}, {100, 0}}),
      MakeElement(2, {{100, 0}, {50, 80}}),
      MakeElement(3, {{50, 80}, {0, 0}}),
  };
  const RoadNetwork net =
      PrepareRoadNetwork(elements, {}, kOrigin).value();
  EXPECT_GE(net.num_edges(), 1u);
  double total = 0.0;
  net.ForEachEdge([&](const Edge& e) { total += e.length_m; });
  EXPECT_NEAR(total, 100.0 + 2 * std::hypot(50.0, 80.0), 1e-6);
  EXPECT_TRUE(net.Validate().ok());
}

TEST(MapPreparationTest, RejectsEmptyInput) {
  EXPECT_TRUE(PrepareRoadNetwork({}, {}, kOrigin)
                  .status()
                  .IsInvalidArgument());
}

TEST(MapPreparationTest, RejectsDuplicateIds) {
  const std::vector<TrafficElement> elements = {
      MakeElement(1, {{0, 0}, {10, 0}}),
      MakeElement(1, {{10, 0}, {20, 0}}),
  };
  EXPECT_TRUE(PrepareRoadNetwork(elements, {}, kOrigin)
                  .status()
                  .IsInvalidArgument());
}

TEST(MapPreparationTest, RejectsDegenerateGeometry) {
  std::vector<TrafficElement> elements = {MakeElement(1, {{0, 0}})};
  EXPECT_FALSE(PrepareRoadNetwork(elements, {}, kOrigin).ok());
  elements = {MakeElement(2, {{0, 0}, {0, 0}})};
  EXPECT_FALSE(PrepareRoadNetwork(elements, {}, kOrigin).ok());
}

TEST(MapPreparationTest, FeatureAttachesToNearestEdge) {
  const std::vector<FeatureSpec> features = {
      {FeatureType::kBusStop, EnPoint{50, 5}},     // near arm 1
      {FeatureType::kTrafficLight, EnPoint{500, 500}},  // out of reach
  };
  const RoadNetwork net =
      PrepareRoadNetwork(PlusElements(), features, kOrigin).value();
  EXPECT_EQ(net.features().size(), 2u);
  int attached = 0;
  net.ForEachEdge([&](const Edge& e) {
    attached += static_cast<int>(e.feature_ids.size());
  });
  EXPECT_EQ(attached, 1);  // the far light attaches nowhere
  EXPECT_EQ(net.CountFeatures(FeatureType::kBusStop), 1);
  EXPECT_EQ(net.CountFeatures(FeatureType::kTrafficLight), 1);
}

TEST(MapPreparationTest, JunctionPairTableMatchesEdges) {
  const RoadNetwork net =
      PrepareRoadNetwork(PlusElements(), {}, kOrigin).value();
  const std::vector<JunctionPairRow> rows = JunctionPairTable(net);
  ASSERT_EQ(rows.size(), net.num_edges());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Edge& e = net.edge(net.EdgeIdAt(i));
    EXPECT_EQ(rows[i].element_ids, e.element_ids);
    const EnPoint j1 = net.projection().Forward(rows[i].junction1);
    EXPECT_NEAR(geo::Distance(j1, net.vertex(e.from).position), 0.0,
                0.5);
  }
}

// --- RoadNetwork accessors -----------------------------------------------------

TEST(RoadNetworkTest, OppositeAndTraverse) {
  const std::vector<TrafficElement> elements = {
      MakeElement(1, {{0, 0}, {100, 0}}, TravelDirection::kForward),
  };
  const RoadNetwork net =
      PrepareRoadNetwork(elements, {}, kOrigin).value();
  const Edge& e = net.edge(0);
  EXPECT_EQ(net.Opposite(e.id, e.from), e.to);
  EXPECT_EQ(net.Opposite(e.id, e.to), e.from);
  EXPECT_NE(net.CanTraverse(e.id, true), net.CanTraverse(e.id, false));
}

TEST(RoadNetworkTest, PointAt) {
  const RoadNetwork net =
      PrepareRoadNetwork({MakeElement(1, {{0, 0}, {100, 0}})}, {}, kOrigin)
          .value();
  const Edge& e = net.edge(0);
  const EnPoint from_pos = net.vertex(e.from).position;
  const EnPoint mid = net.PointAt(EdgePosition{e.id, 50.0});
  EXPECT_NEAR(geo::Distance(from_pos, mid), 50.0, 1e-6);
}

TEST(RoadNetworkTest, IncidentEdges) {
  const RoadNetwork net =
      PrepareRoadNetwork(PlusElements(), {}, kOrigin).value();
  net.ForEachVertex([&](const Vertex& v) {
    const size_t expected = v.is_junction ? 4u : 1u;
    EXPECT_EQ(net.IncidentEdges(v.id).size(), expected);
  });
}

// --- Spatial index ---------------------------------------------------------------

class SpatialIndexTest : public testing::Test {
 protected:
  SpatialIndexTest()
      : net_(PrepareRoadNetwork(PlusElements(), {}, kOrigin).value()),
        index_(&net_) {}
  RoadNetwork net_;
  SpatialIndex index_;
};

TEST_F(SpatialIndexTest, NearbyFindsEdgesWithinRadius) {
  const std::vector<EdgeCandidate> found =
      index_.Nearby(EnPoint{50, 5}, 10.0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NEAR(found[0].projection.distance, 5.0, 1e-9);
}

TEST_F(SpatialIndexTest, NearbyAtJunctionSeesAllArms) {
  const std::vector<EdgeCandidate> found =
      index_.Nearby(EnPoint{2, 2}, 10.0);
  EXPECT_EQ(found.size(), 4u);
  // Sorted by ascending distance.
  for (size_t i = 1; i < found.size(); ++i) {
    EXPECT_LE(found[i - 1].projection.distance,
              found[i].projection.distance);
  }
}

TEST_F(SpatialIndexTest, NearbyEmptyWhenFar) {
  EXPECT_TRUE(index_.Nearby(EnPoint{500, 500}, 30.0).empty());
}

TEST_F(SpatialIndexTest, NearestExpandsSearch) {
  const auto hit = index_.Nearest(EnPoint{300, 40}, 500.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->projection.distance,
              geo::Distance(EnPoint{300, 40}, EnPoint{100, 0}), 1e-6);
}

TEST_F(SpatialIndexTest, NearestRespectsCap) {
  EXPECT_FALSE(index_.Nearest(EnPoint{5000, 5000}, 100.0).has_value());
}

TEST_F(SpatialIndexTest, CountsProbeWork) {
  (void)index_.Nearby(EnPoint{2, 2}, 10.0);
  (void)index_.Nearby(EnPoint{500, 500}, 30.0);
  const SpatialIndexStats stats = index_.stats();
  EXPECT_EQ(stats.queries, 2);
  EXPECT_GT(stats.cells_probed, 0);
  EXPECT_GE(stats.candidates, 4);  // the four arms at the junction
  EXPECT_EQ(stats.hits, 4);        // the far query returned nothing
  EXPECT_EQ(stats.empty_geometry_edges, 0);
}

// Regression: the index build walked geometry segments (i, i+1), so an
// edge whose polyline had fewer than two points was never inserted into
// any cell and could not be found by Nearby/Nearest at all. A
// single-point geometry is now indexed at its lone point; an empty
// geometry has no location to index and is dropped with a counted
// reason instead of silently.
TEST(SpatialIndexDegenerateTest, SinglePointGeometryIsFindable) {
  RoadNetwork net(kOrigin);
  const VertexId a = net.AddVertex({0, 0}, false);
  const VertexId b = net.AddVertex({200, 0}, false);
  Edge normal;
  normal.from = a;
  normal.to = b;
  normal.geometry = geo::Polyline({{0, 0}, {200, 0}});
  net.AddEdge(std::move(normal));

  const VertexId c = net.AddVertex({500, 500}, false);
  Edge lone;
  lone.from = c;
  lone.to = c;
  lone.geometry = geo::Polyline({{500, 500}});
  const EdgeId lone_id = net.AddEdge(std::move(lone));

  const SpatialIndex index(&net);
  const std::vector<EdgeCandidate> found =
      index.Nearby(EnPoint{497, 496}, 10.0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].edge, lone_id);
  EXPECT_NEAR(found[0].projection.distance, 5.0, 1e-9);
  EXPECT_EQ(index.stats().empty_geometry_edges, 0);

  const auto nearest = index.Nearest(EnPoint{520, 500}, 100.0);
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(nearest->edge, lone_id);
}

TEST(SpatialIndexDegenerateTest, EmptyGeometryIsDroppedWithReason) {
  RoadNetwork net(kOrigin);
  const VertexId a = net.AddVertex({0, 0}, false);
  const VertexId b = net.AddVertex({100, 0}, false);
  Edge normal;
  normal.from = a;
  normal.to = b;
  normal.geometry = geo::Polyline({{0, 0}, {100, 0}});
  const EdgeId normal_id = net.AddEdge(std::move(normal));
  Edge hollow;
  hollow.from = a;
  hollow.to = b;
  hollow.geometry = geo::Polyline();
  net.AddEdge(std::move(hollow));

  const SpatialIndex index(&net);
  EXPECT_EQ(index.stats().empty_geometry_edges, 1);
  // The well-formed edge is unaffected.
  const std::vector<EdgeCandidate> found =
      index.Nearby(EnPoint{50, 2}, 10.0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].edge, normal_id);
}

// --- Router -----------------------------------------------------------------------

// A 3x3 grid network with 100 m spacing.
std::vector<TrafficElement> GridElements() {
  std::vector<TrafficElement> elements;
  ElementId id = 1;
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 3; ++i) {
      const EnPoint p{i * 100.0, j * 100.0};
      if (i < 2) {
        elements.push_back(
            MakeElement(id++, {p, EnPoint{(i + 1) * 100.0, j * 100.0}}));
      }
      if (j < 2) {
        elements.push_back(
            MakeElement(id++, {p, EnPoint{i * 100.0, (j + 1) * 100.0}}));
      }
    }
  }
  return elements;
}

class RouterTest : public testing::Test {
 protected:
  RouterTest()
      : net_(PrepareRoadNetwork(GridElements(), {}, kOrigin).value()),
        router_(&net_) {}

  VertexId VertexAt(const EnPoint& p) const {
    VertexId found = kInvalidVertex;
    net_.ForEachVertex([&](const Vertex& v) {
      if (found == kInvalidVertex && geo::Distance(v.position, p) < 1.0) {
        found = v.id;
      }
    });
    return found;
  }

  RoadNetwork net_;
  Router router_;
};

// Note: the 3x3 grid's corner points have degree 2, so map preparation
// merges them into L-shaped edges; only the edge midpoints and the
// centre ((100,100)) are graph vertices.

TEST_F(RouterTest, StraightLineIsShortest) {
  const Result<Path> path =
      router_.ShortestPath(VertexAt({100, 0}), VertexAt({100, 200}));
  ASSERT_TRUE(path.ok());
  EXPECT_NEAR(path->length_m, 200.0, 1e-6);
  EXPECT_EQ(path->steps.size(), 2u);
}

TEST_F(RouterTest, ManhattanDistanceAcrossGrid) {
  const Result<Path> path =
      router_.ShortestPath(VertexAt({100, 0}), VertexAt({0, 100}));
  ASSERT_TRUE(path.ok());
  EXPECT_NEAR(path->length_m, 200.0, 1e-6);
  // Geometry runs continuously from source to destination.
  EXPECT_NEAR(geo::Distance(path->geometry.front(),
                            net_.vertex(VertexAt({100, 0})).position),
              0.0, 1.0);
  EXPECT_NEAR(geo::Distance(path->geometry.back(),
                            net_.vertex(VertexAt({0, 100})).position),
              0.0, 1.0);
  EXPECT_NEAR(path->geometry.Length(), path->length_m, 1e-6);
}

TEST_F(RouterTest, SameVertexYieldsZeroPath) {
  const Result<Path> path =
      router_.ShortestPath(VertexAt({100, 100}), VertexAt({100, 100}));
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->length_m, 0.0);
  EXPECT_TRUE(path->steps.empty());
}

TEST_F(RouterTest, InvalidVertexRejected) {
  EXPECT_TRUE(router_.ShortestPath(-1, 0).status().IsInvalidArgument());
  EXPECT_TRUE(router_.ShortestPath(0, 9999).status().IsInvalidArgument());
}

TEST_F(RouterTest, CostMultiplierChangesRoute) {
  // Make the direct north-south street prohibitively expensive; the
  // route must detour but report its true geometric length.
  std::vector<double> mult(net_.num_edges(), 1.0);
  const Result<Path> direct =
      router_.ShortestPath(VertexAt({100, 0}), VertexAt({100, 200}));
  ASSERT_TRUE(direct.ok());
  for (const PathStep& s : direct->steps) {
    mult[net_.EdgeOrdinal(s.edge)] = 10.0;
  }
  const Result<Path> detour = router_.ShortestPath(
      VertexAt({100, 0}), VertexAt({100, 200}), &mult);
  ASSERT_TRUE(detour.ok());
  EXPECT_NEAR(detour->length_m, 400.0, 1e-6);  // around the block
}

TEST_F(RouterTest, MultiplierSizeMismatchRejected) {
  std::vector<double> bad(3, 1.0);
  EXPECT_TRUE(router_.ShortestPath(0, 1, &bad)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(RouterTest, PositionToPositionSameEdge) {
  const Edge& e = net_.edge(0);
  const Result<Path> path = router_.ShortestPathBetween(
      EdgePosition{e.id, 10.0}, EdgePosition{e.id, 60.0});
  ASSERT_TRUE(path.ok());
  EXPECT_NEAR(path->length_m, 50.0, 1e-6);
  ASSERT_EQ(path->steps.size(), 1u);
  EXPECT_TRUE(path->steps[0].forward);
}

TEST_F(RouterTest, PositionToPositionBackwardOnTwoWayEdge) {
  const Edge& e = net_.edge(0);
  const Result<Path> path = router_.ShortestPathBetween(
      EdgePosition{e.id, 60.0}, EdgePosition{e.id, 10.0});
  ASSERT_TRUE(path.ok());
  EXPECT_NEAR(path->length_m, 50.0, 1e-6);
  EXPECT_FALSE(path->steps[0].forward);
}

TEST_F(RouterTest, PositionToPositionAcrossGraph) {
  // From the middle of one edge to the middle of a distant edge.
  const EdgePosition from{net_.edge(0).id, 50.0};
  EdgeId far_edge = kInvalidEdge;
  net_.ForEachEdge([&](const Edge& e) {
    const EnPoint mid = e.geometry.Interpolate(e.length_m / 2);
    if (far_edge == kInvalidEdge &&
        geo::Distance(mid, net_.edge(0).geometry.Interpolate(50.0)) >
            150.0) {
      far_edge = e.id;
    }
  });
  ASSERT_NE(far_edge, kInvalidEdge);
  const Result<Path> path =
      router_.ShortestPathBetween(from, EdgePosition{far_edge, 30.0});
  ASSERT_TRUE(path.ok());
  EXPECT_GT(path->length_m, 100.0);
  EXPECT_NEAR(path->geometry.Length(), path->length_m, 1e-6);
}

TEST_F(RouterTest, NetworkDistanceMatchesPathLength) {
  const EdgePosition a{net_.edge(0).id, 20.0};
  const EdgePosition b{net_.edge(3).id, 40.0};
  const Result<Path> path = router_.ShortestPathBetween(a, b);
  ASSERT_TRUE(path.ok());
  EXPECT_NEAR(router_.NetworkDistance(a, b), path->length_m, 1e-9);
}

TEST(RouterOneWayTest, OneWayForcesDetour) {
  // Two parallel streets connected at both ends; the direct one is
  // one-way against the travel direction. Stub elements keep the loop
  // corners at degree >= 3 so they stay graph vertices.
  const std::vector<TrafficElement> elements = {
      MakeElement(1, {{0, 0}, {100, 0}}, TravelDirection::kBackward),
      MakeElement(2, {{0, 0}, {0, 50}}),
      MakeElement(3, {{0, 50}, {100, 50}}),
      MakeElement(4, {{100, 50}, {100, 0}}),
      MakeElement(5, {{0, 0}, {-50, 0}}),
      MakeElement(6, {{100, 0}, {150, 0}}),
  };
  const RoadNetwork net =
      PrepareRoadNetwork(elements, {}, kOrigin).value();
  const Router router(&net);
  VertexId a = kInvalidVertex, b = kInvalidVertex;
  net.ForEachVertex([&](const Vertex& v) {
    if (geo::Distance(v.position, {0, 0}) < 1.0) a = v.id;
    if (geo::Distance(v.position, {100, 0}) < 1.0) b = v.id;
  });
  const Result<Path> forward = router.ShortestPath(a, b);
  ASSERT_TRUE(forward.ok());
  EXPECT_NEAR(forward->length_m, 200.0, 1e-6);  // detour via (0,50)
  const Result<Path> back = router.ShortestPath(b, a);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back->length_m, 100.0, 1e-6);  // direct, allowed direction
}

TEST(RouterDisconnectedTest, UnreachableIsNotFound) {
  const std::vector<TrafficElement> elements = {
      MakeElement(1, {{0, 0}, {100, 0}}),
      MakeElement(2, {{1000, 1000}, {1100, 1000}}),
  };
  const RoadNetwork net =
      PrepareRoadNetwork(elements, {}, kOrigin).value();
  const Router router(&net);
  const Result<Path> path = router.ShortestPath(0, 2);
  // Vertices 0 and 2 may or may not be on the same component depending
  // on creation order, so locate definitely-disconnected endpoints.
  VertexId a = kInvalidVertex, b = kInvalidVertex;
  net.ForEachVertex([&](const Vertex& v) {
    if (v.position.x < 500) a = v.id;
    if (v.position.x > 500) b = v.id;
  });
  EXPECT_TRUE(router.ShortestPath(a, b).status().IsNotFound());
  (void)path;
}

TEST(RouterOneWayTest, PositionRoutingRespectsOneWay) {
  const std::vector<TrafficElement> elements = {
      MakeElement(1, {{0, 0}, {100, 0}}, TravelDirection::kForward),
  };
  const RoadNetwork net =
      PrepareRoadNetwork(elements, {}, kOrigin).value();
  const Router router(&net);
  const Edge& e = net.edge(0);
  // Forward travel is fine; backward on the isolated one-way edge is
  // impossible.
  const double arc0 = e.direction == TravelDirection::kForward ? 10.0 : 90.0;
  const double arc1 = e.direction == TravelDirection::kForward ? 90.0 : 10.0;
  EXPECT_TRUE(router
                  .ShortestPathBetween(EdgePosition{e.id, arc0},
                                       EdgePosition{e.id, arc1})
                  .ok());
  EXPECT_TRUE(router
                  .ShortestPathBetween(EdgePosition{e.id, arc1},
                                       EdgePosition{e.id, arc0})
                  .status()
                  .IsNotFound());
}

// --- CSR adjacency ----------------------------------------------------------

// OutArcs is a flattened mirror of IncidentEdges: same edges in the
// same order, with head/length/traversability/orientation agreeing
// with the Edge records they were precomputed from.
TEST(RoadNetworkCsrTest, OutArcsMirrorsIncidentEdges) {
  const RoadNetwork net =
      PrepareRoadNetwork(GridElements(), {}, kOrigin).value();
  net.ForEachVertex([&](const Vertex& v) {
    const std::vector<EdgeId>& incident = net.IncidentEdges(v.id);
    const std::span<const HalfEdge> arcs = net.OutArcs(v.id);
    ASSERT_EQ(incident.size(), arcs.size()) << "vertex " << v.id;
    for (size_t k = 0; k < arcs.size(); ++k) {
      const HalfEdge& arc = arcs[k];
      EXPECT_EQ(arc.edge, incident[k]) << "vertex " << v.id;
      const Edge& e = net.edge(arc.edge);
      EXPECT_EQ(arc.forward, e.from == v.id);
      EXPECT_EQ(arc.head, net.Opposite(arc.edge, v.id));
      EXPECT_EQ(arc.length_m, e.length_m);
      EXPECT_EQ(arc.traversable_out, net.CanTraverse(arc.edge, arc.forward));
      EXPECT_EQ(arc.traversable_in, net.CanTraverse(arc.edge, !arc.forward));
    }
  });
}

// The CSR cache follows builder growth: arcs added after a first read
// appear on the next read.
TEST(RoadNetworkCsrTest, OutArcsFollowsBuilderGrowth) {
  RoadNetwork net(kOrigin);
  const VertexId a = net.AddVertex({0, 0}, false);
  const VertexId b = net.AddVertex({100, 0}, false);
  Edge e;
  e.from = a;
  e.to = b;
  e.geometry = geo::Polyline({{0, 0}, {100, 0}});
  e.length_m = 100.0;
  net.AddEdge(std::move(e));
  EXPECT_EQ(net.OutArcs(a).size(), 1u);

  const VertexId c = net.AddVertex({0, 100}, false);
  Edge e2;
  e2.from = a;
  e2.to = c;
  e2.geometry = geo::Polyline({{0, 0}, {0, 100}});
  e2.length_m = 100.0;
  net.AddEdge(std::move(e2));
  EXPECT_EQ(net.OutArcs(a).size(), 2u);
  EXPECT_EQ(net.OutArcs(c).size(), 1u);
  EXPECT_EQ(net.OutArcs(c)[0].head, a);
}

// --- Seed dedupe ------------------------------------------------------------

// Regression: a loop edge hands Search two seeds naming the same vertex
// (both endpoints are the hub). The seed phase must keep the cheaper
// cost and push one heap entry — with the old duplicate push the search
// still answered correctly but popped a guaranteed-stale entry, so
// heap_pops exceeded settled_vertices on this two-vertex graph.
TEST(RouterSeedDedupeTest, CoincidentSeedsOnLoopEdge) {
  RoadNetwork net(kOrigin);
  const VertexId hub = net.AddVertex({0, 0}, true);
  const VertexId out = net.AddVertex({100, 0}, false);
  Edge loop;
  loop.from = hub;
  loop.to = hub;
  loop.geometry =
      geo::Polyline({{0, 0}, {50, 50}, {0, 100}, {-50, 50}, {0, 0}});
  loop.length_m = loop.geometry.Length();
  const EdgeId loop_id = net.AddEdge(std::move(loop));
  Edge spur;
  spur.from = hub;
  spur.to = out;
  spur.geometry = geo::Polyline({{0, 0}, {100, 0}});
  spur.length_m = 100.0;
  const EdgeId spur_id = net.AddEdge(std::move(spur));

  const Router router(&net);
  const double loop_len = net.edge(loop_id).length_m;
  // Start 30 m into the loop: leaving backwards (30 m to the hub) beats
  // leaving forwards (loop_len - 30 m), and the kept seed must be the
  // cheaper of the two coincident ones.
  const Result<Path> path = router.ShortestPathBetween(
      EdgePosition{loop_id, 30.0}, EdgePosition{spur_id, 40.0});
  ASSERT_TRUE(path.ok());
  EXPECT_NEAR(path->length_m, 30.0 + 40.0, 1e-9);
  EXPECT_GT(loop_len - 30.0, 30.0);  // the discarded seed was dearer

  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.searches, 1);
  // No stale pops on this graph once the duplicate seed is gone.
  EXPECT_EQ(stats.heap_pops, stats.settled_vertices);
}

TEST(RoadNetworkValidateTest, DetectsBadFeatureReference) {
  RoadNetwork net(kOrigin);
  const VertexId a = net.AddVertex({0, 0}, false);
  const VertexId b = net.AddVertex({10, 0}, false);
  Edge e;
  e.from = a;
  e.to = b;
  e.geometry = geo::Polyline({{0, 0}, {10, 0}});
  e.feature_ids.push_back(99);  // dangling
  net.AddEdge(std::move(e));
  EXPECT_TRUE(net.Validate().IsCorruption());
}

TEST(RoadNetworkValidateTest, DetectsGeometryVertexMismatch) {
  RoadNetwork net(kOrigin);
  const VertexId a = net.AddVertex({0, 0}, false);
  const VertexId b = net.AddVertex({10, 0}, false);
  Edge e;
  e.from = a;
  e.to = b;
  e.geometry = geo::Polyline({{0, 0}, {50, 50}});  // wrong far end
  net.AddEdge(std::move(e));
  EXPECT_TRUE(net.Validate().IsCorruption());
}

}  // namespace
}  // namespace roadnet
}  // namespace taxitrace
