#include "taxitrace/roadnet/connectivity.h"

#include <algorithm>

namespace taxitrace {
namespace roadnet {
namespace {

// Directed out-neighbours of `v` under the travel constraints.
// `reversed` flips every arc (for Kosaraju's second pass).
std::vector<VertexId> OutNeighbours(const RoadNetwork& network, VertexId v,
                                    bool reversed) {
  std::vector<VertexId> out;
  for (const HalfEdge& arc : network.OutArcs(v)) {
    const bool traversable =
        reversed ? arc.traversable_in : arc.traversable_out;
    if (traversable) out.push_back(arc.head);
  }
  return out;
}

// Iterative DFS collecting vertices in postorder. `visited` is indexed
// by vertex ordinal (ids are packed and non-dense on tiled maps).
void PostorderDfs(const RoadNetwork& network, VertexId start,
                  std::vector<bool>* visited,
                  std::vector<VertexId>* postorder) {
  std::vector<std::pair<VertexId, size_t>> stack;
  stack.emplace_back(start, 0);
  (*visited)[network.VertexOrdinal(start)] = true;
  while (!stack.empty()) {
    auto& [v, next] = stack.back();
    const std::vector<VertexId> neighbours =
        OutNeighbours(network, v, false);
    if (next < neighbours.size()) {
      const VertexId w = neighbours[next++];
      if (!(*visited)[network.VertexOrdinal(w)]) {
        (*visited)[network.VertexOrdinal(w)] = true;
        stack.emplace_back(w, 0);
      }
    } else {
      postorder->push_back(v);
      stack.pop_back();
    }
  }
}

}  // namespace

std::vector<int> WeakComponents(const RoadNetwork& network) {
  const size_t n = network.num_vertices();
  std::vector<int> label(n, -1);
  int next_label = 0;
  for (size_t start = 0; start < n; ++start) {
    if (label[start] >= 0) continue;
    std::vector<VertexId> stack{network.VertexIdAt(start)};
    label[start] = next_label;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const HalfEdge& arc : network.OutArcs(v)) {
        const VertexId w = arc.head;
        if (label[network.VertexOrdinal(w)] < 0) {
          label[network.VertexOrdinal(w)] = next_label;
          stack.push_back(w);
        }
      }
    }
    ++next_label;
  }
  return label;
}

int CountWeakComponents(const RoadNetwork& network) {
  const std::vector<int> labels = WeakComponents(network);
  return labels.empty()
             ? 0
             : *std::max_element(labels.begin(), labels.end()) + 1;
}

std::vector<VertexId> LargestStronglyConnectedComponent(
    const RoadNetwork& network) {
  const size_t n = network.num_vertices();
  if (n == 0) return {};
  // Kosaraju pass 1: postorder of the forward graph.
  std::vector<bool> visited(n, false);
  std::vector<VertexId> postorder;
  postorder.reserve(n);
  for (size_t v = 0; v < n; ++v) {
    if (!visited[v]) {
      PostorderDfs(network, network.VertexIdAt(v), &visited, &postorder);
    }
  }
  // Pass 2: traverse the reversed graph in reverse postorder.
  std::vector<int> component(n, -1);
  int next_component = 0;
  for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
    if (component[network.VertexOrdinal(*it)] >= 0) continue;
    std::vector<VertexId> stack{*it};
    component[network.VertexOrdinal(*it)] = next_component;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : OutNeighbours(network, v, true)) {
        if (component[network.VertexOrdinal(w)] < 0) {
          component[network.VertexOrdinal(w)] = next_component;
          stack.push_back(w);
        }
      }
    }
    ++next_component;
  }
  // Largest component.
  std::vector<int> sizes(static_cast<size_t>(next_component), 0);
  for (int c : component) ++sizes[static_cast<size_t>(c)];
  const int best = static_cast<int>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<VertexId> out;
  for (size_t v = 0; v < n; ++v) {
    if (component[v] == best) out.push_back(network.VertexIdAt(v));
  }
  return out;
}

ConnectivityReport AnalyzeConnectivity(const RoadNetwork& network) {
  ConnectivityReport report;
  report.num_vertices = static_cast<int>(network.num_vertices());
  report.weak_components = CountWeakComponents(network);
  report.largest_scc_size =
      static_cast<int>(LargestStronglyConnectedComponent(network).size());
  report.scc_coverage =
      report.num_vertices > 0
          ? static_cast<double>(report.largest_scc_size) /
                static_cast<double>(report.num_vertices)
          : 0.0;
  return report;
}

}  // namespace roadnet
}  // namespace taxitrace
