// Deterministic pseudo-random number generation for synthetic workloads.
//
// All synthetic data in this library (city map, fleet simulation, sensor
// defects, weather) is generated from explicitly seeded Rng instances so
// every experiment is exactly reproducible across runs and platforms.

#ifndef TAXITRACE_COMMON_RANDOM_H_
#define TAXITRACE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace taxitrace {

/// xoshiro256++ generator (Blackman & Vigna). Deterministic, fast, with
/// well-understood statistical quality; seeded through splitmix64 so any
/// 64-bit seed yields a well-mixed state.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Marsaglia polar method).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponential deviate with the given rate (mean 1/rate). Requires
  /// rate > 0.
  double Exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth's method for
  /// small means, normal approximation above 64).
  int Poisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero or negative weights are treated as zero; if all weights vanish,
  /// samples uniformly.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Creates an independent generator derived from this one's stream,
  /// suitable for giving each simulated entity its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Derives a well-mixed seed for the named substream `(seed, a, b)` by
/// chaining splitmix64 over the three inputs. Unlike `Fork()`, the
/// result depends only on the arguments — never on how many draws some
/// other stream made first — which is what lets sharded simulations
/// (e.g. one shard per car and day) produce bit-identical output at any
/// execution order or thread count.
uint64_t MixSeed(uint64_t seed, uint64_t a, uint64_t b);

}  // namespace taxitrace

#endif  // TAXITRACE_COMMON_RANDOM_H_
