#!/usr/bin/env python3
"""Run clang-tidy over the taxitrace sources using the repo .clang-tidy.

Drives clang-tidy from the compile database (configure with
CMAKE_EXPORT_COMPILE_COMMANDS, which the root CMakeLists enables by
default) so every translation unit is checked with its real flags:

    cmake -B build -S .
    python3 scripts/run_clang_tidy.py            # checks src/
    python3 scripts/run_clang_tidy.py src/taxitrace/mapmatch

Exit status: 0 when clean, 1 when clang-tidy reported diagnostics,
2 on setup errors. When no clang-tidy binary is available (for example
in the minimal build container) the gate is skipped with exit 0 — the
authoritative run is the CI static-analysis job.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

# Newest first; plain "clang-tidy" wins when present.
CLANG_TIDY_CANDIDATES = ["clang-tidy"] + [
    f"clang-tidy-{v}" for v in range(21, 13, -1)]


def find_clang_tidy() -> str | None:
    override = os.environ.get("CLANG_TIDY")
    if override:
        # An explicit override that does not resolve is a user error,
        # not a reason to silently skip the gate.
        if not shutil.which(override):
            print(f"run_clang_tidy: CLANG_TIDY={override} not found",
                  file=sys.stderr)
            raise SystemExit(2)
        return override
    for name in CLANG_TIDY_CANDIDATES:
        if shutil.which(name):
            return name
    return None


def compile_db_sources(build_dir: Path) -> list[Path]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"run_clang_tidy: {db_path} not found; configure with "
              "cmake -B build -S . first", file=sys.stderr)
        raise SystemExit(2)
    with db_path.open(encoding="utf-8") as fh:
        entries = json.load(fh)
    return sorted({
        (Path(e["directory"]) / e["file"]).resolve() for e in entries})


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="restrict to sources under these paths "
                             "(default: src/)")
    parser.add_argument("-p", "--build-dir", type=Path, default=None,
                        help="build directory holding compile_commands.json "
                             "(default: <repo>/build)")
    parser.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2,
                        help="parallel clang-tidy processes")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the full report to this file")
    parser.add_argument("--fix", action="store_true",
                        help="apply suggested fixes (serialises the run)")
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    build_dir = (args.build_dir or repo_root / "build").resolve()

    clang_tidy = find_clang_tidy()
    if clang_tidy is None:
        print("run_clang_tidy: no clang-tidy binary found (set CLANG_TIDY "
              "or install one); skipping — the static-analysis CI job is "
              "the authoritative gate", file=sys.stderr)
        return 0

    filters = [(repo_root / p).resolve() if not Path(p).is_absolute()
               else Path(p).resolve()
               for p in (args.paths or ["src"])]
    sources = [s for s in compile_db_sources(build_dir)
               if any(s.is_relative_to(f) for f in filters)]
    if not sources:
        print("run_clang_tidy: no sources matched under "
              f"{[str(f) for f in filters]}", file=sys.stderr)
        return 2

    base_cmd = [clang_tidy, "-p", str(build_dir), "--quiet"]
    if args.fix:
        base_cmd.append("--fix")
        args.jobs = 1  # concurrent fixers race on shared headers

    def run_one(source: Path) -> tuple[Path, int, str]:
        proc = subprocess.run(
            base_cmd + [str(source)], cwd=repo_root,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        # "N warnings generated" on stderr is bookkeeping, not findings.
        lines = [l for l in proc.stdout.splitlines()
                 if not l.endswith("warnings generated.")
                 and not l.endswith("warning generated.")]
        return source, proc.returncode, "\n".join(lines).strip()

    failures = 0
    report_chunks: list[str] = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for source, rc, text in pool.map(run_one, sources):
            rel = source.relative_to(repo_root)
            if rc != 0 or text:
                failures += 1
                chunk = f"== {rel}\n{text or f'(exit {rc})'}"
                print(chunk)
                report_chunks.append(chunk)
            else:
                print(f"ok {rel}", file=sys.stderr)

    if args.output:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        header = (f"clang-tidy ({clang_tidy}) over {len(sources)} sources, "
                  f"{failures} with diagnostics\n")
        args.output.write_text(
            header + "\n\n".join(report_chunks) + "\n", encoding="utf-8")

    print(f"run_clang_tidy: {len(sources)} sources, "
          f"{failures} with diagnostics", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
