#include "taxitrace/synth/fleet_simulator.h"

#include <algorithm>
#include <cmath>

#include "taxitrace/trace/time_util.h"

namespace taxitrace {
namespace synth {
namespace {

using roadnet::VertexId;

// Mutable state of one simulated car-day run.
struct CarState {
  VertexId position;
  double time_s;
  int64_t next_point_id;
  trace::Trip current_trip;  // engine-on run being accumulated
};

}  // namespace

double TaxiDemandWeight(double hour_of_day, bool weekend) {
  const double h = std::fmod(std::fmod(hour_of_day, 24.0) + 24.0, 24.0);
  if (weekend) {
    if (h >= 18.0 || h < 2.0) return 1.5;  // evening/night peak
    if (h >= 10.0) return 1.0;
    return 0.5;
  }
  if (h >= 7.0 && h < 9.0) return 1.4;   // morning commute
  if (h >= 15.0 && h < 18.0) return 1.4; // afternoon commute
  if (h >= 9.0 && h < 15.0) return 1.0;
  if (h >= 18.0 && h < 23.0) return 0.9;
  return 0.4;  // night
}

FleetSimulator::FleetSimulator(const CityMap* map,
                               const WeatherModel* weather,
                               FleetOptions options,
                               const PedestrianModel* pedestrians)
    : map_(map),
      weather_(weather),
      pedestrians_(pedestrians),
      options_(options) {}

Result<FleetResult> FleetSimulator::Run() const {
  if (options_.num_cars <= 0 || options_.num_days <= 0) {
    return Status::InvalidArgument("fleet needs at least one car and day");
  }
  const roadnet::RoadNetwork& network = map_->network;
  const roadnet::Router router(&network);
  const PedestrianModel own_pedestrians =
      pedestrians_ == nullptr
          ? PedestrianModel(options_.seed + 17, map_->hotspots,
                            options_.num_days)
          : PedestrianModel(*pedestrians_);
  const DriverModel driver(map_, weather_, options_.driver,
                           &own_pedestrians);
  const SensorModel sensor(options_.sensor);

  FleetResult result;
  Rng master(options_.seed);
  int64_t next_trip_id = 1;

  const auto random_vertex = [&](Rng* rng) {
    return static_cast<VertexId>(rng->UniformInt(
        0, static_cast<int64_t>(network.vertices().size()) - 1));
  };
  const auto random_gate_vertex = [&](Rng* rng) {
    const size_t g = static_cast<size_t>(rng->UniformInt(0, 2));
    return map_->gates[g].terminal_vertex;
  };

  for (int car = 1; car <= options_.num_cars; ++car) {
    Rng rng = master.Fork();
    const double activity = rng.Uniform(0.6, 1.45);
    const double car_driver_skill = rng.Uniform(0.9, 1.06);

    CarState state;
    state.position = random_vertex(&rng);
    state.next_point_id = 1;
    state.current_trip = trace::Trip{};

    const auto begin_trip = [&](double t) {
      state.current_trip = trace::Trip{};
      state.current_trip.trip_id = next_trip_id++;
      state.current_trip.car_id = car;
      state.time_s = t;
    };
    const auto finish_trip = [&]() -> Status {
      if (state.current_trip.points.size() >= 2) {
        state.current_trip.RecomputeTotals();
        TAXITRACE_RETURN_IF_ERROR(
            result.store.AddTrip(std::move(state.current_trip)));
      }
      state.current_trip = trace::Trip{};
      return Status::OK();
    };
    const auto observe = [&](const std::vector<DriveSample>& samples) {
      std::vector<trace::RoutePoint> points = sensor.Observe(
          samples, state.current_trip.trip_id, &state.next_point_id,
          network.projection(), &rng);
      auto& dst = state.current_trip.points;
      dst.insert(dst.end(), points.begin(), points.end());
    };
    // Drives from the current position to `dest`; returns false when no
    // route exists (should not happen on a connected map).
    std::vector<double> multipliers(network.edges().size(), 1.0);
    const auto drive_to = [&](VertexId dest, double driver_factor) {
      for (double& m : multipliers) {
        m = rng.Uniform(1.0 - options_.route_weight_noise,
                        1.0 + options_.route_weight_noise);
      }
      Result<roadnet::Path> path =
          router.ShortestPath(state.position, dest, &multipliers);
      if (!path.ok() || path->length_m < 1.0) return false;
      const std::vector<DriveSample> samples =
          driver.Drive(*path, state.time_s, driver_factor, &rng);
      if (samples.empty()) return false;
      observe(samples);
      state.time_s = samples.back().t_s;
      state.position = dest;
      return true;
    };

    for (int day = 0; day < options_.num_days; ++day) {
      // Weekend shifts start later (evening/night traffic).
      const bool weekend =
          trace::IsWeekend(day * trace::kSecondsPerDay);
      const double shift_start_h =
          weekend ? rng.Uniform(9.0, 13.0) : rng.Uniform(5.5, 10.0);
      const double shift_len_h = rng.Uniform(7.0, 12.0);
      double t = day * trace::kSecondsPerDay + shift_start_h * 3600.0;
      const double shift_end = t + shift_len_h * 3600.0;

      const int customers = std::max(
          1, rng.Poisson(options_.mean_customers_per_day * activity));
      begin_trip(t);

      for (int c = 0; c < customers && state.time_s < shift_end; ++c) {
        // Pick a destination; trips touching the gates model traffic in
        // and out of the downtown area.
        VertexId dest;
        if (c == 0 && rng.Bernoulli(options_.gate_origin_prob)) {
          // Reposition to a gate first: the customer ride then starts at
          // the gate (an arriving fare).
          dest = random_gate_vertex(&rng);
          if (dest != state.position &&
              drive_to(dest, car_driver_skill * rng.Uniform(0.92, 1.08))) {
            ++result.num_reposition_drives;
          }
        }
        dest = rng.Bernoulli(options_.gate_dest_prob)
                   ? random_gate_vertex(&rng)
                   : random_vertex(&rng);
        if (dest == state.position) continue;
        if (!drive_to(dest, car_driver_skill * rng.Uniform(0.92, 1.08))) {
          continue;
        }
        ++result.num_customer_drives;

        // After the drop-off: engine off (ends the raw trip), or keep the
        // engine running through a stand wait, possibly repositioning.
        const double demand = TaxiDemandWeight(
            trace::HourOfDay(state.time_s),
            trace::IsWeekend(state.time_s));
        if (rng.Bernoulli(options_.engine_off_prob)) {
          TAXITRACE_RETURN_IF_ERROR(finish_trip());
          state.time_s += rng.Uniform(120.0, 1500.0) / demand;
          begin_trip(state.time_s);
        } else {
          const double wait_s = rng.Uniform(180.0, 1800.0) / demand;
          observe(driver.Idle(
              network.vertex(state.position).position, state.time_s,
              std::min(wait_s, std::max(0.0, shift_end - state.time_s))));
          state.time_s += wait_s;
          if (rng.Bernoulli(options_.reposition_prob)) {
            // Short hop to a nearby stand.
            const VertexId hop = random_vertex(&rng);
            Result<roadnet::Path> probe =
                router.ShortestPath(state.position, hop);
            if (probe.ok() && probe->length_m < 900.0 &&
                probe->length_m > 1.0 &&
                drive_to(hop, car_driver_skill)) {
              ++result.num_reposition_drives;
            }
          }
        }
      }
      TAXITRACE_RETURN_IF_ERROR(finish_trip());
    }
  }
  return result;
}

}  // namespace synth
}  // namespace taxitrace
