// Synthetic road-weather model — the stand-in for the FMI road weather
// model (Kangas et al.) that supplied the temperature classes of Fig. 10.
//
// Produces a deterministic daily temperature series for an Oulu-latitude
// year: a seasonal sinusoid plus AR(1) day-to-day weather noise plus a
// mild diurnal cycle. Only the marginal distribution over temperature
// classes matters for the reproduction.

#ifndef TAXITRACE_SYNTH_WEATHER_MODEL_H_
#define TAXITRACE_SYNTH_WEATHER_MODEL_H_

#include <string_view>
#include <vector>

#include "taxitrace/common/random.h"

namespace taxitrace {
namespace synth {

/// Temperature classes used by the Fig. 10 analysis.
enum class TemperatureClass : unsigned char {
  kBelowMinus15,   ///< T <= -15 C
  kMinus15ToMinus5,///< -15 < T <= -5
  kMinus5To0,      ///< -5 < T <= 0
  k0To5,           ///< 0 < T <= 5
  k5To15,          ///< 5 < T <= 15
  kAbove15,        ///< T > 15
};

/// Number of temperature classes.
inline constexpr int kNumTemperatureClasses = 6;

/// Classifies a temperature into its Fig. 10 class.
TemperatureClass ClassifyTemperature(double celsius);

/// Display label, e.g. "(-5,0]".
std::string_view TemperatureClassLabel(TemperatureClass c);

/// Deterministic synthetic weather for the study year.
class WeatherModel {
 public:
  /// Builds the daily series for `num_days` days starting at the study
  /// epoch (2012-10-01).
  explicit WeatherModel(uint64_t seed, int num_days = 365);

  /// Air temperature at a study timestamp, Celsius.
  [[nodiscard]] double TemperatureAt(double timestamp_s) const;

  /// Convenience: class of TemperatureAt().
  [[nodiscard]] TemperatureClass ClassAt(double timestamp_s) const;

  /// True when the road is likely slippery (sub-zero with recent
  /// precipitation) — used by the driver model to slow down in winter.
  [[nodiscard]] bool SlipperyAt(double timestamp_s) const;

  /// Daily mean temperatures, one per study day.
  [[nodiscard]] const std::vector<double>& daily_mean_celsius() const {
    return daily_mean_;
  }

 private:
  std::vector<double> daily_mean_;
  std::vector<bool> slippery_;
};

}  // namespace synth
}  // namespace taxitrace

#endif  // TAXITRACE_SYNTH_WEATHER_MODEL_H_
