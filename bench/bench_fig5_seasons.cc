// Fig. 5: taxi 1 point speeds categorised by season, plus the seasonal
// mean-speed deltas reported in Section VI-A.

#include "bench_util.h"
#include "taxitrace/analysis/seasons.h"
#include "taxitrace/analysis/summary_stats.h"

namespace taxitrace {
namespace {

void PrintFig5() {
  const core::StudyResults& r = benchutil::FullResults();
  std::printf("FIG 5. Taxi 1 data categorised by season:\n");
  std::printf("  season  points   mean km/h\n");
  for (int s = 0; s < analysis::kNumSeasons; ++s) {
    std::vector<double> speeds;
    for (const core::MatchedTransition& mt : r.transitions) {
      if (mt.record.car_id != 1) continue;
      for (const trace::RoutePoint& p : mt.transition.segment.points) {
        if (static_cast<int>(analysis::SeasonOfTimestamp(p.timestamp_s)) ==
            s) {
          speeds.push_back(p.speed_kmh);
        }
      }
    }
    const analysis::Summary summary =
        analysis::Summarize(std::move(speeds));
    std::printf("  %-7s %7lld  %9.1f\n",
                std::string(analysis::SeasonName(
                                static_cast<analysis::Season>(s)))
                    .c_str(),
                static_cast<long long>(summary.n), summary.mean);
  }
  std::printf(
      "\nFleet-wide seasonal deltas vs the all-year mean (paper: winter "
      "-0.07, spring +0.46, summer +0.70, autumn +1.38 km/h):\n");
  static const char* kNames[] = {"winter", "spring", "summer", "autumn"};
  for (int s = 0; s < analysis::kNumSeasons; ++s) {
    std::printf("  %-7s %+0.2f km/h (n=%lld)\n", kNames[s],
                r.seasonal[s].delta_kmh,
                static_cast<long long>(r.seasonal[s].n));
  }
  const bool ordering =
      r.seasonal[0].delta_kmh < r.seasonal[3].delta_kmh &&
      r.seasonal[1].delta_kmh < r.seasonal[3].delta_kmh;
  std::printf("Check: autumn fastest, winter slowest ordering -> %s\n\n",
              ordering ? "HOLDS" : "VIOLATED");
}

void BM_SeasonClassification(benchmark::State& state) {
  const core::StudyResults& r = benchutil::FullResults();
  for (auto _ : state) {
    int64_t counts[4] = {};
    for (const core::MatchedTransition& mt : r.transitions) {
      for (const trace::RoutePoint& p : mt.transition.segment.points) {
        ++counts[static_cast<int>(
            analysis::SeasonOfTimestamp(p.timestamp_s))];
      }
    }
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * r.total_point_speeds);
}
BENCHMARK(BM_SeasonClassification)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintFig5)
