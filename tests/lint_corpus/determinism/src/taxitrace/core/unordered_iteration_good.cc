// Known-good shapes the unordered-iteration rule must NOT flag: the
// sorted-snapshot fix, per-key slots, body-local sinks, and ordered
// containers shadowing an unordered name from elsewhere in the file.

#include "taxitrace/core/fake.h"

namespace taxitrace {

void DeclaresUnorderedFlows() {
  std::unordered_map<int, int> flows;
  flows[1] = 2;
}

void GoodSortedSnapshot(std::vector<int>& out) {
  std::unordered_map<int, int> counts;
  for (const auto& [key, value] : counts) {
    out.push_back(value);
  }
  std::sort(out.begin(), out.end());
}

void GoodPerKeySlot(std::vector<std::vector<int>>& out) {
  std::unordered_map<int, int> counts;
  for (const auto& [key, value] : counts) {
    out[key].push_back(value);
  }
}

void GoodBodyLocalSink(std::unordered_map<int, int>& counts) {
  for (const auto& [key, value] : counts) {
    std::vector<int> scratch;
    scratch.push_back(value);
  }
}

// `flows` is an unordered name elsewhere in this file; here the
// nearest declaration is a vector parameter, which must win.
long GoodShadowedByVector(const std::vector<int>& flows) {
  long total = 0;
  for (int f : flows) total += f;
  return total;
}

}  // namespace taxitrace
