// tt-lint: allow-file(raw-thread): nothing here uses threads expect(unused-suppression)

#include "taxitrace/core/fake.h"

namespace taxitrace {

void Nothing();

}  // namespace taxitrace
