#include "taxitrace/analysis/speed_categories.h"

namespace taxitrace {
namespace analysis {

double LowSpeedShare(const trace::Trip& trip,
                     const SpeedCategoryOptions& options) {
  if (trip.points.empty()) return 0.0;
  int64_t low = 0;
  for (const trace::RoutePoint& p : trip.points) {
    if (p.speed_kmh < options.low_speed_kmh) ++low;
  }
  return static_cast<double>(low) /
         static_cast<double>(trip.points.size());
}

double NormalSpeedShare(const trace::Trip& trip,
                        const mapmatch::MatchedRoute& route,
                        const roadnet::RoadNetwork& network,
                        const SpeedCategoryOptions& options) {
  if (route.points.empty()) return 0.0;
  int64_t normal = 0;
  for (const mapmatch::MatchedPoint& mp : route.points) {
    const double limit =
        network.edge(mp.position.edge).speed_limit_kmh;
    const double speed = trip.points[mp.point_index].speed_kmh;
    if (speed >= limit - options.normal_tolerance_kmh) ++normal;
  }
  return static_cast<double>(normal) /
         static_cast<double>(route.points.size());
}

}  // namespace analysis
}  // namespace taxitrace
