
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/roadnet/connectivity.cc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/connectivity.cc.o" "gcc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/connectivity.cc.o.d"
  "/root/repo/src/taxitrace/roadnet/map_features.cc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_features.cc.o" "gcc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_features.cc.o.d"
  "/root/repo/src/taxitrace/roadnet/map_io.cc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_io.cc.o" "gcc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_io.cc.o.d"
  "/root/repo/src/taxitrace/roadnet/map_preparation.cc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_preparation.cc.o" "gcc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_preparation.cc.o.d"
  "/root/repo/src/taxitrace/roadnet/road_network.cc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/road_network.cc.o" "gcc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/road_network.cc.o.d"
  "/root/repo/src/taxitrace/roadnet/router.cc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/router.cc.o" "gcc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/router.cc.o.d"
  "/root/repo/src/taxitrace/roadnet/spatial_index.cc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/spatial_index.cc.o" "gcc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/spatial_index.cc.o.d"
  "/root/repo/src/taxitrace/roadnet/traffic_element.cc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/traffic_element.cc.o" "gcc" "src/CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/traffic_element.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
