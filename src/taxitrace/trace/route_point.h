// Route points: the per-measurement records produced by the on-board
// tracking device. A point is generated when a significant change in the
// driving behaviour is registered (a turn, a speed change) — there is no
// fixed sampling rate.

#ifndef TAXITRACE_TRACE_ROUTE_POINT_H_
#define TAXITRACE_TRACE_ROUTE_POINT_H_

#include <cstdint>
#include <vector>

#include "taxitrace/geo/coordinates.h"

namespace taxitrace {
namespace trace {

/// One measurement record within a trip.
struct RoutePoint {
  /// Device-assigned sequence number, monotone in generation order.
  int64_t point_id = 0;
  /// Trip this point belongs to.
  int64_t trip_id = 0;
  /// Measurement time, seconds since the study epoch
  /// (2012-10-01 00:00 local — see time_util.h).
  double timestamp_s = 0.0;
  /// GPS fix.
  geo::LatLon position;
  /// Measured point speed, km/h.
  double speed_kmh = 0.0;
  /// Fuel consumed since the previous point of the trip, millilitres.
  double fuel_delta_ml = 0.0;
};

/// Sum of great-circle distances between consecutive points, metres.
double PathLengthMeters(const std::vector<RoutePoint>& points);

/// Total time span between first and last point, seconds (0 for fewer
/// than two points). Assumes the points are in time order.
double TimeSpanSeconds(const std::vector<RoutePoint>& points);

}  // namespace trace
}  // namespace taxitrace

#endif  // TAXITRACE_TRACE_ROUTE_POINT_H_
