#include <gtest/gtest.h>

#include <cstdio>

#include "taxitrace/trace/time_util.h"
#include "taxitrace/trace/trace_io.h"
#include "taxitrace/trace/trace_store.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace trace {
namespace {

RoutePoint MakePoint(int64_t id, double t, double lat, double lon,
                     double speed = 30.0, double fuel = 1.0) {
  RoutePoint p;
  p.point_id = id;
  p.trip_id = 1;
  p.timestamp_s = t;
  p.position = geo::LatLon{lat, lon};
  p.speed_kmh = speed;
  p.fuel_delta_ml = fuel;
  return p;
}

// --- RoutePoint helpers ----------------------------------------------------

TEST(RoutePointTest, PathLengthEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(PathLengthMeters({}), 0.0);
  EXPECT_DOUBLE_EQ(PathLengthMeters({MakePoint(1, 0, 65.0, 25.0)}), 0.0);
}

TEST(RoutePointTest, PathLengthSums) {
  // Two hops of ~0.001 deg latitude (~111 m each).
  const std::vector<RoutePoint> pts = {
      MakePoint(1, 0, 65.000, 25.0), MakePoint(2, 10, 65.001, 25.0),
      MakePoint(3, 20, 65.002, 25.0)};
  EXPECT_NEAR(PathLengthMeters(pts), 2 * 111.19, 1.0);
}

TEST(RoutePointTest, TimeSpan) {
  const std::vector<RoutePoint> pts = {MakePoint(1, 5, 65, 25),
                                       MakePoint(2, 65, 65, 25)};
  EXPECT_DOUBLE_EQ(TimeSpanSeconds(pts), 60.0);
  EXPECT_DOUBLE_EQ(TimeSpanSeconds({}), 0.0);
}

TEST(TripTest, RecomputeTotals) {
  Trip trip;
  trip.points = {MakePoint(1, 0, 65.000, 25.0, 30, 2.0),
                 MakePoint(2, 30, 65.001, 25.0, 30, 3.0)};
  trip.RecomputeTotals();
  EXPECT_DOUBLE_EQ(trip.total_time_s, 30.0);
  EXPECT_NEAR(trip.total_distance_m, 111.19, 1.0);
  EXPECT_DOUBLE_EQ(trip.total_fuel_ml, 5.0);
  EXPECT_DOUBLE_EQ(trip.StartTime(), 0.0);
  EXPECT_DOUBLE_EQ(trip.EndTime(), 30.0);
}

// --- TraceStore ---------------------------------------------------------------

Trip MakeTrip(int64_t id, int car) {
  Trip t;
  t.trip_id = id;
  t.car_id = car;
  t.points = {MakePoint(1, 0, 65, 25), MakePoint(2, 10, 65.001, 25)};
  return t;
}

TEST(TraceStoreTest, AddAndQuery) {
  TraceStore store;
  ASSERT_TRUE(store.AddTrip(MakeTrip(1, 1)).ok());
  ASSERT_TRUE(store.AddTrip(MakeTrip(2, 2)).ok());
  ASSERT_TRUE(store.AddTrip(MakeTrip(3, 1)).ok());
  EXPECT_EQ(store.NumTrips(), 3u);
  EXPECT_EQ(store.NumPoints(), 6u);
  EXPECT_EQ(store.TripsForCar(1).size(), 2u);
  EXPECT_EQ(store.TripsForCar(9).size(), 0u);
  EXPECT_EQ(store.CarIds(), (std::vector<int>{1, 2}));
}

TEST(TraceStoreTest, DuplicateTripRejected) {
  TraceStore store;
  ASSERT_TRUE(store.AddTrip(MakeTrip(7, 1)).ok());
  EXPECT_EQ(store.AddTrip(MakeTrip(7, 2)).code(),
            StatusCode::kAlreadyExists);
}

TEST(TraceStoreTest, FindTrip) {
  TraceStore store;
  ASSERT_TRUE(store.AddTrip(MakeTrip(5, 3)).ok());
  EXPECT_EQ(store.FindTrip(5).value()->car_id, 3);
  EXPECT_TRUE(store.FindTrip(99).status().IsNotFound());
}

// --- Trace IO ------------------------------------------------------------------

TEST(TraceIoTest, CsvRoundTrip) {
  std::vector<Trip> trips = {MakeTrip(1, 1), MakeTrip(2, 2)};
  trips[0].points[1].speed_kmh = 55.5;
  for (Trip& t : trips) t.RecomputeTotals();
  const std::string csv = TripsToCsv(trips);
  const std::vector<Trip> parsed = TripsFromCsv(csv).value();
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].trip_id, 1);
  EXPECT_EQ(parsed[1].car_id, 2);
  ASSERT_EQ(parsed[0].points.size(), 2u);
  EXPECT_NEAR(parsed[0].points[1].speed_kmh, 55.5, 1e-3);
  EXPECT_NEAR(parsed[0].total_distance_m, trips[0].total_distance_m, 0.5);
}

TEST(TraceIoTest, RejectsBadHeader) {
  EXPECT_FALSE(TripsFromCsv("a,b\n1,2\n").ok());
  EXPECT_FALSE(TripsFromCsv("").ok());
}

TEST(TraceIoTest, RejectsShortRow) {
  const std::string csv = TripsToCsv({MakeTrip(1, 1)}) + "1,2,3\n";
  EXPECT_TRUE(TripsFromCsv(csv).status().IsCorruption());
}

TEST(TraceIoTest, RejectsNonNumericField) {
  std::string csv = TripsToCsv({MakeTrip(1, 1)});
  const size_t pos = csv.find("\n") + 1;
  csv.replace(pos, 1, "x");
  EXPECT_FALSE(TripsFromCsv(csv).ok());
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/trips.csv";
  std::vector<Trip> trips = {MakeTrip(4, 2)};
  ASSERT_TRUE(WriteTripsFile(path, trips).ok());
  const std::vector<Trip> parsed = ReadTripsFile(path).value();
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].trip_id, 4);
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadTripsFile("/no/such/file.csv").status().IsIOError());
}

// --- Time utilities ----------------------------------------------------------

TEST(TimeUtilTest, EpochIsOctoberFirst2012) {
  EXPECT_EQ(DateOfTimestamp(0.0), (CivilDate{2012, 10, 1}));
}

TEST(TimeUtilTest, CivilDaysRoundTrip) {
  for (int64_t day = -1000; day <= 30000; day += 137) {
    EXPECT_EQ(DaysFromCivil(CivilFromDays(day)), day);
  }
}

TEST(TimeUtilTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(CivilDate{1970, 1, 1}), 0);
  EXPECT_EQ(DaysFromCivil(CivilDate{2000, 3, 1}), 11017);
  EXPECT_EQ(CivilFromDays(11017), (CivilDate{2000, 3, 1}));
}

TEST(TimeUtilTest, StudyYearMonths) {
  EXPECT_EQ(MonthOfTimestamp(0.0), 10);                       // Oct 2012
  EXPECT_EQ(MonthOfTimestamp(31.0 * kSecondsPerDay), 11);     // Nov 2012
  EXPECT_EQ(MonthOfTimestamp(92.0 * kSecondsPerDay), 1);      // Jan 2013
  EXPECT_EQ(MonthOfTimestamp(364.0 * kSecondsPerDay), 9);     // Sep 2013
}

TEST(TimeUtilTest, LeapDayInsideWindow) {
  // 2013 is not a leap year: Feb has 28 days.
  const double march1 = (92.0 + 31.0 + 28.0) * kSecondsPerDay;
  EXPECT_EQ(DateOfTimestamp(march1), (CivilDate{2013, 3, 1}));
}

TEST(TimeUtilTest, DayOfStudyAndHourOfDay) {
  EXPECT_EQ(DayOfStudy(10.0), 0);
  EXPECT_EQ(DayOfStudy(kSecondsPerDay + 1.0), 1);
  EXPECT_NEAR(HourOfDay(kSecondsPerDay * 2 + 3600.0 * 7.5), 7.5, 1e-9);
}

TEST(TimeUtilTest, FormatTimestamp) {
  EXPECT_EQ(FormatTimestamp(0.0), "2012-10-01 00:00:00");
  EXPECT_EQ(FormatTimestamp(3600.0 * 13 + 62.0), "2012-10-01 13:01:02");
}

}  // namespace
}  // namespace trace
}  // namespace taxitrace
