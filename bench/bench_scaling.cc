// Performance scaling: how the pipeline's cost grows with study size,
// network extent and model size — the systems-side companion to the
// reproduction benches.

#include "bench_util.h"
#include "taxitrace/model/one_way_reml.h"
#include "taxitrace/roadnet/router.h"

namespace taxitrace {
namespace {

void PrintScaling() {
  const core::StudyResults& r = benchutil::FullResults();
  std::printf("PIPELINE STAGE TIMINGS (full 7-car, 365-day study):\n");
  std::printf("  map generation       %8.1f ms\n",
              r.timings.map_generation_ms);
  std::printf("  fleet simulation     %8.1f ms\n",
              r.timings.simulation_ms);
  std::printf("  cleaning             %8.1f ms\n", r.timings.cleaning_ms);
  std::printf("  selection + matching %8.1f ms\n",
              r.timings.selection_matching_ms);
  std::printf("  grid + mixed model   %8.1f ms\n", r.timings.analysis_ms);
  std::printf("  total                %8.1f ms for %lld raw points\n\n",
              r.timings.TotalMs(),
              static_cast<long long>(
                  r.cleaning_report.raw_points));
}

void BM_PipelineByDays(benchmark::State& state) {
  for (auto _ : state) {
    core::StudyConfig config = core::StudyConfig::SmallStudy();
    config.fleet.num_days = static_cast<int>(state.range(0));
    core::Pipeline pipeline(config);
    auto results = pipeline.Run();
    benchmark::DoNotOptimize(results);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PipelineByDays)
    ->Arg(7)
    ->Arg(14)
    ->Arg(28)
    ->Arg(56)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_DijkstraByNetworkExtent(benchmark::State& state) {
  synth::CityMapOptions options;
  options.extent_m = static_cast<double>(state.range(0));
  options.core_extent_m = options.extent_m * 0.8;
  const synth::CityMap map = synth::GenerateCityMap(options).value();
  const roadnet::Router router(&map.network);
  Rng rng(5);
  for (auto _ : state) {
    const auto a = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(map.network.vertices().size()) - 1));
    const auto b = static_cast<roadnet::VertexId>(rng.UniformInt(
        0, static_cast<int64_t>(map.network.vertices().size()) - 1));
    auto path = router.ShortestPath(a, b);
    benchmark::DoNotOptimize(path);
  }
  state.counters["edges"] =
      static_cast<double>(map.network.edges().size());
}
BENCHMARK(BM_DijkstraByNetworkExtent)
    ->Arg(600)
    ->Arg(1000)
    ->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

void BM_RemlByObservations(benchmark::State& state) {
  Rng rng(7);
  model::OneWayReml reml;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    reml.Add(static_cast<size_t>(i % 80), rng.Gaussian(20.0, 5.0));
  }
  for (auto _ : state) {
    auto fit = reml.Fit();
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RemlByObservations)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_SpatialIndexBuild(benchmark::State& state) {
  const core::StudyResults& r = benchutil::SmallResults();
  for (auto _ : state) {
    roadnet::SpatialIndex index(&r.map.network,
                                static_cast<double>(state.range(0)));
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_SpatialIndexBuild)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintScaling)
