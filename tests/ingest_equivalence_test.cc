// The online-ingestion contract (stream_ingestion = true): replaying
// each car's raw trace as a reorder-perturbed arrival stream, undoing
// the reordering under a bounded watermark lag, and cleaning + matching
// each window as it closes produces StudyResults byte-identical to the
// batch pipeline — whenever every arrival displacement fits the
// lossless bound (reorder_lag / 2). Checked on fault-free and faulted
// studies at 0/1/2/8 workers via field compare plus the golden digest,
// and the funnel must reconcile the new stages exactly. Direct
// IngestSession tests pin the watermark/buffer invariants, empty
// windows, implicit opens, and late/duplicate drop accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "taxitrace/common/check.h"
#include "taxitrace/core/pipeline.h"
#include "taxitrace/core/reports.h"
#include "taxitrace/obs/funnel.h"
#include "taxitrace/stream/ingest_session.h"
#include "taxitrace/stream/stream_source.h"
#include "taxitrace/trace/trip_sink.h"

namespace taxitrace {
namespace {

constexpr int64_t kLag = 64;

core::StudyResults RunStudy(int num_threads, bool stream_ingest,
                            const fault::FaultPlan& faults = {},
                            bool observability = false,
                            int64_t shuffle_window = kLag / 2) {
  core::StudyConfig config = core::StudyConfig::SmallStudy();
  config.num_threads = num_threads;
  config.stream_ingestion = stream_ingest;
  config.ingest.reorder_lag = kLag;
  config.ingest.arrival_shuffle_window = stream_ingest ? shuffle_window : 0;
  config.faults = faults;
  config.observability.enabled = observability;
  core::Pipeline pipeline(config);
  auto run = pipeline.Run();
  TT_CHECK_OK(run.status());
  return std::move(run).value();
}

const core::StudyResults& BatchReference() {
  static const core::StudyResults reference =
      RunStudy(0, /*stream_ingest=*/false);
  return reference;
}

const std::string& BatchDigest() {
  static const std::string digest =
      core::StudyDigestJson(BatchReference());
  return digest;
}

// Field-level comparison of everything the digest does not cover: the
// cleaning report (all counters), trip totals, table 3, and matching
// health. The digest hashes transitions, cells, and the model.
void ExpectSameReports(const core::StudyResults& a,
                       const core::StudyResults& b) {
  EXPECT_EQ(a.raw_trips, b.raw_trips);
  const clean::CleaningReport& ca = a.cleaning_report;
  const clean::CleaningReport& cb = b.cleaning_report;
  EXPECT_EQ(ca.raw_trips, cb.raw_trips);
  EXPECT_EQ(ca.raw_points, cb.raw_points);
  EXPECT_EQ(ca.points_after_sanitize, cb.points_after_sanitize);
  EXPECT_EQ(ca.points_after_outliers, cb.points_after_outliers);
  EXPECT_EQ(ca.order.trips_consistent, cb.order.trips_consistent);
  EXPECT_EQ(ca.order.trips_repaired_by_id, cb.order.trips_repaired_by_id);
  EXPECT_EQ(ca.order.trips_repaired_by_timestamp,
            cb.order.trips_repaired_by_timestamp);
  EXPECT_EQ(ca.outliers.duplicates_removed, cb.outliers.duplicates_removed);
  EXPECT_EQ(ca.outliers.spikes_removed, cb.outliers.spikes_removed);
  EXPECT_EQ(ca.outliers.implied_speed_removed,
            cb.outliers.implied_speed_removed);
  EXPECT_EQ(ca.interpolation.gaps_restored, cb.interpolation.gaps_restored);
  EXPECT_EQ(ca.interpolation.points_inserted,
            cb.interpolation.points_inserted);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(ca.segmentation.splits_by_rule[r],
              cb.segmentation.splits_by_rule[r]);
  }
  EXPECT_EQ(ca.segmentation.trips_in, cb.segmentation.trips_in);
  EXPECT_EQ(ca.segmentation.segments_out, cb.segmentation.segments_out);
  EXPECT_EQ(ca.filter.removed_too_few_points,
            cb.filter.removed_too_few_points);
  EXPECT_EQ(ca.filter.removed_too_long, cb.filter.removed_too_long);
  EXPECT_EQ(ca.filter.kept, cb.filter.kept);
  EXPECT_EQ(ca.clean_segments, cb.clean_segments);
  EXPECT_EQ(ca.clean_points, cb.clean_points);
  EXPECT_EQ(ca.faults.ToString(), cb.faults.ToString());

  ASSERT_EQ(a.table3.size(), b.table3.size());
  for (size_t i = 0; i < a.table3.size(); ++i) {
    EXPECT_EQ(a.table3[i].segments_total, b.table3[i].segments_total);
    EXPECT_EQ(a.table3[i].post_filtered, b.table3[i].post_filtered);
  }
  EXPECT_EQ(a.transitions.size(), b.transitions.size());
  EXPECT_EQ(a.total_point_speeds, b.total_point_speeds);
  EXPECT_EQ(a.overall_mean_speed_kmh, b.overall_mean_speed_kmh);
  EXPECT_EQ(a.match_report.routes, b.match_report.routes);
  EXPECT_EQ(a.match_report.mean_snap_distance_m,
            b.match_report.mean_snap_distance_m);
}

// Within the lossless bound (shuffle window == reorder_lag / 2) the
// streamed run must lose nothing and reproduce the batch results bit
// for bit — at every worker count.
void ExpectLossless(const core::StudyResults& run) {
  const stream::IngestStats& s = run.ingest_stats;
  EXPECT_GT(s.points_offered, 0);
  EXPECT_EQ(s.points_released, s.points_offered);
  EXPECT_EQ(s.trip_markers_released, s.trip_markers_offered);
  EXPECT_EQ(s.points_dropped_late, 0);
  EXPECT_EQ(s.trip_markers_dropped_late, 0);
  EXPECT_EQ(s.slots_declared_lost, 0);
  EXPECT_EQ(s.windows_opened_implicit, 0);
  EXPECT_EQ(s.windows_closed, s.trip_markers_offered);
  EXPECT_LE(s.peak_buffered_records, kLag);
}

TEST(IngestEquivalenceTest, SerialStreamIngestMatchesBatch) {
  const core::StudyResults run = RunStudy(0, /*stream_ingest=*/true);
  ExpectLossless(run);
  ExpectSameReports(BatchReference(), run);
  EXPECT_EQ(BatchDigest(), core::StudyDigestJson(run));
}

TEST(IngestEquivalenceTest, OneWorkerStreamIngestMatchesBatch) {
  const core::StudyResults run = RunStudy(1, /*stream_ingest=*/true);
  ExpectLossless(run);
  ExpectSameReports(BatchReference(), run);
  EXPECT_EQ(BatchDigest(), core::StudyDigestJson(run));
}

TEST(IngestEquivalenceTest, TwoWorkersStreamIngestMatchesBatch) {
  const core::StudyResults run = RunStudy(2, /*stream_ingest=*/true);
  ExpectLossless(run);
  ExpectSameReports(BatchReference(), run);
  EXPECT_EQ(BatchDigest(), core::StudyDigestJson(run));
}

TEST(IngestEquivalenceTest, EightWorkersStreamIngestMatchesBatch) {
  const core::StudyResults run = RunStudy(8, /*stream_ingest=*/true);
  ExpectLossless(run);
  ExpectSameReports(BatchReference(), run);
  EXPECT_EQ(BatchDigest(), core::StudyDigestJson(run));
}

// Canonical arrival order (no shuffle) must flow straight through with
// zero buffering and zero latency — the contiguous-release rule.
TEST(IngestEquivalenceTest, CanonicalOrderHasZeroLatency) {
  const core::StudyResults run =
      RunStudy(0, /*stream_ingest=*/true, {}, false, /*shuffle_window=*/0);
  ExpectLossless(run);
  EXPECT_EQ(stream::IngestLatencyMax(run.ingest_stats), 0);
  EXPECT_EQ(run.ingest_stats.peak_buffered_records, 0);
  ExpectSameReports(BatchReference(), run);
  EXPECT_EQ(BatchDigest(), core::StudyDigestJson(run));
}

// Ingestion consumes the materialised, fault-corrupted store — exactly
// what batch cleaning would have seen — so a faulted study must stream
// to the same results too, at any worker count.
const core::StudyResults& FaultedReference() {
  static const core::StudyResults reference = RunStudy(
      0, /*stream_ingest=*/false, fault::FaultPlan::Uniform(0.02));
  return reference;
}

TEST(IngestEquivalenceTest, FaultedSerialStreamIngestMatchesBatch) {
  const core::StudyResults run =
      RunStudy(0, /*stream_ingest=*/true, fault::FaultPlan::Uniform(0.02));
  ExpectLossless(run);
  EXPECT_GT(run.cleaning_report.faults.TotalDropped(), 0);
  ExpectSameReports(FaultedReference(), run);
  EXPECT_EQ(core::StudyDigestJson(FaultedReference()),
            core::StudyDigestJson(run));
}

TEST(IngestEquivalenceTest, FaultedEightWorkersStreamIngestMatchesBatch) {
  const core::StudyResults run =
      RunStudy(8, /*stream_ingest=*/true, fault::FaultPlan::Uniform(0.02));
  ExpectLossless(run);
  ExpectSameReports(FaultedReference(), run);
  EXPECT_EQ(core::StudyDigestJson(FaultedReference()),
            core::StudyDigestJson(run));
}

// The funnel ledger must reconcile exactly — points.ingested's
// in == out + drops is the "nothing silently lost" proof — and the
// stages shared with batch must carry identical counts.
TEST(IngestEquivalenceTest, FunnelReconcilesAndSharedStagesMatchBatch) {
  const core::StudyResults batch =
      RunStudy(0, /*stream_ingest=*/false, {}, /*observability=*/true);
  const core::StudyResults streamed =
      RunStudy(2, /*stream_ingest=*/true, {}, /*observability=*/true);
  ASSERT_TRUE(streamed.observability.enabled);

  const Status reconciles = streamed.observability.funnel.CheckReconciles();
  EXPECT_TRUE(reconciles.ok()) << reconciles.ToString();

  const obs::FunnelStage* ingested =
      streamed.observability.funnel.Find("points.ingested");
  ASSERT_NE(ingested, nullptr);
  EXPECT_EQ(ingested->in, streamed.ingest_stats.points_offered);
  EXPECT_EQ(ingested->out, streamed.ingest_stats.points_released);
  EXPECT_EQ(ingested->in, ingested->out + ingested->TotalDropped());

  const obs::FunnelStage* windows =
      streamed.observability.funnel.Find("windows.closed");
  ASSERT_NE(windows, nullptr);
  EXPECT_EQ(windows->out, streamed.ingest_stats.windows_closed);

  const obs::FunnelStage* online =
      streamed.observability.funnel.Find("segments.emitted_online");
  ASSERT_NE(online, nullptr);
  EXPECT_EQ(online->out,
            streamed.cleaning_report.clean_segments);

  // Stages both modes populate must agree count for count.
  for (const char* name :
       {"points.sanitize", "points.outlier_filter", "segments.filter",
        "segments.gate_selection", "transitions.selection"}) {
    const obs::FunnelStage* sb = batch.observability.funnel.Find(name);
    const obs::FunnelStage* ss = streamed.observability.funnel.Find(name);
    ASSERT_NE(sb, nullptr) << name;
    ASSERT_NE(ss, nullptr) << name;
    EXPECT_EQ(sb->in, ss->in) << name;
    EXPECT_EQ(sb->out, ss->out) << name;
    EXPECT_EQ(sb->TotalDropped(), ss->TotalDropped()) << name;
  }
}

// Latency bound: with displacement d = lag / 2 every record is released
// within 2d = lag arrival slots, so p99 and the max both sit under the
// configured lag.
TEST(IngestEquivalenceTest, LatencyBoundedByConfiguredLag) {
  const core::StudyResults run = RunStudy(0, /*stream_ingest=*/true);
  const stream::IngestStats& s = run.ingest_stats;
  EXPECT_LE(stream::IngestLatencyQuantile(s, 0.99), kLag);
  EXPECT_LE(stream::IngestLatencyMax(s), kLag);
  EXPECT_GT(stream::IngestLatencyMax(s), 0);  // The shuffle did shuffle.
}

// ---------------------------------------------------------------------
// Direct IngestSession tests: the invariants the pipeline relies on.

trace::RoutePoint MakePoint(int64_t trip_id, int64_t point_id) {
  trace::RoutePoint p;
  p.point_id = point_id;
  p.trip_id = trip_id;
  p.timestamp_s = 60.0 * static_cast<double>(point_id);
  p.position = geo::LatLon{39.9 + 1e-4 * static_cast<double>(point_id),
                           116.4};
  p.speed_kmh = 30.0;
  return p;
}

// marker + n points for one trip, seqs appended after `next_seq`.
void AppendTrip(std::vector<stream::StreamRecord>* records,
                int64_t trip_id, int n_points, int64_t* next_seq) {
  stream::StreamRecord marker;
  marker.kind = stream::StreamRecord::Kind::kTripBegin;
  marker.seq = (*next_seq)++;
  marker.car_id = 1;
  marker.trip_id = trip_id;
  marker.total_time_s = 60.0 * n_points;
  records->push_back(marker);
  for (int i = 0; i < n_points; ++i) {
    stream::StreamRecord rec;
    rec.kind = stream::StreamRecord::Kind::kPoint;
    rec.seq = (*next_seq)++;
    rec.car_id = 1;
    rec.trip_id = trip_id;
    rec.point = MakePoint(trip_id, i);
    records->push_back(rec);
  }
}

class CollectSink final : public trace::TripSink {
 public:
  Status Consume(trace::Trip trip) override {
    trips.push_back(std::move(trip));
    return Status::OK();
  }
  std::vector<trace::Trip> trips;
};

// After every single Ingest call: the stream head never runs more than
// the lag ahead of the release point, and the buffer never holds more
// than lag records — the memory bound that makes ingestion "online".
TEST(IngestSessionTest, WatermarkAndBufferInvariantsHoldPerArrival) {
  std::vector<stream::StreamRecord> records;
  int64_t next_seq = 0;
  for (int t = 0; t < 20; ++t) AppendTrip(&records, 100 + t, 9, &next_seq);
  stream::IngestOptions options;
  options.reorder_lag = 8;
  stream::ShuffleArrivals(&records, /*seed=*/7, /*max_displacement=*/4);

  CollectSink sink;
  stream::IngestSession session(1, options, &sink);
  for (const stream::StreamRecord& rec : records) {
    TT_CHECK_OK(session.Ingest(rec));
    EXPECT_LE(session.max_seq_seen() - session.next_expected_seq(),
              options.reorder_lag);
    EXPECT_LE(session.buffered_records(), options.reorder_lag);
  }
  TT_CHECK_OK(session.FinishStream());
  EXPECT_EQ(session.stats().slots_declared_lost, 0);
  EXPECT_EQ(session.stats().windows_closed, 20);
  EXPECT_EQ(sink.trips.size(), 20u);
}

// Displacement <= lag / 2 releases the canonical order exactly; the
// sink sees every trip with every point, in stream order.
TEST(IngestSessionTest, BoundedShuffleReleasesCanonicalOrder) {
  std::vector<stream::StreamRecord> records;
  int64_t next_seq = 0;
  for (int t = 0; t < 12; ++t) AppendTrip(&records, 500 + t, 7, &next_seq);
  stream::IngestOptions options;
  options.reorder_lag = 16;
  stream::ShuffleArrivals(&records, /*seed=*/42, /*max_displacement=*/8);

  CollectSink sink;
  stream::IngestSession session(1, options, &sink);
  for (const stream::StreamRecord& rec : records) {
    TT_CHECK_OK(session.Ingest(rec));
  }
  TT_CHECK_OK(session.FinishStream());

  ASSERT_EQ(sink.trips.size(), 12u);
  for (int t = 0; t < 12; ++t) {
    EXPECT_EQ(sink.trips[t].trip_id, 500 + t);
    EXPECT_EQ(sink.trips[t].points.size(), 7u);
    for (size_t i = 0; i < sink.trips[t].points.size(); ++i) {
      EXPECT_EQ(sink.trips[t].points[i].point_id,
                static_cast<int64_t>(i));
    }
  }
  EXPECT_LE(stream::IngestLatencyMax(session.stats()), 16);
}

// An empty window — marker immediately followed by the next marker —
// must still close (and flush an empty trip) rather than stall the
// release index. This is the empty-shard regression at session level.
TEST(IngestSessionTest, EmptyWindowStillClosesAndAdvances) {
  std::vector<stream::StreamRecord> records;
  int64_t next_seq = 0;
  AppendTrip(&records, 1, 3, &next_seq);
  AppendTrip(&records, 2, 0, &next_seq);  // Engine on, engine off.
  AppendTrip(&records, 3, 0, &next_seq);
  AppendTrip(&records, 4, 2, &next_seq);

  CollectSink sink;
  stream::IngestSession session(1, stream::IngestOptions{}, &sink);
  for (const stream::StreamRecord& rec : records) {
    TT_CHECK_OK(session.Ingest(rec));
  }
  TT_CHECK_OK(session.FinishStream());

  ASSERT_EQ(sink.trips.size(), 4u);
  EXPECT_EQ(sink.trips[1].trip_id, 2);
  EXPECT_TRUE(sink.trips[1].points.empty());
  EXPECT_TRUE(sink.trips[2].points.empty());
  EXPECT_EQ(sink.trips[3].points.size(), 2u);
  EXPECT_EQ(session.stats().windows_closed, 4);
  EXPECT_EQ(session.stats().windows_opened_implicit, 0);
}

// A lost marker must not strand its points: the first point of an
// unknown container opens the window implicitly (zeroed totals).
TEST(IngestSessionTest, LostMarkerOpensWindowImplicitly) {
  std::vector<stream::StreamRecord> records;
  int64_t next_seq = 0;
  AppendTrip(&records, 7, 5, &next_seq);
  // Drop the marker: the 5 points arrive orphaned.
  records.erase(records.begin());

  CollectSink sink;
  stream::IngestOptions options;
  options.reorder_lag = 2;
  stream::IngestSession session(1, options, &sink);
  for (const stream::StreamRecord& rec : records) {
    TT_CHECK_OK(session.Ingest(rec));
  }
  TT_CHECK_OK(session.FinishStream());

  ASSERT_EQ(sink.trips.size(), 1u);
  EXPECT_EQ(sink.trips[0].trip_id, 7);
  EXPECT_EQ(sink.trips[0].points.size(), 5u);
  EXPECT_EQ(sink.trips[0].total_time_s, 0.0);  // Synthesised container.
  EXPECT_EQ(session.stats().windows_opened_implicit, 1);
  EXPECT_EQ(session.stats().slots_declared_lost, 1);  // The marker's slot.
}

// Arrivals behind the watermark and duplicate seqs are counted drops,
// and the ledger reconciles exactly: offered == released + dropped.
TEST(IngestSessionTest, LateAndDuplicateArrivalsAreCountedDrops) {
  std::vector<stream::StreamRecord> records;
  int64_t next_seq = 0;
  AppendTrip(&records, 9, 10, &next_seq);

  stream::IngestOptions options;
  options.reorder_lag = 2;
  CollectSink sink;
  stream::IngestSession session(1, options, &sink);

  // Send seq 0..7 in order, then replay seq 1 (already released: late),
  // then seq 3 twice in a row from the buffer-side (duplicate), then
  // the rest.
  for (int i = 0; i < 8; ++i) TT_CHECK_OK(session.Ingest(records[i]));
  TT_CHECK_OK(session.Ingest(records[1]));  // Late replay.
  stream::StreamRecord ahead = records[9];
  TT_CHECK_OK(session.Ingest(ahead));           // Buffered out of order.
  TT_CHECK_OK(session.Ingest(ahead));           // Duplicate of a buffered seq.
  TT_CHECK_OK(session.Ingest(records[8]));      // Fills the gap.
  TT_CHECK_OK(session.Ingest(records[10]));
  TT_CHECK_OK(session.FinishStream());

  const stream::IngestStats& s = session.stats();
  EXPECT_EQ(s.points_dropped_late, 2);
  EXPECT_EQ(s.points_offered,
            s.points_released + s.points_dropped_late);
  EXPECT_EQ(s.trip_markers_offered, s.trip_markers_released);
  ASSERT_EQ(sink.trips.size(), 1u);
  EXPECT_EQ(sink.trips[0].points.size(), 10u);
}

// Once the watermark declares a slot lost, a window older than the
// configured lag never survives the advance: everything before the
// gap flushes, the straggler that eventually arrives is dropped.
TEST(IngestSessionTest, WatermarkAdvanceClosesStaleWindows) {
  std::vector<stream::StreamRecord> records;
  int64_t next_seq = 0;
  AppendTrip(&records, 11, 4, &next_seq);  // seqs 0..4
  AppendTrip(&records, 12, 4, &next_seq);  // seqs 5..9

  stream::IngestOptions options;
  options.reorder_lag = 3;
  CollectSink sink;
  stream::IngestSession session(1, options, &sink);

  // Hold back seq 3; stream everything else in order. When seq 7
  // arrives, max_seq - next_expected = 7 - 3 > 3 forces the watermark
  // past the gap, flushing window 11 without its held point.
  for (const stream::StreamRecord& rec : records) {
    if (rec.seq == 3) continue;
    TT_CHECK_OK(session.Ingest(rec));
    EXPECT_LE(session.max_seq_seen() - session.next_expected_seq(),
              options.reorder_lag);
  }
  EXPECT_EQ(session.stats().slots_declared_lost, 1);
  ASSERT_GE(sink.trips.size(), 1u);
  EXPECT_EQ(sink.trips[0].trip_id, 11);
  EXPECT_EQ(sink.trips[0].points.size(), 3u);  // One point lost.

  TT_CHECK_OK(session.Ingest(records[3]));  // The straggler: late drop.
  EXPECT_EQ(session.stats().points_dropped_late, 1);
  TT_CHECK_OK(session.FinishStream());
  ASSERT_EQ(sink.trips.size(), 2u);
  const stream::IngestStats& s = session.stats();
  EXPECT_EQ(s.points_offered,
            s.points_released + s.points_dropped_late);
}

}  // namespace
}  // namespace taxitrace
