// Figure emitters: CSV series and GeoJSON layers reproducing the paper's
// figures (3-10) as data any plotting/GIS tool can render.

#ifndef TAXITRACE_CORE_FIGURES_H_
#define TAXITRACE_CORE_FIGURES_H_

#include <string>

#include "taxitrace/core/pipeline.h"

namespace taxitrace {
namespace core {

/// Fig. 3/4/5 base series: one row per transition point of one car (0 =
/// all cars) with position, speed, direction and season columns.
std::string SpeedPointsCsv(const StudyResults& results, int car_id = 0);

/// Fig. 6 / Fig. 9 layer: one GeoJSON polygon per grid cell with mean
/// speed, point count, feature counts and (when the model has been
/// fitted) the BLUP intercept.
std::string CellMapGeoJson(const StudyResults& results,
                           const std::string& direction = "");

/// Fig. 7 series: theoretical vs sample quantiles of the cell
/// intercepts.
std::string QqPlotCsv(const StudyResults& results);

/// Fig. 8 series: cell intercepts with 95% confidence limits, ordered by
/// intercept.
std::string InterceptsCsv(const StudyResults& results);

/// Fig. 10 series: low-speed share by temperature class, split at the
/// traffic-light count boundary (default 9, the paper's experimentally
/// chosen value).
std::string WeatherLowSpeedCsv(const StudyResults& results,
                               int light_boundary = 9);

/// Temporal series: mean point speed per hour of day over the
/// transition points (hour,n,mean_kmh rows).
std::string HourlySpeedCsv(const StudyResults& results);

/// Fig. 2 layer: the origin/destination gate roads with their thick
/// geometry polygons and the central-area boundary, as GeoJSON.
std::string GatesGeoJson(const StudyResults& results,
                         double half_width_m = 60.0);

/// Writes a string to a file.
Status WriteTextFile(const std::string& path, const std::string& text);

}  // namespace core
}  // namespace taxitrace

#endif  // TAXITRACE_CORE_FIGURES_H_
