# Empty compiler generated dependencies file for interpolation_test.
# This may be replaced when dependencies are built.
