file(REMOVE_RECURSE
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/connectivity.cc.o"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/connectivity.cc.o.d"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_features.cc.o"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_features.cc.o.d"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_io.cc.o"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_io.cc.o.d"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_preparation.cc.o"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/map_preparation.cc.o.d"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/road_network.cc.o"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/road_network.cc.o.d"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/router.cc.o"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/router.cc.o.d"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/spatial_index.cc.o"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/spatial_index.cc.o.d"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/traffic_element.cc.o"
  "CMakeFiles/taxitrace_roadnet.dir/taxitrace/roadnet/traffic_element.cc.o.d"
  "libtaxitrace_roadnet.a"
  "libtaxitrace_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxitrace_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
