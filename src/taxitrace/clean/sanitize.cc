#include "taxitrace/clean/sanitize.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace taxitrace {
namespace clean {
namespace {

bool AllFieldsFinite(const trace::RoutePoint& p) {
  return std::isfinite(p.timestamp_s) && std::isfinite(p.position.lat_deg) &&
         std::isfinite(p.position.lon_deg) && std::isfinite(p.speed_kmh) &&
         std::isfinite(p.fuel_delta_ml);
}

double MedianTimestamp(const std::vector<trace::RoutePoint>& points) {
  std::vector<double> ts;
  ts.reserve(points.size());
  for (const trace::RoutePoint& p : points) ts.push_back(p.timestamp_s);
  const auto mid = ts.begin() + static_cast<ptrdiff_t>(ts.size() / 2);
  std::nth_element(ts.begin(), mid, ts.end());
  return *mid;
}

}  // namespace

void SanitizeTrip(trace::Trip* trip, const SanitizeOptions& options,
                  fault::FaultReport* report) {
  if (!options.enabled || trip->points.empty()) return;

  const size_t before = trip->points.size();
  std::vector<trace::RoutePoint> kept;
  kept.reserve(before);
  for (const trace::RoutePoint& p : trip->points) {
    if (!AllFieldsFinite(p)) {
      ++report->points_dropped_nonfinite;
      continue;
    }
    if (p.trip_id != trip->trip_id) {
      ++report->points_dropped_foreign;
      continue;
    }
    if (p.speed_kmh < 0.0) {
      ++report->points_dropped_negative_speed;
      continue;
    }
    if (options.has_region &&
        (p.position.lat_deg < options.lat_min_deg ||
         p.position.lat_deg > options.lat_max_deg ||
         p.position.lon_deg < options.lon_min_deg ||
         p.position.lon_deg > options.lon_max_deg)) {
      ++report->points_dropped_out_of_region;
      continue;
    }
    kept.push_back(p);
  }

  // The clock-jump gate needs a reference time, so it runs on the
  // survivors of the field checks: the median of a mostly-sane trip is
  // robust to the jumped minority.
  if (options.max_median_offset_s > 0.0 && !kept.empty()) {
    const double median = MedianTimestamp(kept);
    std::vector<trace::RoutePoint> in_window;
    in_window.reserve(kept.size());
    for (const trace::RoutePoint& p : kept) {
      if (std::fabs(p.timestamp_s - median) > options.max_median_offset_s) {
        ++report->points_dropped_clock_jump;
        continue;
      }
      in_window.push_back(p);
    }
    kept = std::move(in_window);
  }

  if (kept.size() != before) {
    trip->points = std::move(kept);
    trip->RecomputeTotals();
  }
}

}  // namespace clean
}  // namespace taxitrace
