#include "taxitrace/analysis/route_stats.h"

namespace taxitrace {
namespace analysis {

std::vector<Table4Row> BuildTable4(
    const std::vector<TransitionRecord>& records,
    const std::vector<std::string>& directions) {
  std::vector<Table4Row> rows;
  rows.reserve(directions.size());
  for (const std::string& dir : directions) {
    std::vector<double> time_h, dist_km, low_pct, normal_pct, lights,
        junctions, crossings, fuel;
    for (const TransitionRecord& r : records) {
      if (r.direction != dir) continue;
      time_h.push_back(r.route_time_h);
      dist_km.push_back(r.route_distance_km);
      low_pct.push_back(100.0 * r.low_speed_share);
      normal_pct.push_back(100.0 * r.normal_speed_share);
      lights.push_back(r.attributes.traffic_lights);
      junctions.push_back(r.attributes.junctions);
      crossings.push_back(r.attributes.pedestrian_crossings);
      fuel.push_back(r.fuel_ml);
    }
    Table4Row row;
    row.direction = dir;
    row.route_time_h = Summarize(std::move(time_h));
    row.route_distance_km = Summarize(std::move(dist_km));
    row.low_speed_pct = Summarize(std::move(low_pct));
    row.normal_speed_pct = Summarize(std::move(normal_pct));
    row.traffic_lights = Summarize(std::move(lights));
    row.junctions = Summarize(std::move(junctions));
    row.pedestrian_crossings = Summarize(std::move(crossings));
    row.fuel_ml = Summarize(std::move(fuel));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace analysis
}  // namespace taxitrace
