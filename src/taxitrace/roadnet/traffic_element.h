// Traffic elements: the smallest units of road centre-line geometry, as in
// the Digiroad database of the Finnish road and street network. Each
// element has a unique identifier, geometry digitised in a specific
// direction, and characteristic attributes (functional class, speed limit,
// allowed travel direction).

#ifndef TAXITRACE_ROADNET_TRAFFIC_ELEMENT_H_
#define TAXITRACE_ROADNET_TRAFFIC_ELEMENT_H_

#include <cstdint>
#include <string>

#include "taxitrace/geo/polyline.h"

namespace taxitrace {
namespace roadnet {

/// Identifier of a traffic element within a map.
using ElementId = int64_t;

/// Allowed travel direction relative to the digitisation direction of the
/// geometry (front() -> back()).
enum class TravelDirection : unsigned char {
  kBoth,      ///< Two-way traffic.
  kForward,   ///< One-way along the digitisation direction.
  kBackward,  ///< One-way against the digitisation direction.
};

/// Digiroad-style functional road classes; smaller is more significant.
enum class FunctionalClass : unsigned char {
  kRegionalRoad = 1,   ///< Main regional roads / arterials.
  kConnectingRoad = 2, ///< Connecting streets.
  kLocalStreet = 3,    ///< Local streets.
  kAccessRoad = 4,     ///< Access / service roads, dead ends.
};

/// One traffic element of the digital map.
struct TrafficElement {
  ElementId id = 0;
  geo::Polyline geometry;  ///< Centre line in digitisation order.
  FunctionalClass functional_class = FunctionalClass::kLocalStreet;
  double speed_limit_kmh = 40.0;
  TravelDirection direction = TravelDirection::kBoth;
  std::string road_name;

  /// Length of the centre-line geometry, metres.
  [[nodiscard]] double LengthMeters() const { return geometry.Length(); }
};

/// Stable name for a travel direction ("both"/"forward"/"backward").
std::string_view TravelDirectionName(TravelDirection d);

/// Flips a direction constraint when geometry is reversed.
TravelDirection ReverseDirection(TravelDirection d);

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_TRAFFIC_ELEMENT_H_
