file(REMOVE_RECURSE
  "CMakeFiles/bench_text_aggregates.dir/bench_text_aggregates.cc.o"
  "CMakeFiles/bench_text_aggregates.dir/bench_text_aggregates.cc.o.d"
  "bench_text_aggregates"
  "bench_text_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
