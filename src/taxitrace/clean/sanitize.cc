#include "taxitrace/clean/sanitize.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace taxitrace {
namespace clean {
namespace {

bool AllFieldsFinite(const trace::RoutePoint& p) {
  return std::isfinite(p.timestamp_s) && std::isfinite(p.position.lat_deg) &&
         std::isfinite(p.position.lon_deg) && std::isfinite(p.speed_kmh) &&
         std::isfinite(p.fuel_delta_ml);
}

// Median of the first `count` timestamps; `ts` is a reusable buffer.
double MedianTimestamp(const std::vector<trace::RoutePoint>& points,
                       size_t count, std::vector<double>* ts) {
  ts->clear();
  ts->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ts->push_back(points[i].timestamp_s);
  }
  const auto mid = ts->begin() + static_cast<ptrdiff_t>(ts->size() / 2);
  std::nth_element(ts->begin(), mid, ts->end());
  return *mid;
}

}  // namespace

void SanitizeTrip(trace::Trip* trip, const SanitizeOptions& options,
                  fault::FaultReport* report) {
  if (!options.enabled || trip->points.empty()) return;

  // Both gates compact in place (two-pointer sweeps); the checks, their
  // order, and the dropped-point counters are those of the historical
  // copy-based version.
  std::vector<trace::RoutePoint>& pts = trip->points;
  const size_t before = pts.size();
  size_t kept = 0;
  for (size_t r = 0; r < before; ++r) {
    const trace::RoutePoint& p = pts[r];
    if (!AllFieldsFinite(p)) {
      ++report->points_dropped_nonfinite;
      continue;
    }
    if (p.trip_id != trip->trip_id) {
      ++report->points_dropped_foreign;
      continue;
    }
    if (p.speed_kmh < 0.0) {
      ++report->points_dropped_negative_speed;
      continue;
    }
    if (options.has_region &&
        (p.position.lat_deg < options.lat_min_deg ||
         p.position.lat_deg > options.lat_max_deg ||
         p.position.lon_deg < options.lon_min_deg ||
         p.position.lon_deg > options.lon_max_deg)) {
      ++report->points_dropped_out_of_region;
      continue;
    }
    if (kept != r) pts[kept] = p;
    ++kept;
  }

  // The clock-jump gate needs a reference time, so it runs on the
  // survivors of the field checks: the median of a mostly-sane trip is
  // robust to the jumped minority.
  if (options.max_median_offset_s > 0.0 && kept > 0) {
    std::vector<double> ts;
    const double median = MedianTimestamp(pts, kept, &ts);
    size_t in_window = 0;
    for (size_t r = 0; r < kept; ++r) {
      if (std::fabs(pts[r].timestamp_s - median) >
          options.max_median_offset_s) {
        ++report->points_dropped_clock_jump;
        continue;
      }
      if (in_window != r) pts[in_window] = pts[r];
      ++in_window;
    }
    kept = in_window;
  }

  if (kept != before) {
    pts.resize(kept);
    trip->RecomputeTotals();
  }
}

}  // namespace clean
}  // namespace taxitrace
