file(REMOVE_RECURSE
  "libtaxitrace_synth.a"
)
