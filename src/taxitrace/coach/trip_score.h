// Post-driving trip analysis — the "Driving coach" application the
// paper's pipeline was incorporated into (reference [31]): per-trip
// eco-driving metrics computed from the cleaned route points and the
// matched map context.

#ifndef TAXITRACE_COACH_TRIP_SCORE_H_
#define TAXITRACE_COACH_TRIP_SCORE_H_

#include "taxitrace/mapmatch/incremental_matcher.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace coach {

/// Scoring thresholds.
struct TripScoreOptions {
  /// A point below this speed counts as idling.
  double idle_speed_kmh = 2.0;
  /// Low-speed threshold (the paper's 10 km/h fuel factor).
  double low_speed_kmh = 10.0;
  /// A speed change above this rate (km/h per second) between
  /// consecutive points counts as a harsh acceleration/braking event.
  double harsh_accel_kmh_per_s = 12.0;
  /// Driving above limit + margin counts as speeding.
  double speeding_margin_kmh = 8.0;
  /// Reference cruising economy, ml per km, for the fuel-excess metric.
  double reference_economy_ml_per_km = 65.0;
};

/// Eco-driving metrics of one trip.
struct TripScore {
  int64_t trip_id = 0;
  double distance_km = 0.0;
  double duration_min = 0.0;
  double idle_share = 0.0;       ///< Fraction of points idling.
  double low_speed_share = 0.0;  ///< Fraction below the low threshold.
  int harsh_events = 0;          ///< Harsh accel/brake count.
  double harsh_per_km = 0.0;
  double speeding_share = 0.0;   ///< Fraction of matched points speeding.
  double fuel_per_km_ml = 0.0;
  /// Fuel burnt beyond the reference economy, ml (>= 0).
  double fuel_excess_ml = 0.0;
  /// Composite 0 (poor) .. 100 (ideal) eco score.
  double eco_score = 0.0;
};

/// Scores one cleaned trip. The matched route supplies speed limits for
/// the speeding metric; pass nullptr when no match is available (the
/// speeding share is then 0).
TripScore ScoreTrip(const trace::Trip& trip,
                    const mapmatch::MatchedRoute* route,
                    const roadnet::RoadNetwork* network,
                    const TripScoreOptions& options = {});

}  // namespace coach
}  // namespace taxitrace

#endif  // TAXITRACE_COACH_TRIP_SCORE_H_
