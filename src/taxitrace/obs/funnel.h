// The funnel ledger: the paper's headline claim is a funnel — ~30k raw
// trips shrink stage by stage (repair -> segmentation -> filters -> OD
// selection -> matching) before any statistic is trusted — and this
// ledger makes that funnel a first-class, reconciled record instead of
// counters scattered across stage reports.
//
// Every stage reports items in, items out and items dropped by reason,
// all in one unit (points, rows, trips, segments or transitions), and
// must reconcile exactly: in == out + sum(drops). CheckReconciles()
// enforces that, and the determinism tests assert the ledger is
// byte-identical at any worker count (every count is merged in index
// order upstream, like the cleaning report's own counters).

#ifndef TAXITRACE_OBS_FUNNEL_H_
#define TAXITRACE_OBS_FUNNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "taxitrace/common/status.h"

namespace taxitrace {
namespace obs {

/// One drop reason within a stage.
struct FunnelDrop {
  std::string reason;
  int64_t count = 0;
  friend bool operator==(const FunnelDrop&, const FunnelDrop&) = default;
};

/// One stage of the funnel. `unit` names what is being counted so
/// stages with different units (points vs trips vs segments) are never
/// compared against each other by accident.
struct FunnelStage {
  std::string name;
  std::string unit;
  int64_t in = 0;
  int64_t out = 0;
  std::vector<FunnelDrop> drops;  ///< In report order.

  /// Accumulates `count` into the drop entry for `reason` (created on
  /// first use, preserving report order).
  void Drop(const std::string& reason, int64_t count);

  [[nodiscard]] int64_t TotalDropped() const;

  friend bool operator==(const FunnelStage&, const FunnelStage&) = default;
};

/// Ordered list of funnel stages for one study run.
class FunnelLedger {
 public:
  /// Appends a stage and returns it for filling. Stage names must be
  /// unique (TT_CHECK'd).
  FunnelStage& AddStage(std::string name, std::string unit);

  /// The stage named `name`, or nullptr.
  [[nodiscard]] const FunnelStage* Find(const std::string& name) const;

  [[nodiscard]] const std::vector<FunnelStage>& stages() const {
    return stages_;
  }
  [[nodiscard]] bool empty() const { return stages_.empty(); }

  /// OK when every stage satisfies in == out + sum(drops); otherwise
  /// the first violating stage, with its counts.
  [[nodiscard]] Status CheckReconciles() const;

  /// Text table: stage, unit, in, out, dropped, and per-reason drops.
  [[nodiscard]] std::string Table() const;

  /// JSON array of stage objects.
  [[nodiscard]] std::string Json() const;

  friend bool operator==(const FunnelLedger&, const FunnelLedger&) = default;

 private:
  std::vector<FunnelStage> stages_;
};

}  // namespace obs
}  // namespace taxitrace

#endif  // TAXITRACE_OBS_FUNNEL_H_
