"""`python3 -m tt_lint` entry point (with scripts/ on sys.path)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
