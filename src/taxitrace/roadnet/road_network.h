// The prepared road-network graph G = {V, E}: vertices are road junctions
// (or terminal dead-ends), edges are maximal chains of traffic elements
// between two vertices (Section IV-A of the paper). Point features are
// attached to the edge they lie on.

#ifndef TAXITRACE_ROADNET_ROAD_NETWORK_H_
#define TAXITRACE_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/geo/coordinates.h"
#include "taxitrace/geo/polyline.h"
#include "taxitrace/roadnet/map_features.h"
#include "taxitrace/roadnet/traffic_element.h"

namespace taxitrace {
namespace roadnet {

/// Index of a vertex within a RoadNetwork.
using VertexId = int32_t;
/// Index of an edge within a RoadNetwork.
using EdgeId = int32_t;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// A graph vertex: a junction (>= 3 incident elements) or a terminal
/// point (1 incident element).
struct Vertex {
  VertexId id = kInvalidVertex;
  geo::EnPoint position;
  bool is_junction = false;  ///< True for degree >= 3 endpoints.
};

/// A graph edge: one or more traffic elements merged into a single chain.
struct Edge {
  EdgeId id = kInvalidEdge;
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  geo::Polyline geometry;  ///< Oriented from `from` to `to`.
  double length_m = 0.0;
  double speed_limit_kmh = 40.0;
  FunctionalClass functional_class = FunctionalClass::kLocalStreet;
  /// Travel constraint relative to the edge orientation (from -> to).
  TravelDirection direction = TravelDirection::kBoth;
  /// Ids of the contributing traffic elements, in chain order (the
  /// `elements` column of Table 1).
  std::vector<ElementId> element_ids;
  std::string road_name;
  /// Features lying on this edge.
  std::vector<FeatureId> feature_ids;
};

/// A position along an edge, measured as arc length from the edge's
/// `from` end.
struct EdgePosition {
  EdgeId edge = kInvalidEdge;
  double arc_length_m = 0.0;
};

/// One incident half-edge in the flattened (CSR) adjacency: everything
/// a graph traversal needs about leaving a base vertex through one
/// edge, precomputed so the hot loops never chase Edge pointers for
/// topology. 24 bytes, cache-line friendly: a degree-4 junction's whole
/// neighbourhood fits in two lines.
struct HalfEdge {
  EdgeId edge = kInvalidEdge;
  VertexId head = kInvalidVertex;  ///< Far endpoint seen from the base.
  double length_m = 0.0;
  /// base -> head is drivable (the router's out-arc test).
  bool traversable_out = false;
  /// head -> base is drivable (the reversed-graph arc test).
  bool traversable_in = false;
  /// Leaving the base vertex follows the edge orientation (from -> to).
  bool forward = false;
};

/// The prepared road network. Construct through `PrepareRoadNetwork()`
/// (map_preparation.h) or the builder API below.
class RoadNetwork {
 public:
  /// Creates an empty network whose local frame is anchored at `origin`.
  explicit RoadNetwork(const geo::LatLon& origin);

  /// WGS84 anchor of the local east/north frame.
  [[nodiscard]] const geo::LatLon& origin() const { return origin_; }
  /// Projection between WGS84 and the local frame.
  [[nodiscard]] const geo::LocalProjection& projection() const {
    return projection_;
  }

  [[nodiscard]] const std::vector<Vertex>& vertices() const {
    return vertices_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<MapFeature>& features() const {
    return features_;
  }

  /// The vertex / edge / feature with the given id. Ids index the vectors
  /// above; passing an invalid id is a programming error (TT_DCHECK'd).
  [[nodiscard]] const Vertex& vertex(VertexId id) const;
  [[nodiscard]] const Edge& edge(EdgeId id) const;
  [[nodiscard]] const MapFeature& feature(FeatureId id) const;

  /// Edges incident to `v` (regardless of traversability).
  [[nodiscard]] const std::vector<EdgeId>& IncidentEdges(VertexId v) const;

  /// Flattened (CSR) adjacency of `v`: one HalfEdge per entry of
  /// IncidentEdges(v), in the same order, with head vertex, length and
  /// per-direction traversability precomputed. Rebuilt lazily after the
  /// last builder mutation; the rebuild mutates shared state, so the
  /// first call on a finished network must happen before the network is
  /// shared across threads (Router's constructor and WarmAdjacency()
  /// both do this). Concurrent calls are race-free once warmed.
  /// Defined inline below the class: it sits in every search's hot loop.
  [[nodiscard]] std::span<const HalfEdge> OutArcs(VertexId v) const;

  /// Builds the CSR adjacency now if it is stale (idempotent). Call
  /// after the last builder mutation when the network is about to be
  /// read from multiple threads.
  void WarmAdjacency() const;

  /// True when the edge may be driven in the given orientation
  /// (forward = from -> to).
  [[nodiscard]] bool CanTraverse(EdgeId e, bool forward) const;

  /// The vertex at the far end of `e` when entering from `v`. Requires
  /// `v` to be one of the edge's endpoints.
  [[nodiscard]] VertexId Opposite(EdgeId e, VertexId v) const;

  /// Point on the edge geometry at the given arc length (clamped).
  [[nodiscard]] geo::EnPoint PointAt(const EdgePosition& pos) const;

  /// Number of features of type `t` attached to edge `e`.
  [[nodiscard]] int CountFeaturesOnEdge(EdgeId e, FeatureType t) const;

  /// Total number of features of type `t` in the map.
  [[nodiscard]] int CountFeatures(FeatureType t) const;

  /// Bounding box of all edge geometry.
  [[nodiscard]] geo::Bbox Bounds() const;

  // --- Builder API -------------------------------------------------------

  /// Adds a vertex and returns its id.
  VertexId AddVertex(const geo::EnPoint& position, bool is_junction);

  /// Adds an edge; `edge.id` is ignored and assigned. `from`/`to` must be
  /// valid. Returns the assigned id.
  EdgeId AddEdge(Edge edge);

  /// Adds a point feature, attaching it to the nearest edge within
  /// `attach_radius_m` (no attachment if none is close enough). Returns
  /// the assigned feature id.
  FeatureId AddFeature(FeatureType type, const geo::EnPoint& position,
                       double attach_radius_m = 40.0);

  /// Structural validation: endpoint/geometry agreement, positive
  /// lengths, monotone ids, feature attachment consistency.
  Status Validate() const;

 private:
  void RebuildAdjacency() const;

  geo::LatLon origin_;
  geo::LocalProjection projection_;
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<MapFeature> features_;
  std::vector<std::vector<EdgeId>> incident_;

  // CSR mirror of `incident_`, rebuilt lazily when the builder grows the
  // graph (see OutArcs() for the threading contract). `mutable` because
  // the cache is semantically part of the const read API.
  mutable std::vector<int32_t> csr_offsets_;
  mutable std::vector<HalfEdge> csr_arcs_;
  mutable size_t csr_vertex_count_ = 0;  ///< vertices_ size at last build
  mutable size_t csr_edge_count_ = 0;    ///< edges_ size at last build
};

inline std::span<const HalfEdge> RoadNetwork::OutArcs(VertexId v) const {
  if (csr_vertex_count_ != vertices_.size() ||
      csr_edge_count_ != edges_.size()) {
    RebuildAdjacency();
  }
  const auto begin =
      static_cast<size_t>(csr_offsets_[static_cast<size_t>(v)]);
  const auto end =
      static_cast<size_t>(csr_offsets_[static_cast<size_t>(v) + 1]);
  return {csr_arcs_.data() + begin, end - begin};
}

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_ROAD_NETWORK_H_
