#include "taxitrace/core/reports.h"

#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace core {
namespace {

std::string FormatSummary(const char* label, const analysis::Summary& s,
                          const char* fmt = "%8.3f") {
  std::string out = StrFormat("  %-14s", label);
  out += StrFormat(fmt, s.min);
  out += StrFormat(fmt, s.q1);
  out += StrFormat(fmt, s.median);
  out += StrFormat(fmt, s.mean);
  out += StrFormat(fmt, s.q3);
  out += StrFormat(fmt, s.max);
  out += "\n";
  return out;
}

std::string FormatStratum(const char* label,
                          const analysis::CellStratumStats& s) {
  return StrFormat("  %-28s %6lld %9.2f %9.2f %9.2f %10.2f\n", label,
                   static_cast<long long>(s.num_cells), s.min, s.max,
                   s.mean, s.variance);
}

}  // namespace

std::string FormatTable1(const roadnet::RoadNetwork& network,
                         size_t max_rows) {
  const std::vector<roadnet::JunctionPairRow> rows =
      roadnet::JunctionPairTable(network);
  std::string out =
      "TABLE 1. Junction pairs (EPSG:4326)\n"
      "  junction1                 elements                junction2\n";
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    std::string elements = "{";
    for (size_t k = 0; k < rows[i].element_ids.size(); ++k) {
      if (k > 0) elements += ",";
      elements += StrFormat(
          "%lld", static_cast<long long>(rows[i].element_ids[k]));
    }
    elements += "}";
    out += StrFormat("  %-25s %-23s %s\n",
                     geo::ToWktPoint(rows[i].junction1).c_str(),
                     elements.c_str(),
                     geo::ToWktPoint(rows[i].junction2).c_str());
  }
  out += StrFormat("  ... %zu edges total\n", rows.size());
  return out;
}

std::string FormatTable2Report(const clean::CleaningReport& report) {
  std::string out = "TABLE 2 segmentation rules, applied:\n";
  for (int r = 0; r < 5; ++r) {
    out += StrFormat("  rule %d splits: %lld\n", r + 1,
                     static_cast<long long>(
                         report.segmentation.splits_by_rule[r]));
  }
  out += StrFormat(
      "  raw trips %lld (points %lld) -> segments %lld -> cleaned %lld "
      "(points %lld)\n",
      static_cast<long long>(report.raw_trips),
      static_cast<long long>(report.raw_points),
      static_cast<long long>(report.segmentation.segments_out),
      static_cast<long long>(report.clean_segments),
      static_cast<long long>(report.clean_points));
  out += StrFormat(
      "  order repair: %lld consistent, %lld by id, %lld by timestamp\n",
      static_cast<long long>(report.order.trips_consistent),
      static_cast<long long>(report.order.trips_repaired_by_id),
      static_cast<long long>(report.order.trips_repaired_by_timestamp));
  out += StrFormat(
      "  outliers: %lld duplicates, %lld spikes, %lld impossible speeds\n",
      static_cast<long long>(report.outliers.duplicates_removed),
      static_cast<long long>(report.outliers.spikes_removed),
      static_cast<long long>(report.outliers.implied_speed_removed));
  out += StrFormat(
      "  filters: %lld dropped (<5 points), %lld dropped (>30 km)\n",
      static_cast<long long>(report.filter.removed_too_few_points),
      static_cast<long long>(report.filter.removed_too_long));
  return out;
}

std::string FormatTable3(const std::vector<odselect::Table3Row>& rows) {
  std::string out =
      "TABLE 3. Map matching the trip segments\n"
      "  car  segments  filtered+cleaned  transitions  within-centre  "
      "post-filtered\n";
  odselect::Table3Row total;
  for (const odselect::Table3Row& r : rows) {
    out += StrFormat("  %3d  %8lld  %16lld  %11lld  %13lld  %13lld\n",
                     r.car_id, static_cast<long long>(r.segments_total),
                     static_cast<long long>(r.filtered_cleaned),
                     static_cast<long long>(r.transitions_total),
                     static_cast<long long>(r.transitions_central),
                     static_cast<long long>(r.post_filtered));
    total.segments_total += r.segments_total;
    total.filtered_cleaned += r.filtered_cleaned;
    total.transitions_total += r.transitions_total;
    total.transitions_central += r.transitions_central;
    total.post_filtered += r.post_filtered;
  }
  out += StrFormat("  sum  %8lld  %16lld  %11lld  %13lld  %13lld\n",
                   static_cast<long long>(total.segments_total),
                   static_cast<long long>(total.filtered_cleaned),
                   static_cast<long long>(total.transitions_total),
                   static_cast<long long>(total.transitions_central),
                   static_cast<long long>(total.post_filtered));
  return out;
}

std::string FormatTable4(const std::vector<analysis::Table4Row>& rows) {
  std::string out =
      "TABLE 4. Summary statistics of the selected features\n"
      "  (per metric:        min      1stQ    median      mean      3rdQ"
      "       max)\n";
  for (const analysis::Table4Row& r : rows) {
    out += StrFormat("  route %s (n=%lld)\n", r.direction.c_str(),
                     static_cast<long long>(r.route_time_h.n));
    out += FormatSummary("time (h)", r.route_time_h, "%10.3f");
    out += FormatSummary("dist (km)", r.route_distance_km, "%10.3f");
    out += FormatSummary("low speed %", r.low_speed_pct, "%10.1f");
    out += FormatSummary("norm speed %", r.normal_speed_pct, "%10.1f");
    out += FormatSummary("traffic lights", r.traffic_lights, "%10.1f");
    out += FormatSummary("junctions", r.junctions, "%10.1f");
    out += FormatSummary("ped. crossings", r.pedestrian_crossings,
                         "%10.1f");
    out += FormatSummary("fuel (ml)", r.fuel_ml, "%10.1f");
  }
  return out;
}

std::string FormatTable5(const analysis::Table5& table) {
  std::string out =
      "TABLE 5. Effect of traffic lights and bus stops on cell average "
      "speed\n"
      "  stratum                       cells       min       max      "
      "mean   variance\n";
  out += FormatStratum("lights = 0", table.no_lights);
  out += FormatStratum("lights = 0 and bus = 0", table.no_lights_no_bus);
  out += FormatStratum("lights > 0 and bus > 0", table.lights_and_bus);
  out += FormatStratum("lights > 0", table.lights);
  return out;
}

std::string FormatTextAggregates(const StudyResults& results) {
  std::string out = StrFormat(
      "Point speeds analysed: %lld (paper: 30469)\n",
      static_cast<long long>(results.total_point_speeds));
  out += StrFormat("Overall mean point speed: %.2f km/h\n",
                   results.overall_mean_speed_kmh);
  static const char* kSeasonNames[] = {"winter", "spring", "summer",
                                       "autumn"};
  static const double kPaperDeltas[] = {-0.07, 0.46, 0.70, 1.38};
  for (int s = 0; s < analysis::kNumSeasons; ++s) {
    out += StrFormat(
        "  %s: mean %.2f km/h, delta vs year %+.2f km/h (paper %+.2f)\n",
        kSeasonNames[s], results.seasonal[s].mean_kmh,
        results.seasonal[s].delta_kmh, kPaperDeltas[s]);
  }
  const roadnet::RoadNetwork& net = results.map.network;
  int junctions = 0;
  net.ForEachVertex([&](const roadnet::Vertex& v) {
    if (v.is_junction) ++junctions;
  });
  out += StrFormat(
      "Feature census {lights, bus stops, ped. crossings, junctions}: "
      "{%d,%d,%d,%d} (paper {67,48,293,271})\n",
      net.CountFeatures(roadnet::FeatureType::kTrafficLight),
      net.CountFeatures(roadnet::FeatureType::kBusStop),
      net.CountFeatures(roadnet::FeatureType::kPedestrianCrossing),
      junctions);
  out += StrFormat(
      "Matching health: %.1f m mean snap distance (max %.0f m), %.2f "
      "gaps/km, %.1f%% points unmatched over %lld routes\n",
      results.match_report.mean_snap_distance_m,
      results.match_report.max_snap_distance_m,
      results.match_report.GapsPerKm(),
      100.0 * results.match_report.SkipRate(),
      static_cast<long long>(results.match_report.routes));
  out += StrFormat(
      "Geography effect (REML LRT of the cell intercepts): statistic "
      "%.1f, p %s — %s\n",
      results.geography_lrt.statistic,
      results.geography_lrt.p_value < 1e-12
          ? "< 1e-12"
          : StrFormat("= %.3g", results.geography_lrt.p_value).c_str(),
      results.geography_lrt.Significant()
          ? "strong evidence, as the paper reports"
          : "no evidence");
  return out;
}

std::string StudyDigestJson(const StudyResults& results) {
  std::string out = "{\n";
  bool first = true;
  const auto count = [&](const char* key, int64_t value) {
    if (!first) out += ",\n";
    first = false;
    out += StrFormat("  \"%s\": %lld", key, static_cast<long long>(value));
  };
  const auto real = [&](const char* key, double value) {
    if (!first) out += ",\n";
    first = false;
    out += StrFormat("  \"%s\": %.9g", key, value);
  };

  count("raw_trips", results.raw_trips);
  const clean::CleaningReport& cr = results.cleaning_report;
  count("raw_points", cr.raw_points);
  count("order_trips_consistent", cr.order.trips_consistent);
  count("order_trips_repaired_by_id", cr.order.trips_repaired_by_id);
  count("order_trips_repaired_by_timestamp",
        cr.order.trips_repaired_by_timestamp);
  count("outlier_duplicates_removed", cr.outliers.duplicates_removed);
  count("outlier_spikes_removed", cr.outliers.spikes_removed);
  count("outlier_implied_speed_removed", cr.outliers.implied_speed_removed);
  count("interpolation_points_inserted", cr.interpolation.points_inserted);
  for (int rule = 0; rule < 5; ++rule) {
    count(StrFormat("segmentation_splits_rule%d", rule + 1).c_str(),
          cr.segmentation.splits_by_rule[rule]);
  }
  count("filter_removed_too_few_points", cr.filter.removed_too_few_points);
  count("filter_removed_too_long", cr.filter.removed_too_long);
  count("clean_segments", cr.clean_segments);
  count("clean_points", cr.clean_points);
  count("faults_injected_total", cr.faults.TotalInjected());
  count("faults_dropped_total", cr.faults.TotalDropped());

  for (const odselect::Table3Row& row : results.table3) {
    const std::string prefix = StrFormat("car%d_", row.car_id);
    count((prefix + "segments_total").c_str(), row.segments_total);
    count((prefix + "filtered_cleaned").c_str(), row.filtered_cleaned);
    count((prefix + "transitions_total").c_str(), row.transitions_total);
    count((prefix + "transitions_central").c_str(),
          row.transitions_central);
    count((prefix + "post_filtered").c_str(), row.post_filtered);
  }

  count("transitions", static_cast<int64_t>(results.transitions.size()));
  count("cells", static_cast<int64_t>(results.cells.size()));
  count("total_point_speeds", results.total_point_speeds);
  real("overall_mean_speed_kmh", results.overall_mean_speed_kmh);
  for (int s = 0; s < analysis::kNumSeasons; ++s) {
    count(StrFormat("season%d_n", s).c_str(), results.seasonal[s].n);
    real(StrFormat("season%d_mean_kmh", s).c_str(),
         results.seasonal[s].mean_kmh);
  }

  count("match_routes", results.match_report.routes);
  count("match_matched_points", results.match_report.matched_points);
  count("match_skipped_points", results.match_report.skipped_points);
  count("match_gaps_filled", results.match_report.gaps_filled);
  real("match_mean_snap_distance_m",
       results.match_report.mean_snap_distance_m);
  real("match_total_length_km", results.match_report.total_length_km);

  real("cell_model_mu", results.cell_model.mu);
  real("cell_model_sigma2_group", results.cell_model.sigma2_group);
  real("cell_model_sigma2_residual", results.cell_model.sigma2_residual);
  count("cell_model_num_observations",
        results.cell_model.num_observations);
  real("geography_lrt_statistic", results.geography_lrt.statistic);

  out += "\n}\n";
  return out;
}

}  // namespace core
}  // namespace taxitrace
