file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_feature_effects.dir/bench_ablation_feature_effects.cc.o"
  "CMakeFiles/bench_ablation_feature_effects.dir/bench_ablation_feature_effects.cc.o.d"
  "bench_ablation_feature_effects"
  "bench_ablation_feature_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_feature_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
