#include "taxitrace/clean/outlier_filter.h"

#include <cmath>
#include <cstddef>

namespace taxitrace {
namespace clean {
namespace {

// True when b is a position spike between a and c: far from both while a
// and c are near each other.
bool IsSpike(const trace::RoutePoint& a, const trace::RoutePoint& b,
             const trace::RoutePoint& c,
             const OutlierFilterOptions& options) {
  const double ab = geo::HaversineMeters(a.position, b.position);
  const double bc = geo::HaversineMeters(b.position, c.position);
  if (ab < options.spike_distance_m || bc < options.spike_distance_m) {
    return false;
  }
  const double ac = geo::HaversineMeters(a.position, c.position);
  return ac < options.spike_closeness_ratio * (ab + bc);
}

// True when moving from a to b implies an impossible speed.
bool ImpliedSpeedTooHigh(const trace::RoutePoint& a,
                         const trace::RoutePoint& b,
                         const OutlierFilterOptions& options) {
  const double dt = b.timestamp_s - a.timestamp_s;
  if (dt <= 0.0) return false;  // handled by duplicate/order logic
  const double d = geo::HaversineMeters(a.position, b.position);
  return d / dt > options.max_implied_speed_ms;
}

}  // namespace

void FilterOutliers(std::vector<trace::RoutePoint>* points,
                    const OutlierFilterOptions& options,
                    OutlierFilterStats* stats) {
  OutlierFilterStats local;
  std::vector<trace::RoutePoint>& pts = *points;

  // Pass 1: duplicates (identical id and timestamp as the predecessor).
  // In-place compaction; pts[kept - 1] is the last survivor, exactly
  // the out.back() of the historical copy-based pass.
  {
    size_t kept = 0;
    for (size_t r = 0; r < pts.size(); ++r) {
      if (kept > 0 && pts[kept - 1].point_id == pts[r].point_id &&
          pts[kept - 1].timestamp_s == pts[r].timestamp_s) {
        ++local.duplicates_removed;
        continue;
      }
      if (kept != r) pts[kept] = pts[r];
      ++kept;
    }
    pts.resize(kept);
  }

  // Passes 2+3 iterate to a joint fixpoint: dropping an implied-speed
  // offender changes its neighbours' adjacency, which can expose a spike
  // the earlier scan could not see (e.g. a cluster of displaced points
  // where each shielded the next), and vice versa.
  bool round_changed = true;
  while (round_changed) {
    round_changed = false;

    // Spikes. The historical pass restarted the scan from index 1 after
    // every removal (removing the lowest-indexed spike each time);
    // backing up one position is enough to see the same sequence: every
    // triple left of i - 1 was just re-checked unchanged, so after
    // erasing at i the lowest-indexed spike is at i - 1 or later.
    // Identical removals and counts at O(n) scans instead of O(n^2).
    {
      size_t i = 1;
      while (pts.size() >= 3 && i + 1 < pts.size()) {
        if (IsSpike(pts[i - 1], pts[i], pts[i + 1], options)) {
          pts.erase(pts.begin() + static_cast<ptrdiff_t>(i));
          ++local.spikes_removed;
          round_changed = true;
          if (i > 1) --i;
        } else {
          ++i;
        }
      }
    }

    // Impossible implied speeds (drop the later point of the pair; a bad
    // first fix surfaces as its successor looking too fast, so also
    // check and drop a leading offender against its two successors).
    // Same in-place compaction shape as the duplicate pass.
    {
      size_t kept = 0;
      for (size_t r = 0; r < pts.size(); ++r) {
        if (kept > 0 &&
            ImpliedSpeedTooHigh(pts[kept - 1], pts[r], options)) {
          ++local.implied_speed_removed;
          round_changed = true;
          continue;
        }
        if (kept != r) pts[kept] = pts[r];
        ++kept;
      }
      pts.resize(kept);
    }
  }

  if (stats != nullptr) {
    stats->duplicates_removed += local.duplicates_removed;
    stats->spikes_removed += local.spikes_removed;
    stats->implied_speed_removed += local.implied_speed_removed;
  }
}

void FilterTripOutliers(trace::Trip* trip,
                        const OutlierFilterOptions& options,
                        OutlierFilterStats* stats) {
  FilterOutliers(&trip->points, options, stats);
  trip->RecomputeTotals();
}

}  // namespace clean
}  // namespace taxitrace
