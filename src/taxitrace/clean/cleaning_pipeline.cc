#include "taxitrace/clean/cleaning_pipeline.h"

namespace taxitrace {
namespace clean {

std::vector<trace::Trip> CleanTrips(const trace::TraceStore& store,
                                    const CleaningOptions& options,
                                    CleaningReport* report) {
  CleaningReport local;
  local.raw_trips = static_cast<int64_t>(store.NumTrips());
  local.raw_points = static_cast<int64_t>(store.NumPoints());

  std::vector<trace::Trip> repaired;
  repaired.reserve(store.trips().size());
  for (const trace::Trip& raw : store.trips()) {
    trace::Trip trip = raw;
    RepairTripOrder(&trip, &local.order);
    FilterTripOutliers(&trip, options.outliers, &local.outliers);
    if (options.restore_lost_points) {
      RestoreTripLostPoints(&trip, options.interpolation,
                            &local.interpolation);
    }
    repaired.push_back(std::move(trip));
  }

  std::vector<trace::Trip> segments =
      SegmentTrips(repaired, options.segmentation, &local.segmentation);
  std::vector<trace::Trip> cleaned =
      FilterTrips(std::move(segments), options.filter, &local.filter);

  local.clean_segments = static_cast<int64_t>(cleaned.size());
  for (const trace::Trip& t : cleaned) {
    local.clean_points += static_cast<int64_t>(t.points.size());
  }
  if (report != nullptr) *report = local;
  return cleaned;
}

}  // namespace clean
}  // namespace taxitrace
