# Empty compiler generated dependencies file for coach_test.
# This may be replaced when dependencies are built.
