// CSV persistence for trips (flat point-per-row format).

#ifndef TAXITRACE_TRACE_TRACE_IO_H_
#define TAXITRACE_TRACE_TRACE_IO_H_

#include <string>
#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace trace {

/// Serialises trips to CSV with header
/// trip_id,car_id,point_id,timestamp_s,lat,lon,speed_kmh,fuel_delta_ml —
/// one row per route point, trips in input order.
std::string TripsToCsv(const std::vector<Trip>& trips);

/// Parses the format written by TripsToCsv. Points with the same trip_id
/// must be contiguous; trip totals are recomputed from the points.
Result<std::vector<Trip>> TripsFromCsv(const std::string& text);

/// File round-trip helpers.
Status WriteTripsFile(const std::string& path,
                      const std::vector<Trip>& trips);
Result<std::vector<Trip>> ReadTripsFile(const std::string& path);

}  // namespace trace
}  // namespace taxitrace

#endif  // TAXITRACE_TRACE_TRACE_IO_H_
