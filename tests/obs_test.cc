// Unit tests for the observability layer: metrics registry, funnel
// ledger reconciliation, and stage-span tracing.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "taxitrace/obs/funnel.h"
#include "taxitrace/obs/metrics.h"
#include "taxitrace/obs/observability.h"
#include "taxitrace/obs/stage_span.h"

namespace taxitrace {
namespace obs {
namespace {

// --- MetricsRegistry ----------------------------------------------------------

TEST(MetricsRegistryTest, CounterRegistersOnFirstUseAndAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.counter("clean.raw_trips");
  c->Add();
  c->Add(41);
  // Same name resolves to the same counter.
  EXPECT_EQ(registry.counter("clean.raw_trips"), c);
  EXPECT_EQ(c->value(), 42);

  const std::vector<CounterSample> samples = registry.Counters();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0], (CounterSample{"clean.raw_trips", 42}));
}

TEST(MetricsRegistryTest, SnapshotsAreNameSorted) {
  MetricsRegistry registry;
  registry.counter("zeta")->Add(1);
  registry.counter("alpha")->Add(2);
  registry.counter("mid")->Add(3);
  const std::vector<CounterSample> samples = registry.Counters();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[2].name, "zeta");
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("executor.queue_wait_ms");
  g->Set(1.5);
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
  const auto gauges = registry.Gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].name, "executor.queue_wait_ms");
  EXPECT_DOUBLE_EQ(gauges[0].value, 2.5);
}

TEST(MetricsRegistryTest, HistogramSnapshotCarriesBinsAndNonFinite) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.histogram("speeds", 0.0, 10.0, 5);
  h->Record(1.0);
  h->Record(9.0);
  h->Record(std::numeric_limits<double>::infinity());
  const auto histograms = registry.Histograms();
  ASSERT_EQ(histograms.size(), 1u);
  const HistogramSample& sample = histograms[0];
  EXPECT_EQ(sample.name, "speeds");
  EXPECT_DOUBLE_EQ(sample.lo, 0.0);
  EXPECT_DOUBLE_EQ(sample.hi, 10.0);
  ASSERT_EQ(sample.counts.size(), 5u);
  EXPECT_EQ(sample.total, 2);
  EXPECT_EQ(sample.nonfinite, 1);
  int64_t binned = 0;
  for (int64_t c : sample.counts) binned += c;
  EXPECT_EQ(binned, 2);
}

TEST(MetricsRegistryTest, TwoRegistriesFedTheSameCountsCompareEqual) {
  MetricsRegistry a;
  MetricsRegistry b;
  // Registration order differs; snapshots must not.
  a.counter("x")->Add(7);
  a.counter("y")->Add(9);
  b.counter("y")->Add(9);
  b.counter("x")->Add(7);
  EXPECT_EQ(a.Counters(), b.Counters());
}

// --- FunnelLedger -------------------------------------------------------------

TEST(FunnelTest, DropAccumulatesByReasonPreservingOrder) {
  FunnelStage stage;
  stage.Drop("spike", 3);
  stage.Drop("duplicate", 2);
  stage.Drop("spike", 4);
  ASSERT_EQ(stage.drops.size(), 2u);
  EXPECT_EQ(stage.drops[0], (FunnelDrop{"spike", 7}));
  EXPECT_EQ(stage.drops[1], (FunnelDrop{"duplicate", 2}));
  EXPECT_EQ(stage.TotalDropped(), 9);
}

TEST(FunnelTest, CheckReconcilesAcceptsBalancedStages) {
  FunnelLedger ledger;
  FunnelStage& clean = ledger.AddStage("points.sanitize", "points");
  clean.in = 100;
  clean.Drop("bad_coordinate", 4);
  clean.out = 96;
  FunnelStage& filter = ledger.AddStage("segments.filter", "segments");
  filter.in = 10;
  filter.out = 10;
  EXPECT_TRUE(ledger.CheckReconciles().ok());
}

TEST(FunnelTest, CheckReconcilesNamesTheViolatingStage) {
  FunnelLedger ledger;
  FunnelStage& ok = ledger.AddStage("trips.cleaning", "trips");
  ok.in = 5;
  ok.out = 5;
  FunnelStage& bad = ledger.AddStage("points.sanitize", "points");
  bad.in = 100;
  bad.Drop("spike", 1);
  bad.out = 96;  // 3 points unaccounted for.
  const Status status = ledger.CheckReconciles();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("points.sanitize"), std::string::npos);
}

TEST(FunnelTest, FindLocatesStagesByName) {
  FunnelLedger ledger;
  ledger.AddStage("a", "trips").in = 1;
  EXPECT_NE(ledger.Find("a"), nullptr);
  EXPECT_EQ(ledger.Find("missing"), nullptr);
}

TEST(FunnelTest, TableAndJsonRenderEveryStage) {
  FunnelLedger ledger;
  FunnelStage& stage = ledger.AddStage("transitions.selection", "transitions");
  stage.in = 32;
  stage.Drop("direction_not_selected", 12);
  stage.Drop("endpoint_filter", 1);
  stage.out = 19;
  const std::string table = ledger.Table();
  EXPECT_NE(table.find("transitions.selection"), std::string::npos);
  EXPECT_NE(table.find("direction_not_selected"), std::string::npos);
  const std::string json = ledger.Json();
  EXPECT_NE(json.find("\"transitions.selection\""), std::string::npos);
  EXPECT_NE(json.find("\"endpoint_filter\""), std::string::npos);
}

// --- Trace / StageSpan --------------------------------------------------------

TEST(StageSpanTest, SpansNestOnOneThread) {
  Trace trace;
  {
    StageSpan outer(&trace, "cleaning");
    outer.AddItems(10);
    {
      StageSpan inner(&trace, "outlier_filter");
      inner.AddItems(3);
    }
  }
  const std::vector<SpanRecord> records = trace.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "cleaning");
  EXPECT_EQ(records[0].parent, -1);
  EXPECT_EQ(records[0].depth, 0);
  EXPECT_EQ(records[0].items, 10);
  EXPECT_EQ(records[1].name, "outlier_filter");
  EXPECT_EQ(records[1].parent, 0);
  EXPECT_EQ(records[1].depth, 1);
  EXPECT_EQ(records[1].items, 3);
  EXPECT_EQ(records[0].thread_id, records[1].thread_id);
  // Both spans closed, so both carry a duration.
  EXPECT_GE(records[0].duration_ms, records[1].duration_ms);
}

TEST(StageSpanTest, FinishClosesEarlyAndDestructorIsIdempotent) {
  Trace trace;
  StageSpan span(&trace, "simulation");
  span.AddItems(5);
  span.Finish();
  const auto after_finish = trace.records();
  ASSERT_EQ(after_finish.size(), 1u);
  EXPECT_EQ(after_finish[0].items, 5);
  // Items added after Finish, and the destructor, change nothing.
  span.AddItems(100);
  EXPECT_EQ(trace.records()[0].items, 5);
}

TEST(StageSpanTest, NullTraceIsANoOp) {
  StageSpan span(nullptr, "disabled");
  span.AddItems(7);
  EXPECT_DOUBLE_EQ(span.ElapsedMs(), 0.0);
  span.Finish();  // Must not crash.
}

TEST(StageSpanTest, SiblingSpansShareAParent) {
  Trace trace;
  StageSpan parent(&trace, "pipeline");
  { StageSpan a(&trace, "first"); }
  { StageSpan b(&trace, "second"); }
  parent.Finish();
  const auto records = trace.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].parent, 0);
  EXPECT_EQ(records[2].parent, 0);
}

TEST(StageSpanTest, RenderersCoverEveryRecord) {
  Trace trace;
  {
    StageSpan outer(&trace, "analysis");
    StageSpan inner(&trace, "grid");
    inner.Finish();
  }
  const auto records = trace.records();
  const std::string json = TraceJson(records);
  EXPECT_NE(json.find("\"analysis\""), std::string::npos);
  EXPECT_NE(json.find("\"grid\""), std::string::npos);
  const std::string tree = TraceTree(records);
  EXPECT_NE(tree.find("analysis"), std::string::npos);
  EXPECT_NE(tree.find("grid"), std::string::npos);
}

// --- Snapshot rendering -------------------------------------------------------

StudySnapshot MakeSnapshot() {
  StudySnapshot snapshot;
  snapshot.enabled = true;
  FunnelStage& stage = snapshot.funnel.AddStage("trips.cleaning", "trips");
  stage.in = 4;
  stage.Drop("empty", 1);
  stage.out = 3;
  snapshot.counters.push_back({"roadnet.router.searches", 11});
  snapshot.gauges.push_back({"executor.queue_wait_ms", 0.25});
  HistogramSample sample;
  sample.name = "clean.points_per_segment";
  sample.lo = 0.0;
  sample.hi = 10.0;
  sample.counts = {1, 0};
  sample.total = 1;
  snapshot.histograms.push_back(sample);
  SpanRecord span;
  span.name = "cleaning";
  span.duration_ms = 1.0;
  snapshot.spans.push_back(span);
  return snapshot;
}

TEST(SnapshotTest, JsonMentionsEverySection) {
  const std::string json = SnapshotJson(MakeSnapshot());
  EXPECT_NE(json.find("\"trips.cleaning\""), std::string::npos);
  EXPECT_NE(json.find("\"roadnet.router.searches\""), std::string::npos);
  EXPECT_NE(json.find("\"executor.queue_wait_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"clean.points_per_segment\""), std::string::npos);
  EXPECT_NE(json.find("\"cleaning\""), std::string::npos);
}

TEST(SnapshotTest, TextShowsFunnelAndSpans) {
  const std::string text = SnapshotText(MakeSnapshot());
  EXPECT_NE(text.find("trips.cleaning"), std::string::npos);
  EXPECT_NE(text.find("cleaning"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace taxitrace
