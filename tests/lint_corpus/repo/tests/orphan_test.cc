// expect(unregistered-test)
