#include "taxitrace/trace/trip.h"

namespace taxitrace {
namespace trace {

void Trip::RecomputeTotals() {
  total_time_s = TimeSpanSeconds(points);
  total_distance_m = PathLengthMeters(points);
  total_fuel_ml = 0.0;
  for (const RoutePoint& p : points) total_fuel_ml += p.fuel_delta_ml;
}

}  // namespace trace
}  // namespace taxitrace
