// Result<T>: a value-or-Status, the Arrow idiom for fallible producers.

#ifndef TAXITRACE_COMMON_RESULT_H_
#define TAXITRACE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "taxitrace/common/status.h"

namespace taxitrace {

/// Holds either a successfully produced T or the Status explaining why it
/// could not be produced. Construction from an OK status is a programming
/// error (asserted).
template <typename T>
class Result {
 public:
  /// Constructs a successful result.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() &&
           "Result constructed from OK status");
  }

  /// True when a value is present.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK() when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define TAXITRACE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define TAXITRACE_ASSIGN_OR_RETURN(lhs, expr)                               \
  TAXITRACE_ASSIGN_OR_RETURN_IMPL(                                          \
      TAXITRACE_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define TAXITRACE_CONCAT_INNER_(a, b) a##b
#define TAXITRACE_CONCAT_(a, b) TAXITRACE_CONCAT_INNER_(a, b)

}  // namespace taxitrace

#endif  // TAXITRACE_COMMON_RESULT_H_
