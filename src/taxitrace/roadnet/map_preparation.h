// Map preparation (Section IV-A): reconstruct the road-network graph from
// raw traffic elements so every edge is a single chain of elements between
// two junctions.
//
// Endpoints where at least three traffic elements meet are junctions;
// endpoints shared by exactly two elements are intermediate points whose
// elements are merged; endpoints touched by one element are terminal
// (dead-end) vertices. The result is the junction-pair table of Table 1
// and the final graph.

#ifndef TAXITRACE_ROADNET_MAP_PREPARATION_H_
#define TAXITRACE_ROADNET_MAP_PREPARATION_H_

#include <vector>

#include "taxitrace/common/result.h"
#include "taxitrace/roadnet/road_network.h"

namespace taxitrace {
namespace roadnet {

/// A feature to place on the prepared map.
struct FeatureSpec {
  FeatureType type;
  geo::EnPoint position;
};

/// Options controlling graph reconstruction.
struct MapPreparationOptions {
  /// Endpoints closer than this snap together, metres.
  double endpoint_snap_m = 0.05;
  /// Maximum feature-to-edge attachment distance, metres.
  double feature_attach_radius_m = 40.0;
  /// Tile partition of the produced network (default: single tile, the
  /// historical dense-id layout).
  TilingOptions tiling;
};

/// One row of the junction-pair table (Table 1).
struct JunctionPairRow {
  geo::LatLon junction1;                 ///< Edge start in EPSG:4326.
  std::vector<ElementId> element_ids;    ///< Contributing elements.
  geo::LatLon junction2;                 ///< Edge end in EPSG:4326.
};

/// Classification of a traffic-element endpoint by incidence degree.
enum class EndpointType : unsigned char {
  kTerminal,      ///< One element touches (dead end).
  kIntermediate,  ///< Exactly two elements touch: merge through it.
  kJunction,      ///< Three or more elements touch.
};

/// Statistics reported by the preparation step.
struct MapPreparationStats {
  int num_elements = 0;
  int num_junctions = 0;
  int num_terminals = 0;
  int num_intermediate_points = 0;
  int num_edges = 0;
  int num_multi_element_edges = 0;  ///< Edges merged from >= 2 elements.
  int num_direction_conflicts = 0;  ///< One-way chains with mixed signs.
};

/// Builds the road-network graph from traffic elements and attaches the
/// given features. Fails on empty input, elements with degenerate
/// geometry, or duplicate element ids.
Result<RoadNetwork> PrepareRoadNetwork(
    const std::vector<TrafficElement>& elements,
    const std::vector<FeatureSpec>& features, const geo::LatLon& origin,
    const MapPreparationOptions& options = {},
    MapPreparationStats* stats = nullptr);

/// Renders the junction-pair table (Table 1) for a prepared network.
std::vector<JunctionPairRow> JunctionPairTable(const RoadNetwork& network);

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_MAP_PREPARATION_H_
