#include "taxitrace/trace/trace_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "taxitrace/common/csv.h"
#include "taxitrace/common/strings.h"

namespace taxitrace {
namespace trace {
namespace {

constexpr const char* kHeader[] = {"trip_id",     "car_id", "point_id",
                                   "timestamp_s", "lat",    "lon",
                                   "speed_kmh",   "fuel_delta_ml"};
constexpr size_t kNumColumns = sizeof(kHeader) / sizeof(kHeader[0]);

/// Parses one data row into a point + its car id. On failure the status
/// carries the row number and column name of the offending field.
Status ParseRow(const CsvRow& row, size_t row_index, RoutePoint* point,
                int64_t* car_id) {
  struct Field {
    const char* name;
    bool is_int;
    void* dest;
  };
  int64_t trip_id = 0;
  const Field fields[] = {
      {"trip_id", true, &trip_id},
      {"car_id", true, car_id},
      {"point_id", true, &point->point_id},
      {"timestamp_s", false, &point->timestamp_s},
      {"lat", false, &point->position.lat_deg},
      {"lon", false, &point->position.lon_deg},
      {"speed_kmh", false, &point->speed_kmh},
      {"fuel_delta_ml", false, &point->fuel_delta_ml}};
  for (size_t c = 0; c < kNumColumns; ++c) {
    if (fields[c].is_int) {
      Result<int64_t> v = ParseInt64(row[c]);
      if (!v.ok()) {
        return Status::Corruption(
            StrFormat("row %zu, column %s: %s", row_index, fields[c].name,
                      v.status().message().c_str()));
      }
      *static_cast<int64_t*>(fields[c].dest) = *v;
    } else {
      Result<double> v = ParseDouble(row[c]);
      if (!v.ok()) {
        return Status::Corruption(
            StrFormat("row %zu, column %s: %s", row_index, fields[c].name,
                      v.status().message().c_str()));
      }
      *static_cast<double*>(fields[c].dest) = *v;
    }
  }
  point->trip_id = trip_id;
  return Status::OK();
}

/// True when the row contains bytes that cannot appear in this format
/// (anything outside printable ASCII — the writer emits numbers only).
bool HasNonTextBytes(const CsvRow& row) {
  for (const std::string& field : row) {
    for (const char c : field) {
      const auto u = static_cast<unsigned char>(c);
      if (u < 0x20 || u > 0x7E) return true;
    }
  }
  return false;
}

void AppendPoint(std::vector<Trip>* trips, const RoutePoint& p,
                 int64_t car_id) {
  if (trips->empty() || trips->back().trip_id != p.trip_id) {
    Trip t;
    t.trip_id = p.trip_id;
    t.car_id = static_cast<int>(car_id);
    trips->push_back(std::move(t));
  }
  trips->back().points.push_back(p);
}

}  // namespace

std::string TripsToCsv(const std::vector<Trip>& trips) {
  std::vector<CsvRow> rows;
  rows.emplace_back(kHeader, kHeader + kNumColumns);
  for (const Trip& t : trips) {
    for (const RoutePoint& p : t.points) {
      rows.push_back(CsvRow{
          StrFormat("%lld", static_cast<long long>(t.trip_id)),
          StrFormat("%d", t.car_id),
          StrFormat("%lld", static_cast<long long>(p.point_id)),
          StrFormat("%.3f", p.timestamp_s),
          StrFormat("%.7f", p.position.lat_deg),
          StrFormat("%.7f", p.position.lon_deg),
          StrFormat("%.3f", p.speed_kmh),
          StrFormat("%.3f", p.fuel_delta_ml)});
    }
  }
  return WriteCsv(rows);
}

Result<std::vector<Trip>> TripsFromCsv(const std::string& text) {
  TAXITRACE_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                             ParseCsvChecked(text, kNumColumns));
  if (rows.empty()) return Status::Corruption("missing CSV header");
  std::vector<Trip> trips;
  for (size_t r = 1; r < rows.size(); ++r) {
    RoutePoint p;
    int64_t car_id = 0;
    TAXITRACE_RETURN_IF_ERROR(ParseRow(rows[r], r, &p, &car_id));
    AppendPoint(&trips, p, car_id);
  }
  for (Trip& t : trips) t.RecomputeTotals();
  return trips;
}

Result<std::vector<Trip>> TripsFromCsvLenient(const std::string& text,
                                              TraceIoStats* stats) {
  const std::vector<CsvRow> rows = ParseCsvLenient(text);
  if (rows.empty()) return Status::Corruption("missing CSV header");
  if (rows[0].size() != kNumColumns ||
      !std::equal(rows[0].begin(), rows[0].end(), kHeader)) {
    return Status::Corruption("unexpected CSV header");
  }
  std::vector<Trip> trips;
  for (size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    ++stats->rows_total;
    if (HasNonTextBytes(row)) {
      ++stats->rows_dropped_non_utf8;
      continue;
    }
    if (row.size() != kNumColumns) {
      ++stats->rows_dropped_malformed;
      continue;
    }
    RoutePoint p;
    int64_t car_id = 0;
    if (!ParseRow(row, r, &p, &car_id).ok()) {
      ++stats->rows_dropped_malformed;
      continue;
    }
    AppendPoint(&trips, p, car_id);
  }
  for (Trip& t : trips) t.RecomputeTotals();
  return trips;
}

Status WriteTripsFile(const std::string& path,
                      const std::vector<Trip>& trips) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  const std::string text = TripsToCsv(trips);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<Trip>> ReadTripsFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return TripsFromCsv(buf.str());
}

}  // namespace trace
}  // namespace taxitrace
