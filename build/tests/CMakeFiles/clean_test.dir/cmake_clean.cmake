file(REMOVE_RECURSE
  "CMakeFiles/clean_test.dir/clean_test.cc.o"
  "CMakeFiles/clean_test.dir/clean_test.cc.o.d"
  "clean_test"
  "clean_test.pdb"
  "clean_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clean_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
