
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxitrace/odselect/od_gate.cc" "src/CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/od_gate.cc.o" "gcc" "src/CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/od_gate.cc.o.d"
  "/root/repo/src/taxitrace/odselect/transition_extractor.cc" "src/CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/transition_extractor.cc.o" "gcc" "src/CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/transition_extractor.cc.o.d"
  "/root/repo/src/taxitrace/odselect/transition_filter.cc" "src/CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/transition_filter.cc.o" "gcc" "src/CMakeFiles/taxitrace_odselect.dir/taxitrace/odselect/transition_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/taxitrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taxitrace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
