#include "taxitrace/coach/driver_profile.h"

#include <algorithm>
#include <map>

namespace taxitrace {
namespace coach {

std::vector<DriverProfile> BuildDriverProfiles(
    const std::vector<ScoredTrip>& trips) {
  std::map<int, DriverProfile> by_car;
  for (const ScoredTrip& trip : trips) {
    DriverProfile& profile = by_car[trip.car_id];
    profile.car_id = trip.car_id;
    ++profile.trips;
    const double n = static_cast<double>(profile.trips);
    profile.mean_eco_score +=
        (trip.score.eco_score - profile.mean_eco_score) / n;
    profile.mean_idle_share +=
        (trip.score.idle_share - profile.mean_idle_share) / n;
    profile.mean_harsh_per_km +=
        (trip.score.harsh_per_km - profile.mean_harsh_per_km) / n;
    profile.mean_fuel_per_km_ml +=
        (trip.score.fuel_per_km_ml - profile.mean_fuel_per_km_ml) / n;
    profile.total_fuel_excess_l += trip.score.fuel_excess_ml / 1000.0;
    profile.best_trip_score =
        std::max(profile.best_trip_score, trip.score.eco_score);
    profile.worst_trip_score =
        std::min(profile.worst_trip_score, trip.score.eco_score);
  }
  std::vector<DriverProfile> out;
  out.reserve(by_car.size());
  for (auto& [car, profile] : by_car) out.push_back(profile);
  std::sort(out.begin(), out.end(),
            [](const DriverProfile& a, const DriverProfile& b) {
              return a.mean_eco_score > b.mean_eco_score;
            });
  return out;
}

}  // namespace coach
}  // namespace taxitrace
