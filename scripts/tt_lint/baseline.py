"""Checked-in baseline of grandfathered findings.

The baseline lets the analyzer gate CI on *new* findings while known
debt is burned down deliberately. Entries are fingerprinted by rule,
path, and the whitespace-normalized source line (plus an ordinal for
identical lines), so they survive unrelated line-number drift but die
with the code they describe.

Format (scripts/tt_lint_baseline.json):

  {"version": 1,
   "findings": [{"rule": ..., "path": ..., "fingerprint": ...,
                 "line": ..., "note": ...}, ...]}

`line` and `note` are documentation for humans; matching uses only
(rule, path, fingerprint). Regenerate with --write-baseline.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .engine import Finding, SourceFile

VERSION = 1


class BaselineError(Exception):
    pass


def fingerprint(finding: Finding, line_text: str, ordinal: int) -> str:
    normalized = " ".join(line_text.split())
    blob = f"{finding.rule}|{finding.path}|{normalized}|{ordinal}"
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]


def _fingerprints(findings: list[Finding],
                  files_by_rel: dict[str, SourceFile]) -> list[str]:
    """Fingerprint per finding, ordinal-disambiguated for findings of
    the same rule on identical source lines."""
    seen: dict[str, int] = {}
    out: list[str] = []
    for f in findings:
        sf = files_by_rel.get(f.path)
        line_text = sf.line_text(f.line) if sf is not None else ""
        base = f"{f.rule}|{f.path}|{' '.join(line_text.split())}"
        ordinal = seen.get(base, 0)
        seen[base] = ordinal + 1
        out.append(fingerprint(f, line_text, ordinal))
    return out


def load(path: Path) -> dict[tuple[str, str, str], int]:
    """Baseline as a multiset keyed by (rule, path, fingerprint)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        raise BaselineError(f"cannot read baseline {path}: {e}") from e
    if not isinstance(data, dict) or data.get("version") != VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format/version")
    entries: dict[tuple[str, str, str], int] = {}
    for item in data.get("findings", []):
        key = (item["rule"], item["path"], item["fingerprint"])
        entries[key] = entries.get(key, 0) + 1
    return entries


def apply(findings: list[Finding],
          files_by_rel: dict[str, SourceFile],
          entries: dict[tuple[str, str, str], int],
          ) -> tuple[list[Finding], int, int]:
    """Split findings into (new, baselined_count, stale_count)."""
    remaining = dict(entries)
    new: list[Finding] = []
    baselined = 0
    prints = _fingerprints(findings, files_by_rel)
    for f, fp in zip(findings, prints):
        key = (f.rule, f.path, fp)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined += 1
        else:
            new.append(f)
    stale = sum(remaining.values())
    return new, baselined, stale


def write(path: Path, findings: list[Finding],
          files_by_rel: dict[str, SourceFile]) -> None:
    prints = _fingerprints(findings, files_by_rel)
    items = []
    for f, fp in sorted(zip(findings, prints),
                        key=lambda p: (p[0].path, p[0].line, p[0].rule)):
        items.append({
            "rule": f.rule,
            "path": f.path,
            "fingerprint": fp,
            "line": f.line,
            "note": f.message,
        })
    payload = {"version": VERSION, "findings": items}
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")
