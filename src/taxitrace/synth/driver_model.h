// Microscopic driver model: turns a routed path into a second-by-second
// drive with realistic speed dynamics — acceleration limits, stochastic
// traffic-light stops (including the rare ~200 s error situation the
// paper's segmentation rules reference), pedestrian-crossing slowdowns,
// crowd hotspots, rush-hour congestion, and weather/season effects.

#ifndef TAXITRACE_SYNTH_DRIVER_MODEL_H_
#define TAXITRACE_SYNTH_DRIVER_MODEL_H_

#include <vector>

#include "taxitrace/common/random.h"
#include "taxitrace/roadnet/router.h"
#include "taxitrace/roadnet/spatial_index.h"
#include "taxitrace/synth/city_map_generator.h"
#include "taxitrace/synth/pedestrian_model.h"
#include "taxitrace/synth/weather_model.h"

namespace taxitrace {
namespace synth {

/// One instant of a simulated drive.
struct DriveSample {
  double t_s = 0.0;            ///< Study timestamp.
  geo::EnPoint position;       ///< True (noise-free) position.
  double speed_kmh = 0.0;      ///< True speed.
  double heading_rad = 0.0;    ///< Travel heading.
  double fuel_delta_ml = 0.0;  ///< Fuel burnt since the previous sample.
};

/// Reusable buffers for one worker's drives. A fleet run calls Drive
/// hundreds of thousands of times; routing the sample/zone/event
/// storage through one of these per worker makes steady-state drives
/// allocation-free. One instance serves one thread at a time; the
/// filled `samples` stay valid until the next Drive through the same
/// instance.
struct DriveScratch {
  /// Speed-limit zone along a path, one per path step.
  struct Zone {
    double end_arc = 0.0;
    double limit_ms = 0.0;
  };
  /// A concrete incident along one drive.
  struct Event {
    double arc_m = 0.0;
    bool is_stop = false;      ///< full stop with a wait
    double wait_s = 0.0;       ///< for stops
    double slow_to_ms = 99.0;  ///< for slowdowns
    bool done = false;
  };

  std::vector<DriveSample> samples;  ///< Drive output.
  std::vector<double> cursor_cum;    ///< Geometry prefix sums.
  std::vector<Zone> zones;
  std::vector<Event> events;
  std::vector<Event> merged_events;
  /// Hotspots whose influence circle meets the drive's bounding box.
  std::vector<size_t> hotspot_candidates;
};

/// Behaviour and vehicle parameters.
struct DriverOptions {
  double accel_ms2 = 1.6;
  double decel_ms2 = 2.2;
  /// Probability of having to stop at a passed traffic light.
  double light_stop_prob = 0.55;
  /// Red-light waits: uniform within [min,max]; with `light_error_prob`
  /// the light is faulty and the wait runs to ~200 s (after which it
  /// switches to blinking yellow — Section IV-C).
  double light_wait_min_s = 8.0;
  double light_wait_max_s = 75.0;
  double light_error_prob = 0.004;
  double light_error_wait_s = 200.0;
  /// Pedestrian crossings: slowdown probability (scaled up inside
  /// hotspots) and the speed driven past an occupied crossing.
  double crossing_slow_prob = 0.45;
  double crossing_slow_kmh = 14.0;
  double crossing_stop_prob_in_hotspot = 0.30;
  /// Bus stops: probability of being briefly stuck behind a bus.
  double bus_slow_prob = 0.12;
  /// Probability that a queue discharges slowly after a stop (a short
  /// crawl at walking pace past the stop line).
  double queue_crawl_prob = 0.8;
  /// Rate (events per second at full crowd intensity) of ad-hoc
  /// pedestrian-induced crawls while driving inside a hotspot.
  double hotspot_crawl_rate_per_s = 0.16;
  /// Fuel model (millilitres): idle rate plus speed and acceleration
  /// terms, calibrated so the Table 4 gate-to-gate trips land at the
  /// paper's ~210-265 ml.
  double fuel_idle_ml_s = 0.14;
  double fuel_speed_ml_per_m = 0.036;
  double fuel_speed2_ml_s_per_ms2 = 0.0007;
  double fuel_accel_ml_per_ms = 0.75;
  /// Simulation step, seconds.
  double step_s = 1.0;
  /// Radius within which a feature affects a passing car, metres.
  double feature_influence_radius_m = 25.0;
};

/// Simulates drives over a generated city. Holds pointers to the map and
/// weather model, which must outlive it.
class DriverModel {
 public:
  /// `pedestrians` (optional) makes hotspot crowding time-varying; when
  /// null the hotspots' static intensities apply at all times.
  DriverModel(const CityMap* map, const WeatherModel* weather,
              DriverOptions options = {},
              const PedestrianModel* pedestrians = nullptr);

  /// Drives `path` starting at `start_time_s`. `driver_factor` scales the
  /// driver's preferred speed (1.0 = drives at the limit). Deterministic
  /// given `rng` state.
  std::vector<DriveSample> Drive(const roadnet::Path& path,
                                 double start_time_s, double driver_factor,
                                 Rng* rng) const;

  /// As Drive, but reusing `scratch`'s buffers instead of allocating.
  /// Returns scratch->samples, filled with the drive; draws the exact
  /// same RNG sequence and produces the exact same samples as the
  /// allocating overload.
  const std::vector<DriveSample>& Drive(const roadnet::Path& path,
                                        double start_time_s,
                                        double driver_factor, Rng* rng,
                                        DriveScratch* scratch) const;

  /// Engine-on idling at a fixed position (taxi stand / customer wait).
  /// Samples are spaced ~10 s apart.
  std::vector<DriveSample> Idle(const geo::EnPoint& position,
                                double start_time_s, double duration_s) const;

  /// As Idle, writing into `*out` (cleared first) instead of allocating.
  void Idle(const geo::EnPoint& position, double start_time_s,
            double duration_s, std::vector<DriveSample>* out) const;

  /// Multiplier (< 1 inside hotspots) applied to target speed at `p`.
  [[nodiscard]] double HotspotFactor(const geo::EnPoint& p) const;

  /// Crowd intensity at `p`: 0 outside hotspots, up to the hotspot's
  /// intensity at its centre (static profile).
  [[nodiscard]] double HotspotIntensity(const geo::EnPoint& p) const;

  /// Crowd intensity at `p` and time `t`: the pedestrian model's
  /// time-varying level when present, else the static profile.
  [[nodiscard]]
  double CrowdIntensity(const geo::EnPoint& p, double timestamp_s) const;

  /// As CrowdIntensity, consulting only the hotspots in `candidates`
  /// (indices into the list this model reads crowding from). Exact when
  /// `candidates` came from FillHotspotCandidates over a box containing
  /// `p` — skipped hotspots would have contributed nothing.
  [[nodiscard]] double CrowdIntensity(
      const geo::EnPoint& p, double timestamp_s,
      const std::vector<size_t>& candidates) const;

  /// As the candidate overload with the timestamp pre-decomposed into
  /// its CrowdWindow: bit-identical results for any timestamp inside
  /// `window`. The drive loop queries once per simulated second, so it
  /// refreshes the window only at diurnal/day boundaries instead of
  /// re-deriving day, weekend flag and diurnal level every step.
  [[nodiscard]] double CrowdIntensity(
      const geo::EnPoint& p, const CrowdWindow& window,
      const std::vector<size_t>& candidates) const;

  /// Fills `*candidates` (cleared first, ascending) with every hotspot
  /// whose influence circle can reach the axis-aligned box [lo, hi].
  /// Conservative: a hotspot is kept whenever its centre lies within
  /// its radius of the box, so the candidate CrowdIntensity overload is
  /// exact for any query point inside the box.
  void FillHotspotCandidates(const geo::EnPoint& lo, const geo::EnPoint& hi,
                             std::vector<size_t>* candidates) const;

  /// Seasonal speed multiplier for a timestamp (autumn fastest, winter
  /// slowest — the ordering the paper reports).
  static double SeasonFactor(double timestamp_s);

  [[nodiscard]] const DriverOptions& options() const { return options_; }

 private:
  struct EdgeEvent {
    roadnet::FeatureType type;
    double arc_on_edge_m;  ///< Offset along the edge geometry.
  };

  const CityMap* map_;
  const WeatherModel* weather_;
  const PedestrianModel* pedestrians_;
  DriverOptions options_;
  /// Per-edge feature events, precomputed from the map.
  std::vector<std::vector<EdgeEvent>> edge_events_;
};

}  // namespace synth
}  // namespace taxitrace

#endif  // TAXITRACE_SYNTH_DRIVER_MODEL_H_
