// Declared via taxitrace_bench(bench_registered); must not be flagged.
