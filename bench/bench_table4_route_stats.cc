// Table 4: per-direction summary statistics of the matched transitions —
// route time, distance, low/normal speed shares, map attributes and fuel
// (Section VI-A).

#include "bench_util.h"
#include "taxitrace/analysis/bootstrap.h"
#include "taxitrace/analysis/route_stats.h"
#include "taxitrace/mapmatch/incremental_matcher.h"

namespace taxitrace {
namespace {

void PrintTable4() {
  const core::StudyResults& r = benchutil::FullResults();
  const auto rows = analysis::BuildTable4(r.Records());
  std::printf("%s\n", core::FormatTable4(rows).c_str());
  std::printf(
      "Paper shape to hold: S-T/T-S routes show a greater proportion of "
      "low speed than T-L/L-T (paper means 38/33 vs 23/24%%), the normal-"
      "speed proportion is contrariwise (6/9 vs 15/15%%), low speed "
      "correlates with fuel, and the mean count of traffic lights alone "
      "does not explain the difference.\n");
  // Verify the headline orderings explicitly.
  const auto mean_of = [&](const char* dir,
                           auto field) -> double {
    for (const analysis::Table4Row& row : rows) {
      if (row.direction == dir) return (row.*field).mean;
    }
    return 0.0;
  };
  const double low_ts = mean_of("T-S", &analysis::Table4Row::low_speed_pct);
  const double low_tl = mean_of("T-L", &analysis::Table4Row::low_speed_pct);
  const double norm_ts =
      mean_of("T-S", &analysis::Table4Row::normal_speed_pct);
  const double norm_tl =
      mean_of("T-L", &analysis::Table4Row::normal_speed_pct);
  const double fuel_ts = mean_of("T-S", &analysis::Table4Row::fuel_ml);
  const double fuel_tl = mean_of("T-L", &analysis::Table4Row::fuel_ml);
  std::printf("Check: low%% T-S > T-L: %.1f > %.1f -> %s\n", low_ts, low_tl,
              low_ts > low_tl ? "HOLDS" : "VIOLATED");
  std::printf("Check: normal%% T-L > T-S: %.1f > %.1f -> %s\n", norm_tl,
              norm_ts, norm_tl > norm_ts ? "HOLDS" : "VIOLATED");
  std::printf("Check: fuel T-S > T-L: %.0f > %.0f ml -> %s\n", fuel_ts,
              fuel_tl, fuel_ts > fuel_tl ? "HOLDS" : "VIOLATED");

  // Cluster-bootstrap 95% intervals for the headline contrast: do the
  // T-S and T-L low-speed means separate beyond resampling noise?
  const auto records = r.Records();
  const auto ci_for = [&records](const char* direction) {
    return analysis::BootstrapTransitions(
        records,
        [direction](const std::vector<analysis::TransitionRecord>& sample) {
          return analysis::MeanLowSpeedPct(sample, direction);
        });
  };
  const analysis::BootstrapInterval ts = ci_for("T-S");
  const analysis::BootstrapInterval tl = ci_for("T-L");
  std::printf(
      "Bootstrap 95%% CIs (1000 cluster replicates): low%% T-S "
      "[%.1f, %.1f], T-L [%.1f, %.1f]\n",
      ts.lo, ts.hi, tl.lo, tl.hi);
  std::printf(
      "Check: intervals do not overlap (the contrast is not resampling "
      "noise) -> %s\n\n",
      ts.lo > tl.hi ? "HOLDS" : "VIOLATED");
}

void BM_BuildTable4(benchmark::State& state) {
  const auto records = benchutil::FullResults().Records();
  for (auto _ : state) {
    auto rows = analysis::BuildTable4(records);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_BuildTable4)->Unit(benchmark::kMicrosecond);

void BM_MatchTransition(benchmark::State& state) {
  const core::StudyResults& r = benchutil::SmallResults();
  const roadnet::SpatialIndex index(&r.map.network);
  const mapmatch::IncrementalMatcher matcher(&r.map.network, &index);
  size_t idx = 0;
  for (auto _ : state) {
    const auto& segment =
        r.transitions[idx % r.transitions.size()].transition.segment;
    auto matched = matcher.Match(segment);
    benchmark::DoNotOptimize(matched);
    ++idx;
  }
}
BENCHMARK(BM_MatchTransition)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace taxitrace

TAXITRACE_BENCH_MAIN(taxitrace::PrintTable4)
