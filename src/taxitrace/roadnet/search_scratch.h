// Reusable per-thread state for one shortest-path search.
//
// A naive Dijkstra pays O(|V|) per search just to allocate and
// infinity-fill its dist/prev arrays. SearchScratch keeps those arrays
// alive between searches and marks validity with a generation stamp:
// entry v is meaningful only when stamp[v] equals the current search's
// generation, so starting a new search is a single counter increment
// and a search touches only the vertices it actually visits. The heap
// storage is reused the same way, making steady-state searches
// allocation-free.
//
// One instance serves one thread at a time (the Router hands each
// executor worker its own via WorkerLocal); results read through the
// accessors stay valid until the next BeginSearch on the same instance.

#ifndef TAXITRACE_ROADNET_SEARCH_SCRATCH_H_
#define TAXITRACE_ROADNET_SEARCH_SCRATCH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "taxitrace/roadnet/road_network.h"

namespace taxitrace {
namespace roadnet {

/// One heap element of a search: `key` orders the heap (equal to `dist`
/// for Dijkstra, dist + heuristic for A*), `dist` is the tentative cost
/// used for the stale-entry check.
struct SearchHeapEntry {
  double key = 0.0;
  double dist = 0.0;
  VertexId vertex = kInvalidVertex;
  bool operator>(const SearchHeapEntry& other) const {
    return key > other.key;
  }
};

class SearchScratch {
 public:
  /// Starts a new search over a graph of `vertex_count` vertices: sizes
  /// the arrays (only when the graph grew), advances the generation so
  /// every previous entry becomes stale, and clears the heap storage.
  void BeginSearch(size_t vertex_count) {
    if (stamp_.size() < vertex_count) {
      stamp_.resize(vertex_count, 0);
      dist_.resize(vertex_count, 0.0);
      prev_edge_.resize(vertex_count, kInvalidEdge);
      prev_vertex_.resize(vertex_count, kInvalidVertex);
    }
    if (++generation_ == 0) {
      // uint32 wrap: every stored stamp could now alias a live search,
      // so reset them all once per ~4 billion searches.
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      generation_ = 1;
    }
    heap.clear();
  }

  /// True when `v` was reached by the current search.
  [[nodiscard]] bool Visited(VertexId v) const {
    return stamp_[static_cast<size_t>(v)] == generation_;
  }

  /// Tentative (final once settled) cost of `v`; +infinity if the
  /// current search never reached it.
  [[nodiscard]] double Dist(VertexId v) const {
    return Visited(v) ? dist_[static_cast<size_t>(v)]
                      : std::numeric_limits<double>::infinity();
  }
  /// Unchecked cost read; valid only when Visited(v).
  [[nodiscard]] double RawDist(VertexId v) const {
    return dist_[static_cast<size_t>(v)];
  }

  /// Edge / vertex the search reached `v` through; kInvalidEdge /
  /// kInvalidVertex for seeds and unreached vertices.
  [[nodiscard]] EdgeId PrevEdge(VertexId v) const {
    return Visited(v) ? prev_edge_[static_cast<size_t>(v)] : kInvalidEdge;
  }
  [[nodiscard]] VertexId PrevVertex(VertexId v) const {
    return Visited(v) ? prev_vertex_[static_cast<size_t>(v)]
                      : kInvalidVertex;
  }

  /// Records a (possibly improved) path to `v`, stamping it into the
  /// current generation. Seeds pass kInvalidEdge / kInvalidVertex.
  void Relax(VertexId v, double dist, EdgeId prev_edge,
             VertexId prev_vertex) {
    const auto i = static_cast<size_t>(v);
    stamp_[i] = generation_;
    dist_[i] = dist;
    prev_edge_[i] = prev_edge;
    prev_vertex_[i] = prev_vertex;
  }

  /// Reusable heap storage for the search loop (cleared by
  /// BeginSearch). Exposed directly: the Router drives it with
  /// std::push_heap / std::pop_heap.
  std::vector<SearchHeapEntry> heap;

 private:
  // Valid for vertex v only when stamp_[v] == generation_.
  std::vector<double> dist_;
  std::vector<EdgeId> prev_edge_;
  std::vector<VertexId> prev_vertex_;
  std::vector<uint32_t> stamp_;
  uint32_t generation_ = 0;
};

}  // namespace roadnet
}  // namespace taxitrace

#endif  // TAXITRACE_ROADNET_SEARCH_SCRATCH_H_
