// Normal QQ-plot series (Fig. 7: cell intercept regularisation check)
// and the normal quantile function they need.

#ifndef TAXITRACE_MODEL_QQ_H_
#define TAXITRACE_MODEL_QQ_H_

#include <vector>

namespace taxitrace {
namespace model {

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9). p must be in (0, 1).
double NormalQuantile(double p);

/// One point of a QQ plot.
struct QqPoint {
  double theoretical = 0.0;  ///< Standard normal quantile.
  double sample = 0.0;       ///< Order statistic of the sample.
};

/// QQ-plot series for a sample against the standard normal, using the
/// plotting positions (i - 0.5) / n.
std::vector<QqPoint> NormalQqSeries(std::vector<double> sample);

/// Correlation between theoretical and sample quantiles (a quick
/// straightness measure of the QQ plot; ~1 for Gaussian data).
double QqCorrelation(const std::vector<QqPoint>& series);

}  // namespace model
}  // namespace taxitrace

#endif  // TAXITRACE_MODEL_QQ_H_
